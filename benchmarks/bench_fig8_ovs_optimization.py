"""Figures 8a-8c -- ClassBench installation on OVS under four
priority-assignment x installation-order combinations.

Paper observation: OVS is priority-insensitive and fast for ~1000
rules, so all four arms land within a few percent of each other
(~0.045-0.058 s), with the Tango-ordered topological arm best by a
small margin in most runs.
"""

from __future__ import annotations

import statistics

import pytest

from repro.baselines import RandomOrderScheduler
from repro.core.priorities import assign_r_priorities, assign_topological_priorities
from repro.core.scheduler import BasicTangoScheduler
from repro.switches.profiles import OVS_PROFILE
from repro.workloads.classbench import classbench_preset

from benchmarks._helpers import print_table, ruleset_dag, single_switch_executor

RUNS = 5
ARMS = ("Topo Tango", "R Tango", "R Rand", "Topo Rand")


def _run_arm(ruleset, arm, run_index, profile):
    topo = assign_topological_priorities(ruleset.dependencies)
    r = assign_r_priorities(ruleset.dependencies)
    priorities = topo if arm.startswith("Topo") else r
    executor = single_switch_executor(profile, seed=100 + run_index)
    dag = ruleset_dag(ruleset, priorities)
    if arm.endswith("Rand"):
        scheduler = RandomOrderScheduler(executor, seed=run_index)
    else:
        scheduler = BasicTangoScheduler(executor)
    return scheduler.schedule(dag).makespan_ms


def bench_fig8_ovs_optimization(benchmark):
    def run():
        results = {}
        for index in (1, 2, 3):
            ruleset = classbench_preset(index)
            results[index] = {
                arm: [_run_arm(ruleset, arm, i, OVS_PROFILE) for i in range(RUNS)]
                for arm in ARMS
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for index, arms in results.items():
        rows = [
            [arm, f"{statistics.mean(times)/1000:.4f}s", f"{min(times)/1000:.4f}s", f"{max(times)/1000:.4f}s"]
            for arm, times in arms.items()
        ]
        print_table(
            f"Figure 8 (Classbench {index}): OVS install time over {RUNS} runs",
            ["arm", "mean", "min", "max"],
            rows,
        )
        means = {arm: statistics.mean(times) for arm, times in arms.items()}
        # OVS: arms within ~20% of each other (paper: all close).
        assert max(means.values()) < 1.25 * min(means.values())
        # Tango ordering is never worse than random ordering on average.
        assert means["Topo Tango"] <= means["Topo Rand"] * 1.05
    benchmark.extra_info["means_s"] = {
        str(i): {arm: round(statistics.mean(t) / 1000, 4) for arm, t in arms.items()}
        for i, arms in results.items()
    }
