"""Table 1 -- Diversity of tables and table sizes.

Paper values (flow entries):

    switch      L2/L3   L2+L3
    OVS         <inf    <inf
    Switch #1   4K      2K      (+ unbounded userspace tables)
    Switch #2   2560    2560
    Switch #3   767     369

The bench runs the Tango size probe (Algorithm 1) against each vendor
profile with narrow (L3) and wide (L2+L3) probe rules and reports the
inferred fast-table sizes.
"""

from __future__ import annotations

import pytest

from repro.core.probing import ProbingEngine
from repro.core.size_inference import SizeProber
from repro.openflow.channel import ControlChannel
from repro.openflow.match import MatchKind
from repro.sim.rng import SeededRng
from repro.switches.profiles import OVS_PROFILE, SWITCH_1, SWITCH_2, SWITCH_3

from benchmarks._helpers import print_table

#: Paper's Table 1 ground truth for the hardware fast table.
EXPECTED = {
    ("ovs", MatchKind.L3): None,
    ("ovs", MatchKind.L2_L3): None,
    ("switch1", MatchKind.L3): 4096,
    ("switch1", MatchKind.L2_L3): 2048,
    ("switch2", MatchKind.L3): 2560,
    ("switch2", MatchKind.L2_L3): 2560,
    ("switch3", MatchKind.L3): 767,
    ("switch3", MatchKind.L2_L3): 369,
}


def _probe_size(profile, kind, seed):
    switch = profile.build(seed=seed)
    engine = ProbingEngine(
        ControlChannel(switch),
        rng=SeededRng(seed).child(f"t1:{profile.name}:{kind.value}"),
        match_kind=kind,
    )
    prober = SizeProber(engine, max_rules=6144, accuracy_target=0.02)
    result = prober.probe()
    if not result.layers:
        return None
    return result.layers[0].estimated_size


def bench_table1_table_sizes(benchmark):
    profiles = (OVS_PROFILE, SWITCH_1, SWITCH_2, SWITCH_3)

    def run():
        rows = []
        for profile in profiles:
            measured = {}
            for kind in (MatchKind.L3, MatchKind.L2_L3):
                measured[kind] = _probe_size(profile, kind, seed=11)
            rows.append((profile.name, measured))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for name, measured in rows:
        row = [name]
        for kind in (MatchKind.L3, MatchKind.L2_L3):
            expected = EXPECTED[(name, kind)]
            value = measured[kind]
            shown = "<inf" if value is None else str(value)
            exp_shown = "<inf" if expected is None else str(expected)
            row.extend([shown, exp_shown])
            if expected is not None:
                assert value is not None
                assert abs(value - expected) / expected <= 0.05
            else:
                assert value is None
        table.append(row)
    print_table(
        "Table 1: inferred flow-table sizes",
        ["switch", "L2/L3 inferred", "L2/L3 paper", "L2+L3 inferred", "L2+L3 paper"],
        table,
    )
    benchmark.extra_info["rows"] = [
        [str(c) for c in row] for row in table
    ]
