"""Figure 6 -- the policy-probe attribute initialisation pattern.

The paper visualises the post-initialisation state of 200 flows probing
a cache of size 100: each of the four ATTRIB attributes splits the flows
into a high half and a low half, with the halves of different attributes
pairwise independent, so the cached set correlates strongly with exactly
the policy's primary attribute.

This bench reproduces the construction and checks its two defining
properties (balance and pairwise independence), then runs the full probe
against an LRU switch as the paper's running example.
"""

from __future__ import annotations

import pytest

from repro.core.policy_inference import PolicyProber, _high_bit
from repro.core.probing import ProbingEngine
from repro.openflow.channel import ControlChannel
from repro.sim.rng import SeededRng
from repro.switches.profiles import make_cache_test_profile
from repro.tables.entry import FlowAttribute
from repro.tables.policies import LRU, Direction

from benchmarks._helpers import print_table

CACHE_SIZE = 100


def bench_fig6_policy_pattern(benchmark):
    profile = make_cache_test_profile(
        LRU, layer_sizes=(CACHE_SIZE, 2 * CACHE_SIZE, None), layer_means_ms=(0.5, 2.5, 4.8)
    )

    def run():
        switch = profile.build(seed=23)
        engine = ProbingEngine(ControlChannel(switch), rng=SeededRng(23).child("fig6"))
        prober = PolicyProber(engine, cache_size=CACHE_SIZE)
        handles, values = prober._initialise_round(list(FlowAttribute))
        result_values = {a: list(v) for a, v in values.items()}
        engine.remove_all_flows()
        inference = PolicyProber(
            ProbingEngine(
                ControlChannel(profile.build(seed=24)),
                rng=SeededRng(24).child("fig6b"),
            ),
            cache_size=CACHE_SIZE,
        ).probe()
        return len(handles), result_values, inference

    flow_count, values, inference = benchmark.pedantic(run, rounds=1, iterations=1)

    # Balance: every attribute splits the flows exactly in half.
    s = flow_count
    rows = []
    for attribute in FlowAttribute:
        ordered = sorted(range(s), key=lambda i: values[attribute][i])
        top_half = set(ordered[s // 2 :])
        high_bits = {i for i in range(s) if _high_bit(i, attribute)}
        assert top_half == high_bits
        rows.append(
            [
                attribute.value,
                f"{min(values[attribute]):.0f}..{max(values[attribute]):.0f}",
                len(high_bits),
            ]
        )
    print_table(
        f"Figure 6: attribute initialisation over {s} flows (cache={CACHE_SIZE})",
        ["attribute", "value range", "high-half size"],
        rows,
    )

    # Pairwise independence: any two attributes' high halves overlap in s/4.
    attributes = list(FlowAttribute)
    for i, a in enumerate(attributes):
        for b in attributes[i + 1 :]:
            high_a = {k for k in range(s) if _high_bit(k, a)}
            high_b = {k for k in range(s) if _high_bit(k, b)}
            assert len(high_a & high_b) == s // 4

    # The running example: LRU is identified from use time alone.
    assert inference.terms[0] == (FlowAttribute.USE_TIME, Direction.INCREASING)
    print(f"Inferred policy on the figure's switch: {inference.terms}")
    benchmark.extra_info["inferred"] = [
        (a.value, d.name) for a, d in inference.terms
    ]
