"""Section 7 headline -- flow-table size inference within 5% of actual.

Runs Algorithm 1 against two-level cache switches under every standard
cache policy and three seeds, reporting the worst relative error of the
fast-layer estimate.  The paper claims "within less than 5% of actual
values, despite diverse switch caching algorithms".
"""

from __future__ import annotations

import pytest

from repro.core.probing import ProbingEngine
from repro.core.size_inference import SizeProber
from repro.openflow.channel import ControlChannel
from repro.sim.rng import SeededRng
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import STANDARD_POLICIES

from benchmarks._helpers import print_table

TRUE_SIZE = 128
SEEDS = (1, 2, 3)


def bench_size_inference_accuracy(benchmark):
    def run():
        errors = {}
        for name, policy in STANDARD_POLICIES.items():
            profile = make_cache_test_profile(
                policy, (TRUE_SIZE, None), layer_means_ms=(0.5, 3.0)
            )
            per_seed = []
            for seed in SEEDS:
                switch = profile.build(seed=seed)
                engine = ProbingEngine(
                    ControlChannel(switch),
                    rng=SeededRng(seed).child(f"acc:{name}"),
                )
                result = SizeProber(
                    engine, max_rules=512, accuracy_target=0.02
                ).probe()
                estimate = result.layers[0].estimated_size
                per_seed.append(abs(estimate - TRUE_SIZE) / TRUE_SIZE)
            errors[name] = per_seed
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, per_seed in errors.items():
        worst = max(per_seed)
        rows.append([name, f"{worst * 100:.1f}%", f"{sum(per_seed)/len(per_seed)*100:.1f}%"])
        assert worst <= 0.05, f"{name}: {worst:.3f} exceeds the 5% claim"
    print_table(
        f"Size inference error (true fast-table size {TRUE_SIZE}, 3 seeds)",
        ["cache policy", "worst error", "mean error"],
        rows,
    )
    benchmark.extra_info["worst_error"] = max(max(v) for v in errors.values())
