"""Figures 9a-9c -- ClassBench installation on hardware Switch #1 under
four priority-assignment x installation-order combinations.

Paper observation: the topological priority assignment combined with the
probing-engine-derived optimal (ascending) order wins in five of six
scenarios, cutting installation time by 80-89% versus random orderings.
Fewer distinct priorities mean more same-priority adds, which the TCAM
installs without shifting entries.
"""

from __future__ import annotations

import statistics

import pytest

from repro.baselines import RandomOrderScheduler
from repro.core.priorities import assign_r_priorities, assign_topological_priorities
from repro.core.scheduler import BasicTangoScheduler
from repro.switches.profiles import SWITCH_1
from repro.workloads.classbench import classbench_preset

from benchmarks._helpers import print_table, ruleset_dag, single_switch_executor

RUNS = 5
ARMS = ("Topo Tango", "R Tango", "R Rand", "Topo Rand")


def _run_arm(ruleset, arm, run_index):
    topo = assign_topological_priorities(ruleset.dependencies)
    r = assign_r_priorities(ruleset.dependencies)
    priorities = topo if arm.startswith("Topo") else r
    executor = single_switch_executor(SWITCH_1, seed=200 + run_index)
    dag = ruleset_dag(ruleset, priorities)
    if arm.endswith("Rand"):
        scheduler = RandomOrderScheduler(executor, seed=run_index)
    else:
        scheduler = BasicTangoScheduler(executor)
    return scheduler.schedule(dag).makespan_ms


def bench_fig9_hw_optimization(benchmark):
    def run():
        results = {}
        for index in (1, 2, 3):
            ruleset = classbench_preset(index)
            results[index] = {
                arm: [_run_arm(ruleset, arm, i) for i in range(RUNS)] for arm in ARMS
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    reductions = {}
    for index, arms in results.items():
        means = {arm: statistics.mean(times) for arm, times in arms.items()}
        rows = [
            [arm, f"{means[arm]/1000:.3f}s"]
            + [f"{t/1000:.3f}" for t in arms[arm]]
            for arm in ARMS
        ]
        print_table(
            f"Figure 9 (Classbench {index}): Switch #1 install time over {RUNS} runs",
            ["arm", "mean"] + [f"run{i}" for i in range(RUNS)],
            rows,
        )
        worst_random = max(means["R Rand"], means["Topo Rand"])
        reduction = (worst_random - means["Topo Tango"]) / worst_random
        reductions[index] = reduction
        print(
            f"Classbench {index}: Topo+Tango vs worst random arm: "
            f"-{reduction*100:.0f}% (paper: 80-89%)"
        )
        # Tango's ordering must deliver a substantial reduction on hardware.
        assert means["Topo Tango"] < means["Topo Rand"]
        assert means["R Tango"] < means["R Rand"]
        assert reduction > 0.5
        # Topological (fewer distinct priorities) helps the Tango arms.
        assert means["Topo Tango"] <= means["R Tango"] * 1.1
    benchmark.extra_info["reduction_vs_random"] = {
        str(i): round(v, 3) for i, v in reductions.items()
    }
