"""Benches for the beyond-the-paper extensions.

Not tied to a paper figure; these quantify the extension features so
regressions are caught the same way as the reproduction results:

* pipeline inference (future work in the paper's conclusion) localises
  the hardware-backed table across all positions and seeds;
* behaviour classification separates OVS-style traffic-driven caching
  from hardware FIFO placement;
* the deadline-aware scheduler converts misses into on-time installs at
  bounded makespan cost;
* same-command batching rewards Tango's type grouping.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines import RandomOrderScheduler
from repro.core.behavior_inference import BehaviorProber
from repro.core.pipeline_inference import PipelineProber
from repro.core.probing import ProbingEngine, probe_match
from repro.core.requests import RequestDag
from repro.core.scheduler import (
    BasicTangoScheduler,
    DeadlineAwareTangoScheduler,
    NetworkExecutor,
)
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import FlowModCommand
from repro.sim.latency import ConstantLatency, GaussianLatency
from repro.sim.rng import SeededRng
from repro.switches.base import ControlCostModel
from repro.switches.pipeline import PipelineSwitch, PipelineTableSpec
from repro.switches.profiles import (
    OVS_PROFILE,
    SWITCH_1,
    SWITCH_2,
    SWITCH_3,
)

from benchmarks._helpers import fmt_ms, print_table


def _pipeline_switch(hardware, seed):
    specs = []
    for table_id in range(3):
        if table_id == hardware:
            delay = GaussianLatency(mean=0.4, std=0.03)
        else:
            delay = GaussianLatency(mean=2.8, std=0.2)
        specs.append(PipelineTableSpec(capacity=None, lookup_delay=delay))
    return PipelineSwitch(
        name=f"pipe-{hardware}",
        tables=specs,
        control_path_delay=ConstantLatency(8.0),
        cost_model=ControlCostModel(
            add_base_ms=0.4, shift_ms=0.01, priority_group_ms=0.2, mod_ms=1.5, del_ms=1.0
        ),
        hardware_table_id=hardware,
        seed=seed,
    )


def bench_pipeline_inference_accuracy(benchmark):
    def run():
        outcomes = []
        for hardware in (0, 1, 2):
            for seed in (1, 2, 3):
                switch = _pipeline_switch(hardware, seed)
                prober = PipelineProber(
                    ControlChannel(switch, rng=SeededRng(seed).child("pc")),
                    rng=SeededRng(seed).child("pp"),
                )
                result = prober.probe(measure_sizes=False)
                outcomes.append(
                    (hardware, seed, result.num_tables, result.hardware_table_id)
                )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    correct = sum(1 for hw, _, n, found in outcomes if n == 3 and found == hw)
    print_table(
        "Extension: pipeline inference (3 hardware positions x 3 seeds)",
        ["hardware table", "seed", "tables found", "located"],
        [[hw, seed, n, found] for hw, seed, n, found in outcomes],
    )
    assert correct == len(outcomes)
    benchmark.extra_info["correct"] = f"{correct}/{len(outcomes)}"


def bench_behavior_classification(benchmark):
    def run():
        labels = {}
        for profile in (OVS_PROFILE, SWITCH_1, SWITCH_2, SWITCH_3):
            switch = profile.build(seed=5)
            engine = ProbingEngine(
                ControlChannel(switch), rng=SeededRng(5).child(profile.name)
            )
            result = BehaviorProber(engine).probe()
            labels[profile.name] = result.traffic_driven_caching
        return labels

    labels = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: control-plane behaviour classification",
        ["switch", "traffic-driven caching"],
        [[name, "yes" if flag else "no"] for name, flag in labels.items()],
    )
    assert labels["ovs"] is True
    assert all(not labels[n] for n in ("switch1", "switch2", "switch3"))
    benchmark.extra_info["labels"] = {k: bool(v) for k, v in labels.items()}


def _deadline_dag(n_background=200, n_urgent=10):
    dag = RequestDag()
    for i in range(n_background):
        dag.new_request("sw", FlowModCommand.ADD, probe_match(i), priority=i + 1)
    for i in range(n_urgent):
        dag.new_request(
            "sw",
            FlowModCommand.ADD,
            probe_match(10_000 + i),
            priority=50_000 + i,
            install_by_ms=30.0 * (i + 1),
        )
    return dag


def bench_deadline_scheduler(benchmark):
    def run():
        def executor():
            switch = SWITCH_2.build(seed=3)
            switch.name = "sw"
            return NetworkExecutor({"sw": ControlChannel(switch)})

        basic = BasicTangoScheduler(executor()).schedule(_deadline_dag())
        aware = DeadlineAwareTangoScheduler(
            executor(), estimate=lambda r: 1.0
        ).schedule(_deadline_dag())
        return basic, aware

    basic, aware = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: deadline-aware scheduling (10 urgent of 210 requests)",
        ["scheduler", "makespan", "deadline misses"],
        [
            ["Basic Tango", fmt_ms(basic.makespan_ms), basic.deadline_misses],
            ["Deadline-aware Tango", fmt_ms(aware.makespan_ms), aware.deadline_misses],
        ],
    )
    assert aware.deadline_misses < basic.deadline_misses
    assert aware.makespan_ms <= basic.makespan_ms * 1.25
    benchmark.extra_info["misses_basic"] = basic.deadline_misses
    benchmark.extra_info["misses_aware"] = aware.deadline_misses


def bench_batching_discount(benchmark):
    """Type grouping compounds with vendor batching of same-type updates."""
    batched_cost = dataclasses.replace(SWITCH_2.cost_model, batch_discount=0.6)
    batched_profile = dataclasses.replace(
        SWITCH_2, cost_model=batched_cost, name="switch2-batched"
    )

    def dag():
        d = RequestDag()
        for i in range(200):
            d.new_request("sw", FlowModCommand.ADD, probe_match(i), priority=100)
        for i in range(200):
            d.new_request(
                "sw", FlowModCommand.MODIFY, probe_match(i), priority=100
            )
        for i in range(100, 200):
            d.new_request(
                "sw", FlowModCommand.DELETE, probe_match(i), priority=100
            )
        return d

    def run():
        results = {}
        for label, profile in (("no batching", SWITCH_2), ("batched", batched_profile)):
            for sched in ("tango", "random"):
                switch = profile.build(seed=4)
                switch.name = "sw"
                executor = NetworkExecutor({"sw": ControlChannel(switch)})
                if sched == "tango":
                    scheduler = BasicTangoScheduler(executor)
                else:
                    scheduler = RandomOrderScheduler(executor, seed=9)
                results[(label, sched)] = scheduler.schedule(dag()).makespan_ms
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label in ("no batching", "batched"):
        tango = results[(label, "tango")]
        random_order = results[(label, "random")]
        gain = (random_order - tango) / random_order
        rows.append([label, fmt_ms(random_order), fmt_ms(tango), f"{gain*100:.0f}%"])
    print_table(
        "Extension: same-command batching amplifies type grouping",
        ["switch", "random order", "Tango order", "Tango gain"],
        rows,
    )
    gain_plain = (
        results[("no batching", "random")] - results[("no batching", "tango")]
    ) / results[("no batching", "random")]
    gain_batched = (
        results[("batched", "random")] - results[("batched", "tango")]
    ) / results[("batched", "random")]
    assert gain_batched > gain_plain
    benchmark.extra_info["gain_plain"] = round(gain_plain, 3)
    benchmark.extra_info["gain_batched"] = round(gain_batched, 3)
