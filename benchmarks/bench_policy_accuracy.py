"""Section 5.3 -- cache-policy inference correctness matrix.

Runs Algorithm 2 against switches configured with each standard policy
(single-attribute FIFO/LIFO/LRU/LFU/priority plus two lexicographic
compositions) and checks the inferred terms match the true policy's
terms.  Trailing inferred terms beyond the true policy's length are the
switch's deterministic tie-break and are reported but not scored.
"""

from __future__ import annotations

import pytest

from repro.core.policy_inference import PolicyProber
from repro.core.probing import ProbingEngine
from repro.openflow.channel import ControlChannel
from repro.sim.rng import SeededRng
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import STANDARD_POLICIES

from benchmarks._helpers import print_table

CACHE_SIZE = 96


def bench_policy_inference_accuracy(benchmark):
    def run():
        outcomes = {}
        for name, policy in STANDARD_POLICIES.items():
            profile = make_cache_test_profile(
                policy,
                (CACHE_SIZE, 2 * CACHE_SIZE, None),
                layer_means_ms=(0.5, 2.5, 4.8),
            )
            switch = profile.build(seed=13)
            engine = ProbingEngine(
                ControlChannel(switch), rng=SeededRng(13).child(f"pol:{name}")
            )
            result = PolicyProber(engine, cache_size=CACHE_SIZE).probe()
            outcomes[name] = (policy.terms, tuple(result.terms), result.rounds)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    correct = 0
    for name, (true_terms, inferred_terms, rounds) in outcomes.items():
        match = inferred_terms[: len(true_terms)] == tuple(true_terms)
        correct += match
        rows.append(
            [
                name,
                " > ".join(f"{a.value}{'+' if d.value > 0 else '-'}" for a, d in true_terms),
                " > ".join(f"{a.value}{'+' if d.value > 0 else '-'}" for a, d in inferred_terms),
                rounds,
                "OK" if match else "MISS",
            ]
        )
    print_table(
        "Cache-policy inference accuracy",
        ["true policy", "true terms", "inferred terms", "rounds", "verdict"],
        rows,
    )
    assert correct == len(outcomes), "every policy must be identified"
    benchmark.extra_info["identified"] = f"{correct}/{len(outcomes)}"
