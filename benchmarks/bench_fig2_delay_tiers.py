"""Figure 2 -- per-flow forwarding delay tiers.

* Fig 2a (OVS): three tiers; first packet of a matched flow takes the
  slow path (~4.5 ms), the second the fast path (3 ms), unmatched flows
  the control path (~4.65 ms).
* Fig 2b (Switch #1): FIFO software table over TCAM; the first 2047
  installed flows (plus the pre-installed default route) forward in the
  fast path (~0.665 ms), later flows in the slow path (~3.7 ms),
  unmatched flows via the controller (~7.5 ms).
* Fig 2c (Switch #2): two tiers only -- fast (~0.4 ms) or controller
  (~8 ms).
"""

from __future__ import annotations

import statistics

import pytest

from repro.openflow.actions import ControllerAction
from repro.openflow.channel import ControlChannel
from repro.openflow.match import MatchKind
from repro.openflow.messages import FlowMod, FlowModCommand, PacketOut
from repro.core.probing import probe_match, probe_packet
from repro.switches.profiles import OVS_PROFILE, SWITCH_1, SWITCH_2

from benchmarks._helpers import print_table


def _install(channel, count, kind=MatchKind.L3):
    for i in range(count):
        channel.send_flow_mod(
            FlowMod(FlowModCommand.ADD, probe_match(i, kind), priority=100)
        )


def _fig2a_ovs():
    """80 rules, 160 flows x 2 packets: slow/fast/control tiers."""
    channel = ControlChannel(OVS_PROFILE.build(seed=5))
    _install(channel, 80)
    first_packet, second_packet, control = [], [], []
    for flow in range(160):
        rtt1 = channel.send_packet_out(PacketOut(probe_packet(flow)))
        rtt2 = channel.send_packet_out(PacketOut(probe_packet(flow)))
        if flow < 80:
            first_packet.append(rtt1)
            second_packet.append(rtt2)
        else:
            control.extend([rtt1, rtt2])
    return {
        "slow": statistics.mean(first_packet),
        "fast": statistics.mean(second_packet),
        "control": statistics.mean(control),
    }


def _fig2b_switch1():
    """3500 rules (wide), 5000 flows: fast for first ~2047, then slow."""
    channel = ControlChannel(SWITCH_1.build(seed=5))
    # The default route occupies one TCAM slot, as in the paper.
    channel.send_flow_mod(
        FlowMod(
            FlowModCommand.ADD,
            probe_match(999_999, MatchKind.L2_L3),
            priority=0,
            actions=(ControllerAction(),),
        )
    )
    _install(channel, 3500, MatchKind.L2_L3)
    fast, slow, control = [], [], []
    for flow in range(0, 5000, 10):
        rtt = channel.send_packet_out(PacketOut(probe_packet(flow)))
        if flow < 2047:
            fast.append(rtt)
        elif flow < 3500:
            slow.append(rtt)
        else:
            control.append(rtt)
    return {
        "fast": statistics.mean(fast),
        "slow": statistics.mean(slow),
        "control": statistics.mean(control),
        "fast_count_boundary": 2047,
    }


def _fig2c_switch2():
    """Two tiers: TCAM hit or controller."""
    channel = ControlChannel(SWITCH_2.build(seed=5))
    _install(channel, 500)
    fast = [channel.send_packet_out(PacketOut(probe_packet(i))) for i in range(0, 500, 5)]
    control = [
        channel.send_packet_out(PacketOut(probe_packet(i))) for i in range(600, 700, 5)
    ]
    return {"fast": statistics.mean(fast), "control": statistics.mean(control)}


def bench_fig2_delay_tiers(benchmark):
    def run():
        return {
            "ovs": _fig2a_ovs(),
            "switch1": _fig2b_switch1(),
            "switch2": _fig2c_switch2(),
        }

    tiers = benchmark.pedantic(run, rounds=1, iterations=1)

    ovs = tiers["ovs"]
    assert ovs["fast"] < ovs["slow"] < ovs["control"] + 0.5
    assert ovs["fast"] == pytest.approx(3.0, abs=0.4)

    s1 = tiers["switch1"]
    assert s1["fast"] < 1.2
    assert 2.5 < s1["slow"] < 5.0
    assert s1["control"] > 6.0

    s2 = tiers["switch2"]
    assert s2["fast"] < 1.0
    assert s2["control"] > 6.0

    rows = [
        ["OVS (2a)", f"{ovs['fast']:.2f}", f"{ovs['slow']:.2f}", f"{ovs['control']:.2f}", "3.0 / 4.5 / 4.65"],
        ["Switch #1 (2b)", f"{s1['fast']:.2f}", f"{s1['slow']:.2f}", f"{s1['control']:.2f}", "0.665 / 3.7 / 7.5"],
        ["Switch #2 (2c)", f"{s2['fast']:.2f}", "-", f"{s2['control']:.2f}", "0.4 / - / 8.0"],
    ]
    print_table(
        "Figure 2: forwarding delay tiers (ms, incl. control channel)",
        ["experiment", "fast", "slow", "control", "paper (ms)"],
        rows,
    )
    benchmark.extra_info["tiers"] = {k: {m: round(v, 3) for m, v in d.items()} for k, d in tiers.items()}
