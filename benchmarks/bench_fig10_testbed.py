"""Figure 10 -- network-wide optimization on the hardware testbed.

Three switches in a triangle (s1, s2 from Vendor #1, s3 from Vendor #3).
Scenarios:

* **LF**: the s1-s2 link fails; 400 flows reroute via s3.
* **TE1**: 800 requests, adds twice as frequent as deletions/mods.
* **TE2**: 800 requests, the three types equally distributed.

Schedulers: Dionysus (critical path), Tango with the rule-type pattern
only, and Tango with rule-type + priority patterns.  Paper improvements
over Dionysus: LF 0% (type) -> 70% (type+priority); TE1 20% -> 33%;
TE2 26% -> 28%.
"""

from __future__ import annotations

import pytest

from repro.baselines import DionysusScheduler
from repro.core.patterns import make_type_only_pattern
from repro.core.scheduler import BasicTangoScheduler
from repro.netem.network import EmulatedNetwork
from repro.netem.scenarios import LinkFailureScenario, TrafficEngineeringScenario
from repro.netem.topology import triangle_topology
from repro.sim.rng import SeededRng
from repro.switches.profiles import SWITCH_1, SWITCH_3

from benchmarks._helpers import fmt_ms, improvement, print_table

FLOWS = 400
TE_REQUESTS = 800


def _build_network(seed=3):
    network = EmulatedNetwork(
        triangle_topology(),
        default_profile=SWITCH_1,
        profiles={"s3": SWITCH_3},
        seed=seed,
    )
    rng = SeededRng(seed).child("fig10-flows")
    for _ in range(FLOWS):
        network.new_flow("s1", "s2", priority=rng.randint(1, 2000))
    network.preinstall_flow_rules()
    return network


def _scenario_dag(network, scenario):
    if scenario == "LF":
        return LinkFailureScenario(network, ("s1", "s2")).build_dag()
    te = TrafficEngineeringScenario(network, seed=9)
    mix = (0.5, 0.25, 0.25) if scenario == "TE 1" else (1 / 3, 1 / 3, 1 / 3)
    result = te.random_mix(TE_REQUESTS, mix=mix)
    result.apply_preinstall(network)
    return result


def _run(scenario, arm):
    network = _build_network()
    result = _scenario_dag(network, scenario)
    executor = network.executor()
    if arm == "Dionysus":
        scheduler = DionysusScheduler(executor)
    elif arm == "Tango (Type)":
        scheduler = BasicTangoScheduler(executor, patterns=[make_type_only_pattern()])
    else:
        scheduler = BasicTangoScheduler(executor)
    return scheduler.schedule(result.dag).makespan_ms


def bench_fig10_testbed(benchmark):
    scenarios = ("LF", "TE 1", "TE 2")
    arms = ("Dionysus", "Tango (Type)", "Tango (Type+Priority)")

    def run():
        return {
            scenario: {arm: _run(scenario, arm) for arm in arms}
            for scenario in scenarios
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for scenario in scenarios:
        base = results[scenario]["Dionysus"]
        rows.append(
            [
                scenario,
                fmt_ms(base),
                f"{fmt_ms(results[scenario]['Tango (Type)'])} ({improvement(base, results[scenario]['Tango (Type)'])})",
                f"{fmt_ms(results[scenario]['Tango (Type+Priority)'])} ({improvement(base, results[scenario]['Tango (Type+Priority)'])})",
            ]
        )
    print_table(
        "Figure 10: testbed network-wide installation time",
        ["scenario", "Dionysus", "Tango (Type)", "Tango (Type+Priority)"],
        rows,
    )
    print("Paper improvements vs Dionysus: LF 0% / 70%, TE1 20% / 33%, TE2 26% / 28%")

    lf = results["LF"]
    # LF: type-only cannot help (adds on one switch, mods on another);
    # priority sorting wins big.
    assert abs(lf["Tango (Type)"] - lf["Dionysus"]) < 0.25 * lf["Dionysus"]
    assert lf["Tango (Type+Priority)"] < 0.55 * lf["Dionysus"]
    for scenario in ("TE 1", "TE 2"):
        te = results[scenario]
        assert te["Tango (Type)"] < te["Dionysus"]
        assert te["Tango (Type+Priority)"] < te["Tango (Type)"]
    benchmark.extra_info["seconds"] = {
        s: {a: round(v / 1000, 3) for a, v in d.items()} for s, d in results.items()
    }
