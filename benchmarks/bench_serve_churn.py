"""Sustained-churn serving -- the long-running controller service.

Not tied to a paper figure: this bench quantifies the serving extension
(`repro.serve`) the ROADMAP's continuous-control-loop item calls for.
A Zipf/churn flow-request stream is served against a 96-rule budget
with FDRC admission, policy-ranked eviction, and wildcard aggregation;
the measured quantity is *virtual* time (sustained requests/sec, p50
and p99 install latency), and the full serving summary lands in
``benchmark.extra_info["serve"]`` so ``python -m repro.tools.report``
renders a "Sustained serving" section for it.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.perf.workloads import (
    SERVE_CHURN_CAPACITY,
    serve_bench_profile,
    serve_churn_config,
)
from repro.serve import ServeLoop

from benchmarks._helpers import print_table

ARRIVALS = 5000


def bench_serve_churn(benchmark):
    def run():
        loop = ServeLoop(
            serve_churn_config(ARRIVALS),
            serve_bench_profile(),
            metrics=MetricsRegistry(),
        )
        return loop.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    cache = result.cache
    rows = [
        ["arrivals", result.arrivals],
        ["virtual duration", f"{result.duration_ms / 1000.0:.2f}s"],
        ["requests/sec (virtual)", f"{result.requests_per_sec:.0f}"],
        ["install p50 / p99", f"{result.install_p50_ms} / {result.install_p99_ms} ms"],
        ["hit rate", f"{100.0 * cache.hit_rate:.1f}%"],
        ["evictions / aggregations", f"{cache.evictions} / {cache.aggregations}"],
        ["final occupancy", result.occupancy["total"]],
    ]
    print_table(
        f"Sustained serving under churn ({SERVE_CHURN_CAPACITY}-rule budget)",
        ["metric", "value"],
        rows,
    )

    # Shape: the stream must actually churn the finite table -- flows
    # are cached (nonzero hits), cold flows punted (FDRC admission),
    # and the budget respected at all times.
    assert cache.hits > 0 and cache.punts > 0
    assert cache.aggregations > 0
    assert result.occupancy["total"] <= SERVE_CHURN_CAPACITY
    assert result.install_p99_ms is not None
    benchmark.extra_info["serve"] = result.to_dict()
