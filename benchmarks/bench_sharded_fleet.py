"""Sharded fleet inference -- the 10k-switch scale path.

Not tied to a paper figure: this bench quantifies the sharded fleet
engine (`repro.core.shard`) the ROADMAP's fleet-scale item calls for.
A tier-named fleet with pairwise-distinct profile fingerprints is
inferred through :class:`repro.core.shard.ShardedFleetEngine` and the
result checked byte-identical against the single-queue
:class:`repro.core.fleet.FleetInferenceEngine`; the shard statistics
(per-shard makespan, merge cost, cross-shard coalescing) land in
``benchmark.extra_info["shards"]`` so ``python -m repro.tools.report``
renders a "Sharded fleet" section for it.
"""

from __future__ import annotations

import json

from repro.core.fleet import FleetInferenceEngine, build_fleet
from repro.core.shard import ShardedFleetEngine
from repro.perf.workloads import SHARDED_BENCH_KNOBS, sharded_fleet_profiles

from benchmarks._helpers import print_table

MEMBERS = 128
SHARDS = 4


def bench_sharded_fleet(benchmark):
    profiles = sharded_fleet_profiles(MEMBERS)

    def run():
        engine = ShardedFleetEngine(
            build_fleet(profiles, MEMBERS),
            seed=3,
            shards=SHARDS,
            partition="tier",
            backend="inline",
            **SHARDED_BENCH_KNOBS,
        )
        result = engine.infer_fleet(include_policy=False)
        return engine, result

    engine, result = benchmark.pedantic(run, rounds=1, iterations=1)

    reference = FleetInferenceEngine(
        build_fleet(profiles, MEMBERS), seed=3, **SHARDED_BENCH_KNOBS
    )
    ref_result = reference.infer_fleet(include_policy=False)

    stats = engine.shard_stats
    rows = [
        ["members", len(result.members)],
        ["shards", f"{stats['shards']} ({stats['partition']} partition)"],
        ["virtual makespan", f"{result.makespan_ms / 1000.0:.2f}s"],
        ["sequential sum", f"{result.sequential_sum_ms / 1000.0:.2f}s"],
        ["virtual speedup", f"{result.speedup:.2f}x"],
        ["full probe runs", result.full_probe_runs],
        ["cross-shard coalesced", stats["cross_shard_coalesced"]],
        ["merge events / records", f"{stats['merge_events']} / {stats['merge_records']}"],
    ]
    print_table(
        f"Sharded fleet inference ({MEMBERS} members, {SHARDS} shards)",
        ["metric", "value"],
        rows,
    )

    # Shape: every member infers, every shard does real work, and the
    # merged result is byte-identical to the single-queue engine.
    assert all(member.model is not None for member in result.members)
    assert all(shard["members"] > 0 for shard in stats["per_shard"])
    assert json.dumps(result.summary(), sort_keys=True) == json.dumps(
        ref_result.summary(), sort_keys=True
    )
    benchmark.extra_info["shards"] = stats
