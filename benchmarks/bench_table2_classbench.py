"""Table 2 -- ClassBench rule sets and their priority assignments.

Paper values:

    file          flows  topological priorities  R priorities
    Classbench1   829    64                      829
    Classbench2   989    38                      989
    Classbench3   972    33                      972

Our generator synthesises rule sets with these shape statistics; the
bench regenerates them and derives both priority assignments.
"""

from __future__ import annotations

import pytest

from repro.core.priorities import (
    assign_r_priorities,
    assign_topological_priorities,
    check_priorities,
    distinct_priority_count,
)
from repro.workloads.classbench import CLASSBENCH_PRESETS, classbench_preset

from benchmarks._helpers import print_table


def bench_table2_classbench(benchmark):
    def run():
        rows = []
        for index in sorted(CLASSBENCH_PRESETS):
            ruleset = classbench_preset(index)
            topo = assign_topological_priorities(ruleset.dependencies)
            r = assign_r_priorities(ruleset.dependencies)
            assert check_priorities(ruleset.dependencies, topo) == []
            assert check_priorities(ruleset.dependencies, r) == []
            rows.append(
                (
                    index,
                    len(ruleset),
                    distinct_priority_count(topo),
                    distinct_priority_count(r),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for index, flows, topo, r in rows:
        expected_flows, expected_depth = CLASSBENCH_PRESETS[index]
        assert flows == expected_flows
        assert topo == expected_depth
        assert r == expected_flows
        table.append([f"Classbench{index}", flows, topo, r])
    print_table(
        "Table 2: flows and priority counts per ClassBench file",
        ["file", "flows installed", "topological priorities", "R priorities"],
        table,
    )
    benchmark.extra_info["rows"] = table
