"""Figure 3a -- total installation time for the six permutations of
200 adds, 200 modifications, and 200 deletions on hardware Switch #1
(preloaded with 1000 rules of random priority).

Paper observation: the permutation matters on hardware; orderings that
delete first (freeing TCAM rows before additions shift them) and add in
a cheap order beat add-first orderings.
"""

from __future__ import annotations

import itertools

import pytest

from repro.openflow.channel import ControlChannel
from repro.openflow.match import MatchKind
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.core.probing import probe_match
from repro.sim.rng import SeededRng
from repro.switches.profiles import SWITCH_1

from benchmarks._helpers import fmt_ms, print_table

PRELOAD = 1000
OPS = 200


def _run_permutation(order, seed):
    rng = SeededRng(seed).child("fig3a")
    switch = SWITCH_1.build(seed=seed)
    channel = ControlChannel(switch)
    priorities = rng.sample(list(range(1, 8 * PRELOAD)), PRELOAD + OPS)
    for i in range(PRELOAD):
        channel.send_flow_mod(
            FlowMod(FlowModCommand.ADD, probe_match(i, MatchKind.L3), priorities[i])
        )

    mods = [
        FlowMod(FlowModCommand.MODIFY, probe_match(i, MatchKind.L3), priorities[i])
        for i in range(OPS)
    ]
    dels = [
        FlowMod(FlowModCommand.DELETE, probe_match(OPS + i, MatchKind.L3), actions=())
        for i in range(OPS)
    ]
    adds = [
        FlowMod(
            FlowModCommand.ADD,
            probe_match(PRELOAD + i, MatchKind.L3),
            priorities[PRELOAD + i],
        )
        for i in range(OPS)
    ]
    batches = {"add": adds, "mod": mods, "del": dels}

    start = switch.clock.now_ms
    for op in order:
        for flow_mod in batches[op]:
            channel.send_flow_mod(flow_mod)
    return switch.clock.now_ms - start


def bench_fig3a_op_permutations(benchmark):
    permutations = list(itertools.permutations(("add", "mod", "del")))
    repeats = 3

    def run():
        results = {}
        for order in permutations:
            times = [
                _run_permutation(order, seed=10 + r) for r in range(repeats)
            ]
            results["_".join(order)] = sum(times) / len(times)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, fmt_ms(value)]
        for name, value in sorted(results.items(), key=lambda kv: kv[1])
    ]
    print_table(
        "Figure 3a: 200 add/mod/del permutations on Switch #1 (avg of 3)",
        ["permutation", "install time"],
        rows,
    )

    # Del-before-add orderings must beat add-before-del orderings, since
    # deletions remove shiftable TCAM entries before the additions land.
    assert results["del_mod_add"] < results["add_mod_del"]
    assert results["del_add_mod"] < results["add_del_mod"]
    benchmark.extra_info["seconds"] = {k: round(v / 1000, 3) for k, v in results.items()}
