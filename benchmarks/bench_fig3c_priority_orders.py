"""Figure 3c -- installation time under different priority orderings.

Paper observations on the hardware switch:

* same-priority insertion is cheapest; ascending is close;
* descending is dramatically slower (~46x vs same at 2000 rules);
* random sits in between (~12x slower than ascending at 2000 rules);
* on OVS all four orderings coincide.
"""

from __future__ import annotations

import pytest

from repro.openflow.channel import ControlChannel
from repro.openflow.match import MatchKind
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.core.probing import probe_match
from repro.sim.rng import SeededRng
from repro.switches.profiles import OVS_PROFILE, SWITCH_1

from benchmarks._helpers import fmt_ms, print_table

SIZES = (500, 1000, 2000, 3500, 5000)
ORDERS = ("same", "ascending", "random", "descending")


def _priorities(order, n, rng):
    if order == "same":
        return [100] * n
    if order == "ascending":
        return list(range(1, n + 1))
    if order == "descending":
        return list(range(n, 0, -1))
    return rng.sample(list(range(1, 8 * n)), n)


def _measure(profile, order, n, seed):
    rng = SeededRng(seed).child(f"fig3c:{profile.name}:{order}:{n}")
    switch = profile.build(seed=seed)
    channel = ControlChannel(switch)
    priorities = _priorities(order, n, rng)
    start = switch.clock.now_ms
    for i, priority in enumerate(priorities):
        channel.send_flow_mod(
            FlowMod(FlowModCommand.ADD, probe_match(i, MatchKind.L3), priority)
        )
    return switch.clock.now_ms - start


def bench_fig3c_priority_orders(benchmark):
    def run():
        series = {}
        for profile in (SWITCH_1, OVS_PROFILE):
            for order in ORDERS:
                series[(profile.name, order)] = [
                    _measure(profile, order, n, seed=31) for n in SIZES
                ]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [f"{order} ({name})"] + [fmt_ms(v) for v in values]
        for (name, order), values in series.items()
    ]
    print_table(
        "Figure 3c: install time by priority ordering",
        ["series"] + [f"n={n}" for n in SIZES],
        rows,
    )

    at_2000 = SIZES.index(2000)
    same = series[("switch1", "same")][at_2000]
    ascending = series[("switch1", "ascending")][at_2000]
    descending = series[("switch1", "descending")][at_2000]
    random_order = series[("switch1", "random")][at_2000]
    desc_ratio = descending / same
    rand_ratio = random_order / ascending
    print(
        f"Switch #1 at n=2000: desc/same = {desc_ratio:.0f}x (paper ~46x), "
        f"random/asc = {rand_ratio:.1f}x (paper ~12x)"
    )
    assert same <= ascending < random_order < descending
    assert desc_ratio > 15
    assert rand_ratio > 5

    # OVS curves overlap (priority has no effect).
    ovs = [series[("ovs", order)][at_2000] for order in ORDERS]
    assert max(ovs) < 1.3 * min(ovs)

    benchmark.extra_info["desc_over_same_at_2000"] = round(desc_ratio, 1)
    benchmark.extra_info["random_over_asc_at_2000"] = round(rand_ratio, 1)
