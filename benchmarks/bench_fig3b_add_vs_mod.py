"""Figure 3b -- add vs. modify latency as batch size grows.

Paper observation: on the hardware switch, modifying 5000 entries is
about six times faster than adding 5000 new ones (adds shift
priority-sorted TCAM entries; modifies rewrite in place).  On OVS both
operations are cheap and nearly identical.
"""

from __future__ import annotations

import pytest

from repro.openflow.channel import ControlChannel
from repro.openflow.match import MatchKind
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.core.probing import probe_match
from repro.sim.rng import SeededRng
from repro.switches.profiles import OVS_PROFILE, SWITCH_1

from benchmarks._helpers import fmt_ms, print_table

SIZES = (500, 1000, 2000, 3500, 5000)


def _measure(profile, op, n, seed):
    rng = SeededRng(seed).child(f"fig3b:{profile.name}:{op}:{n}")
    switch = profile.build(seed=seed)
    channel = ControlChannel(switch)
    priorities = rng.sample(list(range(1, 8 * n)), n)
    if op == "mod":
        for i in range(n):
            channel.send_flow_mod(
                FlowMod(FlowModCommand.ADD, probe_match(i, MatchKind.L3), priorities[i])
            )
        start = switch.clock.now_ms
        for i in range(n):
            channel.send_flow_mod(
                FlowMod(FlowModCommand.MODIFY, probe_match(i, MatchKind.L3), priorities[i])
            )
        return switch.clock.now_ms - start
    start = switch.clock.now_ms
    for i in range(n):
        channel.send_flow_mod(
            FlowMod(FlowModCommand.ADD, probe_match(i, MatchKind.L3), priorities[i])
        )
    return switch.clock.now_ms - start


def bench_fig3b_add_vs_mod(benchmark):
    def run():
        series = {}
        for profile in (SWITCH_1, OVS_PROFILE):
            for op in ("add", "mod"):
                series[(profile.name, op)] = [
                    _measure(profile, op, n, seed=21) for n in SIZES
                ]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (name, op), values in series.items():
        rows.append([f"{op} ({name})"] + [fmt_ms(v) for v in values])
    print_table(
        "Figure 3b: add vs modify total time",
        ["series"] + [f"n={n}" for n in SIZES],
        rows,
    )

    hw_add = series[("switch1", "add")][-1]
    hw_mod = series[("switch1", "mod")][-1]
    ratio = hw_add / hw_mod
    print(f"Switch #1 add/mod ratio at n=5000: {ratio:.1f}x (paper: ~6x)")
    assert 3.0 <= ratio <= 12.0

    ovs_add = series[("ovs", "add")][-1]
    ovs_mod = series[("ovs", "mod")][-1]
    assert ovs_add == pytest.approx(ovs_mod, rel=0.5)
    assert ovs_add < 0.05 * hw_add

    benchmark.extra_info["hw_add_over_mod_at_5000"] = round(ratio, 2)
