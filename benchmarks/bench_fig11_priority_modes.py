"""Figure 11 -- priority sorting vs. priority enforcement on the testbed.

Four scenarios varying rule mix, DAG depth, and total rules:

    add-only,  DAG=1, 2.4K rules
    mixed,     DAG=1, 2.4K rules
    mixed,     DAG=2, 2.4K rules
    mixed,     DAG=2, 3.2K rules

Arms: Dionysus; Tango with *priority sorting* (apps supplied priorities,
Tango orders installation); Tango with *priority enforcement* (apps
supplied only dependencies, Tango assigns minimal distinct priorities).
Paper: Tango wins everywhere, up to 85% (sorting) and 95% (enforcement)
for the add-only single-level scenario, with smaller gains as DAG depth
grows (fewer independent rules to reorder).
"""

from __future__ import annotations

import pytest

from repro.baselines import DionysusScheduler
from repro.core.priorities import enforce_topological_priorities
from repro.core.scheduler import BasicTangoScheduler
from repro.netem.network import EmulatedNetwork
from repro.netem.scenarios import TrafficEngineeringScenario
from repro.netem.topology import triangle_topology
from repro.switches.profiles import SWITCH_1, SWITCH_3

from benchmarks._helpers import fmt_ms, improvement, print_table

SCENARIOS = (
    ("add, DAG=1, 2.4K", (1.0, 0.0, 0.0), 1, 2400),
    ("mixed, DAG=1, 2.4K", (0.5, 0.25, 0.25), 1, 2400),
    ("mixed, DAG=2, 2.4K", (0.5, 0.25, 0.25), 2, 2400),
    ("mixed, DAG=2, 3.2K", (0.5, 0.25, 0.25), 2, 3200),
)


def _build(mix, levels, total, seed=5):
    network = EmulatedNetwork(
        triangle_topology(),
        default_profile=SWITCH_1,
        profiles={"s3": SWITCH_3},
        seed=seed,
    )
    scenario = TrafficEngineeringScenario(network, seed=seed + 1)
    # Vendor #3's TCAM (767 entries, no software overflow) cannot absorb
    # 800+ additions, so the bulk-rule scenarios target the two Vendor #1
    # switches, whose userspace tables take the overflow.
    result = scenario.random_mix(
        total, mix=mix, dag_levels=levels, locations=("s1", "s2")
    )
    result.apply_preinstall(network)
    return network, result


def _run(mix, levels, total, arm):
    network, result = _build(mix, levels, total)
    dag = result.dag
    if arm == "Enforcement":
        dag = enforce_topological_priorities(dag)
    executor = network.executor()
    if arm == "Dionysus":
        scheduler = DionysusScheduler(executor)
    else:
        scheduler = BasicTangoScheduler(executor)
    return scheduler.schedule(dag).makespan_ms


def bench_fig11_priority_modes(benchmark):
    arms = ("Dionysus", "Sorting", "Enforcement")

    def run():
        return {
            name: {arm: _run(mix, levels, total, arm) for arm in arms}
            for name, mix, levels, total in SCENARIOS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, _, _, _ in SCENARIOS:
        base = results[name]["Dionysus"]
        rows.append(
            [
                name,
                fmt_ms(base),
                f"{fmt_ms(results[name]['Sorting'])} ({improvement(base, results[name]['Sorting'])})",
                f"{fmt_ms(results[name]['Enforcement'])} ({improvement(base, results[name]['Enforcement'])})",
            ]
        )
    print_table(
        "Figure 11: priority sorting vs enforcement",
        ["scenario", "Dionysus", "Tango (Priority Sorting)", "Tango (Priority Enforcement)"],
        rows,
    )
    print("Paper: best case (add-only, DAG=1) -85% sorting, -95% enforcement")

    add_only = results["add, DAG=1, 2.4K"]
    assert add_only["Sorting"] < 0.4 * add_only["Dionysus"]
    assert add_only["Enforcement"] < add_only["Sorting"]
    for name, _, levels, _ in SCENARIOS:
        r = results[name]
        assert r["Sorting"] < r["Dionysus"]
        assert r["Enforcement"] <= r["Sorting"] * 1.05
    # Deeper DAGs leave less room for optimization (paper's last finding).
    shallow_gain = 1 - results["mixed, DAG=1, 2.4K"]["Sorting"] / results[
        "mixed, DAG=1, 2.4K"
    ]["Dionysus"]
    deep_gain = 1 - results["mixed, DAG=2, 2.4K"]["Sorting"] / results[
        "mixed, DAG=2, 2.4K"
    ]["Dionysus"]
    print(f"Sorting gain: DAG=1 {shallow_gain*100:.0f}% vs DAG=2 {deep_gain*100:.0f}%")
    benchmark.extra_info["seconds"] = {
        s: {a: round(v / 1000, 3) for a, v in d.items()} for s, d in results.items()
    }
