"""Figure 5 -- round-trip-time clusters reveal flow-table layers.

The paper shows RTTs of 2500 flows installed in hardware Switch #2
falling into three well-separated bands ("fast path 1", "fast path 2",
and "slow path").  We reproduce the multi-band structure with a
three-layer switch profile (two hardware banks plus a software table)
and verify the clustering stage of Algorithm 1 recovers every band and
its population.
"""

from __future__ import annotations

import pytest

from repro.core.clustering import cluster_1d
from repro.core.probing import ProbingEngine
from repro.openflow.channel import ControlChannel
from repro.sim.rng import SeededRng
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import FIFO

from benchmarks._helpers import print_table

#: Two fast banks and a slow software tier, RTT means as in Figure 5
#: (plotted there in units of 10^-2 ms: ~0.05, ~0.4, ~1.2 ms).
LAYER_SIZES = (1000, 800, None)
LAYER_MEANS = (0.05, 0.4, 1.2)
FLOWS = 2500


def bench_fig5_rtt_clusters(benchmark):
    profile = make_cache_test_profile(
        FIFO,
        layer_sizes=LAYER_SIZES,
        layer_means_ms=LAYER_MEANS,
        jitter_std_ms=0.01,
    )

    def run():
        switch = profile.build(seed=17)
        engine = ProbingEngine(
            ControlChannel(switch), rng=SeededRng(17).child("fig5")
        )
        for _ in range(FLOWS):
            handle = engine.install_new_flow(priority=100)
        rtts = [engine.measure_rtt(h) for h in engine.flows]
        return rtts

    rtts = benchmark.pedantic(run, rounds=1, iterations=1)
    clusters = cluster_1d(rtts, min_gap_ms=0.15, min_cluster_fraction=0.002)

    rows = [
        [f"band {i}", f"{c.mean_ms:.3f}", f"{c.lo_ms:.3f}-{c.hi_ms:.3f}", c.count]
        for i, c in enumerate(clusters)
    ]
    print_table(
        "Figure 5: RTT bands over 2500 installed flows",
        ["cluster", "mean (ms)", "range (ms)", "flows"],
        rows,
    )

    assert len(clusters) == 3
    assert clusters[0].count == 1000
    assert clusters[1].count == 800
    assert clusters[2].count == 700
    benchmark.extra_info["bands"] = [
        {"mean_ms": round(c.mean_ms, 3), "count": c.count} for c in clusters
    ]
