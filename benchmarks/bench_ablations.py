"""Ablation benches for the design choices DESIGN.md calls out.

1. **TCAM shift cost** -- with entry shifting disabled, priority order
   stops mattering and Tango's scheduling advantage over Dionysus
   collapses: the asymmetry Tango exploits comes from exactly this
   mechanism.
2. **Sampling estimator vs census** -- Algorithm 1's negative-binomial
   sampling stays accurate under traffic-reactive policies (LRU), while
   the naive "count cluster members during a one-pass census" estimator
   collapses, because the census probes themselves promote flows.
3. **Scheduler extensions** -- the concurrent guard-time scheduler
   dominates the barrier-free basic scheduler on dependency chains that
   cross switches.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines import DionysusScheduler
from repro.core.clustering import assign_cluster, cluster_1d
from repro.core.probing import ProbingEngine
from repro.core.scheduler import (
    BasicTangoScheduler,
    ConcurrentTangoScheduler,
    NetworkExecutor,
)
from repro.core.size_inference import SizeProber
from repro.core.requests import RequestDag
from repro.netem.network import EmulatedNetwork
from repro.netem.scenarios import TrafficEngineeringScenario
from repro.netem.topology import triangle_topology
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import FlowModCommand
from repro.sim.rng import SeededRng
from repro.switches.profiles import SWITCH_1, make_cache_test_profile
from repro.tables.policies import LRU

from benchmarks._helpers import fmt_ms, print_table


def _no_shift(profile):
    cost = dataclasses.replace(profile.cost_model, shift_ms=0.0, priority_group_ms=0.0)
    return dataclasses.replace(profile, cost_model=cost, name=profile.name + "-noshift")


def _te_makespans(profile):
    def run(scheduler_factory):
        network = EmulatedNetwork(
            triangle_topology(), default_profile=profile, seed=3
        )
        scenario = TrafficEngineeringScenario(network, seed=5)
        result = scenario.random_mix(600, mix=(1.0, 0.0, 0.0))
        result.apply_preinstall(network)
        return scheduler_factory(network.executor()).schedule(result.dag).makespan_ms

    dionysus = run(lambda ex: DionysusScheduler(ex))
    tango = run(lambda ex: BasicTangoScheduler(ex))
    return dionysus, tango


def bench_ablation_shift_cost(benchmark):
    def run():
        with_shift = _te_makespans(SWITCH_1)
        without_shift = _te_makespans(_no_shift(SWITCH_1))
        return with_shift, without_shift

    (d_with, t_with), (d_without, t_without) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    gain_with = (d_with - t_with) / d_with
    gain_without = (d_without - t_without) / d_without
    print_table(
        "Ablation: TCAM shift cost drives Tango's advantage",
        ["configuration", "Dionysus", "Tango", "Tango gain"],
        [
            ["shift cost on", fmt_ms(d_with), fmt_ms(t_with), f"{gain_with*100:.0f}%"],
            ["shift cost off", fmt_ms(d_without), fmt_ms(t_without), f"{gain_without*100:.0f}%"],
        ],
    )
    assert gain_with > 0.3
    assert abs(gain_without) < 0.1
    benchmark.extra_info["gain_with"] = round(gain_with, 3)
    benchmark.extra_info["gain_without"] = round(gain_without, 3)


def bench_ablation_sampling_vs_census(benchmark):
    """Under LRU, the one-pass census undercounts the fast layer badly."""
    true_size = 128
    profile = make_cache_test_profile(LRU, (true_size, None), layer_means_ms=(0.5, 3.0))

    def run():
        # Paper estimator (Algorithm 1 stage 3).
        switch = profile.build(seed=9)
        engine = ProbingEngine(ControlChannel(switch), rng=SeededRng(9).child("ab"))
        result = SizeProber(engine, max_rules=512, accuracy_target=0.02).probe()
        sampling_estimate = result.layers[0].estimated_size

        # Naive census: probe every flow once; count fast-tier RTTs.
        switch = profile.build(seed=10)
        engine = ProbingEngine(ControlChannel(switch), rng=SeededRng(10).child("ab2"))
        for _ in range(512):
            handle = engine.new_handle(priority=100)
            engine.install_flow(handle)
            engine.send_probe_packet(handle)
        flows = list(engine.flows)
        engine.rng.shuffle(flows)
        rtts = [engine.measure_rtt(h) for h in flows]
        clusters = cluster_1d(rtts, min_gap_ms=0.5)
        census_estimate = sum(
            1 for r in rtts if assign_cluster(clusters, r) == 0
        )
        return sampling_estimate, census_estimate

    sampling_estimate, census_estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    sampling_error = abs(sampling_estimate - true_size) / true_size
    census_error = abs(census_estimate - true_size) / true_size
    print_table(
        f"Ablation: size estimators under LRU (true size {true_size})",
        ["estimator", "estimate", "error"],
        [
            ["NB sampling (Alg. 1)", sampling_estimate, f"{sampling_error*100:.1f}%"],
            ["one-pass census", census_estimate, f"{census_error*100:.1f}%"],
        ],
    )
    assert sampling_error <= 0.05
    assert census_error > 2 * sampling_error
    benchmark.extra_info["sampling_error"] = round(sampling_error, 4)
    benchmark.extra_info["census_error"] = round(census_error, 4)


def bench_ablation_concurrent_guard(benchmark):
    """Guard-time dispatch overlaps cross-switch dependency chains."""

    def build_dag():
        from repro.openflow.match import IpPrefix, Match

        dag = RequestDag()
        for i in range(200):
            match = Match(eth_type=0x0800, ip_dst=IpPrefix(0x0E000000 + i, 32))
            parent = dag.new_request("fast", FlowModCommand.ADD, match, priority=i + 1)
            child_match = Match(eth_type=0x0800, ip_dst=IpPrefix(0x0F000000 + i, 32))
            dag.new_request(
                "slow", FlowModCommand.ADD, child_match, priority=i + 1, after=[parent]
            )
        return dag

    def executor():
        fast = SWITCH_1.build(seed=1)
        fast.name = "fast"
        slow = SWITCH_1.build(seed=2)
        slow.name = "slow"
        # The slow switch pays 5x the base add cost.
        slow.cost_model = dataclasses.replace(
            slow.cost_model, add_base_ms=slow.cost_model.add_base_ms * 5
        )
        return NetworkExecutor(
            {"fast": ControlChannel(fast), "slow": ControlChannel(slow)}
        )

    def run():
        basic = BasicTangoScheduler(executor()).schedule(build_dag()).makespan_ms
        estimates = {"fast": 1.0, "slow": 5.0}
        concurrent = (
            ConcurrentTangoScheduler(
                executor(),
                estimate=lambda r: estimates[r.location],
                guard_ms=2.0,
            )
            .schedule(build_dag())
            .makespan_ms
        )
        return basic, concurrent

    basic, concurrent = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: concurrent guard-time dispatch on cross-switch chains",
        ["scheduler", "makespan"],
        [["basic (dependency-gated)", fmt_ms(basic)], ["concurrent (guarded)", fmt_ms(concurrent)]],
    )
    assert concurrent <= basic
    benchmark.extra_info["basic_s"] = round(basic / 1000, 3)
    benchmark.extra_info["concurrent_s"] = round(concurrent / 1000, 3)
