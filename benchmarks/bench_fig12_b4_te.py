"""Figure 12 -- traffic engineering on Google's B4 topology over OVS.

A traffic-matrix change on the 12-node B4 backbone drives ~2200
end-to-end flow requests (adds, mods, and dels derived from the max-min
fair allocation diff).  Paper: Tango improves on Dionysus by ~8% -- the
gain comes from the rule-type pattern only, since OVS install latency is
priority-insensitive.
"""

from __future__ import annotations

import pytest

from repro.baselines import DionysusScheduler
from repro.core.scheduler import BasicTangoScheduler
from repro.netem.network import EmulatedNetwork
from repro.netem.scenarios import TrafficEngineeringScenario
from repro.netem.topology import b4_topology
from repro.sim.rng import SeededRng
from repro.switches.profiles import OVS_PROFILE
from repro.workloads.traffic import uniform_traffic_matrix

from benchmarks._helpers import fmt_ms, improvement, print_table

TARGET_REQUESTS = 2200


def _build_scenario(seed):
    network = EmulatedNetwork(b4_topology(), default_profile=OVS_PROFILE, seed=seed)
    rng = SeededRng(seed).child("fig12-tm")
    nodes = network.topology.switches
    # A substantial matrix change: roughly a third of the site pairs carry
    # traffic before and after, with limited overlap, so the allocation
    # diff produces adds, deletes, and rate modifications.
    before = uniform_traffic_matrix(nodes, total_demand=300.0, rng=rng, sparsity=0.3)
    after_pairs = uniform_traffic_matrix(nodes, total_demand=360.0, rng=rng, sparsity=0.3)
    scenario = TrafficEngineeringScenario(network, seed=seed + 1)
    result = scenario.from_traffic_matrices(before, after_pairs, flows_per_pair=12)
    return network, result


def bench_fig12_b4_te(benchmark):
    def run():
        outcomes = {}
        network, result = _build_scenario(seed=7)
        counts = (result.adds, result.mods, result.dels, result.total)
        outcomes["dionysus"] = (
            DionysusScheduler(network.executor()).schedule(result.dag).makespan_ms
        )
        network, result = _build_scenario(seed=7)
        outcomes["tango"] = (
            BasicTangoScheduler(network.executor()).schedule(result.dag).makespan_ms
        )
        return counts, outcomes

    (adds, mods, dels, total), outcomes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    base = outcomes["dionysus"]
    rows = [
        ["Dionysus", fmt_ms(base), "-"],
        ["Tango", fmt_ms(outcomes["tango"]), improvement(base, outcomes["tango"])],
    ]
    print_table(
        f"Figure 12: B4 TE ({total} switch requests: {adds} add / {mods} mod / {dels} del)",
        ["scheduler", "installation time", "vs Dionysus"],
        rows,
    )
    print("Paper: ~8% improvement (rule-type pattern only; OVS is priority-insensitive)")

    # Shape: the request volume approximates the paper's 2200 end-to-end
    # requests and Tango wins by a modest, OVS-sized margin.
    assert total > TARGET_REQUESTS * 0.5
    gain = (base - outcomes["tango"]) / base
    assert 0.0 <= gain <= 0.35
    benchmark.extra_info["gain"] = round(gain, 4)
    benchmark.extra_info["requests"] = total
