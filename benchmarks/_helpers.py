"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation.  The measured quantity is *virtual* (simulated) time -- the
analogue of the authors' testbed wall clock -- while pytest-benchmark
additionally records host wall time for the harness itself.

Every bench prints the rows/series the paper reports, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the evaluation section's numbers in one pass.  The same rows
are attached to ``benchmark.extra_info`` for machine consumption.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.probing import ProbingEngine
from repro.core.requests import RequestDag
from repro.core.scheduler import NetworkExecutor
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import FlowModCommand
from repro.sim.rng import SeededRng
from repro.switches.profiles import SwitchProfile
from repro.workloads.classbench import RuleSet


def make_engine(profile: SwitchProfile, seed: int = 1) -> ProbingEngine:
    """A probing engine bound to a fresh switch built from ``profile``."""
    switch = profile.build(seed=seed)
    return ProbingEngine(
        ControlChannel(switch), rng=SeededRng(seed).child(f"bench:{profile.name}")
    )


def single_switch_executor(
    profile: SwitchProfile, name: str = "sw", seed: int = 1
) -> NetworkExecutor:
    switch = profile.build(seed=seed)
    switch.name = name
    return NetworkExecutor({name: ControlChannel(switch)})


def ruleset_dag(
    ruleset: RuleSet, priorities: Dict[int, int], location: str = "sw"
) -> RequestDag:
    """A single-switch ADD request DAG from an ACL rule set.

    Dependency edges follow the rule-overlap graph: a shadowing rule must
    be installed before the rules it shadows.
    """
    dag = RequestDag()
    requests = {}
    for index, rule in enumerate(ruleset.rules):
        requests[index] = dag.new_request(
            location, FlowModCommand.ADD, rule, priority=priorities[index]
        )
    # Edges follow ACL index order, so acyclicity holds by construction;
    # one final validation replaces the per-edge check.
    for u, v in ruleset.dependencies.edges():
        dag.add_dependency(requests[u], requests[v], check_cycle=False)
    dag.validate_acyclic()
    return dag


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Render one paper table/figure data series to stdout."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt_ms(value_ms: float) -> str:
    """Milliseconds rendered as seconds with 3 decimals."""
    return f"{value_ms / 1000.0:.3f}s"


def improvement(baseline: float, value: float) -> str:
    if baseline <= 0:
        return "n/a"
    return f"{(baseline - value) / baseline * 100.0:+.0f}%"
