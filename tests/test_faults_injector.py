"""The fault injector's channel proxies (repro.faults.injector)."""

import pytest

from repro.faults import (
    DisconnectWindow,
    FaultInjector,
    FaultPlan,
    StallWindow,
    verify_noop_injection,
)
from repro.openflow.actions import OutputAction
from repro.openflow.channel import ControlChannel
from repro.openflow.errors import (
    ControlMessageLostError,
    FlowModRejectedError,
    SwitchDisconnectedError,
)
from repro.openflow.match import IpPrefix, Match, PacketFields
from repro.openflow.messages import FlowMod, FlowModCommand, PacketOut
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _channel(name="sw", seed=1):
    switch = SimulatedSwitch(
        name=name,
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=1.0,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=0.5,
            del_ms=0.25,
            jitter_std_frac=0.0,
        ),
        seed=seed,
    )
    return ControlChannel(switch, rtt=ConstantLatency(0.0))


def _flow_mod(i, priority=100):
    return FlowMod(
        command=FlowModCommand.ADD,
        match=Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32)),
        priority=priority,
        actions=(OutputAction(port=1),),
    )


def _packet(i):
    return PacketOut(packet=PacketFields(eth_type=0x0800, ip_dst=i))


# -- wrapping ----------------------------------------------------------------
def test_wrap_channels_preserves_keys_and_counts():
    injector = FaultInjector(FaultPlan())
    channels = {"b": _channel("b"), "a": _channel("a")}
    wrapped = injector.wrap_channels(channels)
    assert sorted(wrapped) == ["a", "b"]
    assert all(w.inner is channels[k] for k, w in wrapped.items())
    assert injector.injection_counts() == {
        "losses": 0,
        "rejects": 0,
        "probe_losses": 0,
        "stalls": 0,
        "disconnects": 0,
    }


def test_proxy_delegates_channel_surface():
    channel = _channel()
    wrapped = FaultInjector(FaultPlan()).wrap_channel(channel)
    assert wrapped.switch is channel.switch
    assert wrapped.clock is channel.clock
    wrapped.send_flow_mod(_flow_mod(1))
    assert wrapped.history is channel.history
    assert len(channel.history) == 1
    assert wrapped.LOSS_TIMEOUT_MS == channel.LOSS_TIMEOUT_MS


# -- probabilistic faults ----------------------------------------------------
def test_loss_injection_costs_detect_time_and_counts():
    plan = FaultPlan(seed=1, loss_probability=0.9, loss_detect_ms=7.0)
    channel = _channel()
    wrapped = FaultInjector(plan).wrap_channel(channel)
    before = channel.clock.now_ms
    with pytest.raises(ControlMessageLostError):
        wrapped.send_flow_mod(_flow_mod(1))
    assert channel.clock.now_ms == before + 7.0
    assert wrapped.injected_losses == 1
    assert len(channel.history) == 0  # the switch never saw the message


def test_reject_injection_costs_detect_time_and_counts():
    plan = FaultPlan(seed=1, reject_probability=0.9, reject_detect_ms=3.0)
    channel = _channel()
    wrapped = FaultInjector(plan).wrap_channel(channel)
    before = channel.clock.now_ms
    with pytest.raises(FlowModRejectedError):
        wrapped.send_flow_mod(_flow_mod(1))
    assert channel.clock.now_ms == before + 3.0
    assert wrapped.injected_rejects == 1


def test_probe_loss_reports_timeout_rtt():
    plan = FaultPlan(seed=1, probe_loss_probability=0.9)
    channel = _channel()
    wrapped = FaultInjector(plan).wrap_channel(channel)
    wrapped.send_flow_mod(_flow_mod(1, priority=10))
    rtt = wrapped.send_packet_out(_packet(1))
    assert rtt == channel.LOSS_TIMEOUT_MS
    assert wrapped.injected_probe_losses == 1


# -- window faults -----------------------------------------------------------
def test_disconnect_window_fails_fast_with_reconnect_time():
    plan = FaultPlan(disconnects=(DisconnectWindow(0.0, 50.0),))
    channel = _channel()
    wrapped = FaultInjector(plan).wrap_channel(channel)
    before = channel.clock.now_ms
    with pytest.raises(SwitchDisconnectedError) as info:
        wrapped.send_flow_mod(_flow_mod(1))
    assert channel.clock.now_ms == before  # fail-fast: zero clock cost
    assert info.value.reconnect_at_ms == 50.0
    assert wrapped.disconnect_hits == 1
    # After the window the same message goes through.
    channel.clock.advance_to(50.0)
    wrapped.send_flow_mod(_flow_mod(1))
    assert len(channel.history) == 1


def test_disconnect_also_times_out_probes():
    plan = FaultPlan(disconnects=(DisconnectWindow(0.0, 50.0),), loss_detect_ms=4.0)
    channel = _channel()
    wrapped = FaultInjector(plan).wrap_channel(channel)
    before = channel.clock.now_ms
    assert wrapped.send_packet_out(_packet(1)) == channel.LOSS_TIMEOUT_MS
    assert channel.clock.now_ms == before + 4.0


def test_stall_window_adds_extra_time():
    plan = FaultPlan(stalls=(StallWindow(0.0, 100.0, extra_ms=9.0),))
    bare = _channel(seed=3)
    faulty_inner = _channel(seed=3)
    wrapped = FaultInjector(plan).wrap_channel(faulty_inner)
    bare.send_flow_mod(_flow_mod(1))
    wrapped.send_flow_mod(_flow_mod(1))
    assert wrapped.stall_hits == 1
    assert faulty_inner.clock.now_ms == bare.clock.now_ms + 9.0


def test_stall_scoped_to_named_switch():
    plan = FaultPlan(stalls=(StallWindow(0.0, 100.0, extra_ms=9.0, switch="other"),))
    channel = _channel("sw")
    wrapped = FaultInjector(plan).wrap_channel(channel)
    wrapped.send_flow_mod(_flow_mod(1))
    assert wrapped.stall_hits == 0


# -- determinism --------------------------------------------------------------
def _fault_trace(plan, n=40):
    channel = _channel()
    wrapped = FaultInjector(plan).wrap_channel(channel)
    trace = []
    for i in range(n):
        try:
            wrapped.send_flow_mod(_flow_mod(i))
            trace.append("ok")
        except ControlMessageLostError:
            trace.append("loss")
        except FlowModRejectedError:
            trace.append("reject")
    return trace, channel.clock.now_ms


def test_same_seed_same_fault_sequence():
    plan = FaultPlan(seed=9, loss_probability=0.3, reject_probability=0.2)
    assert _fault_trace(plan) == _fault_trace(plan)


def test_different_seed_different_fault_sequence():
    a, _ = _fault_trace(FaultPlan(seed=9, loss_probability=0.3))
    b, _ = _fault_trace(FaultPlan(seed=10, loss_probability=0.3))
    assert a != b


def test_streams_are_per_switch_name_not_wrap_order():
    plan = FaultPlan(seed=9, loss_probability=0.3)

    def outcomes(order):
        injector = FaultInjector(plan)
        wrapped = {name: injector.wrap_channel(_channel(name)) for name in order}
        result = {}
        for name in sorted(wrapped):
            events = []
            for i in range(20):
                try:
                    wrapped[name].send_flow_mod(_flow_mod(i))
                    events.append("ok")
                except ControlMessageLostError:
                    events.append("loss")
            result[name] = events
        return result

    assert outcomes(["a", "b"]) == outcomes(["b", "a"])


def test_verify_noop_injection_passes():
    verify_noop_injection(n=60)
