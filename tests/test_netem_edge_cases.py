"""Edge-case tests for netem scenarios and model export."""

import io
import json

import pytest

from repro.core.inference import SwitchInferenceEngine
from repro.netem.network import EmulatedNetwork
from repro.netem.scenarios import LinkFailureScenario, TrafficEngineeringScenario
from repro.netem.topology import Topology, b4_topology, triangle_topology
from repro.switches.profiles import OVS_PROFILE, make_cache_test_profile
from repro.tables.policies import LRU
from repro.tools.cli import main as cli_main


def _network():
    return EmulatedNetwork(triangle_topology(), default_profile=OVS_PROFILE, seed=1)


# -- scenario edge cases -------------------------------------------------------
def test_link_failure_with_no_affected_flows():
    network = _network()
    network.new_flow("s1", "s3")  # does not cross s1-s2
    result = LinkFailureScenario(network, ("s1", "s2")).build_dag()
    assert result.total == 0
    assert len(result.dag) == 0


def test_link_failure_only_counts_crossing_flows():
    network = _network()
    crossing = network.new_flow("s1", "s2")
    network.new_flow("s2", "s3")
    scenario = LinkFailureScenario(network, ("s2", "s1"))  # unordered pair
    affected = scenario.affected_flows()
    assert [f.flow_id for f in affected] == [crossing.flow_id]


def test_random_mix_single_request():
    scenario = TrafficEngineeringScenario(_network(), seed=1)
    result = scenario.random_mix(1, mix=(1.0, 0.0, 0.0))
    assert result.total == 1
    assert result.adds == 1


def test_random_mix_levels_deeper_than_requests():
    scenario = TrafficEngineeringScenario(_network(), seed=1)
    result = scenario.random_mix(2, mix=(1.0, 0.0, 0.0), dag_levels=2)
    assert result.total == 2
    assert result.dag.depth() == 2


def test_te_matrices_without_preinstall():
    network = EmulatedNetwork(b4_topology(), default_profile=OVS_PROFILE, seed=2)
    scenario = TrafficEngineeringScenario(network, seed=3)
    pair_a = ("b4-01", "b4-04")
    pair_b = ("b4-02", "b4-05")
    result = scenario.from_traffic_matrices(
        {pair_a: 5.0}, {pair_b: 5.0}, preinstall=False
    )
    assert result.adds > 0
    assert result.dels > 0
    # Nothing installed on the switches yet.
    assert all(s.num_flows == 0 for s in network.switches.values())


def test_te_matrices_identical_matrices_produce_no_requests():
    network = EmulatedNetwork(b4_topology(), default_profile=OVS_PROFILE, seed=2)
    scenario = TrafficEngineeringScenario(network, seed=3)
    matrix = {("b4-01", "b4-04"): 5.0}
    result = scenario.from_traffic_matrices(matrix, dict(matrix))
    assert result.total == 0


def test_empty_topology_network():
    topology = Topology("empty")
    topology.add_switch("lonely")
    network = EmulatedNetwork(topology, default_profile=OVS_PROFILE)
    assert network.port_along_path(["lonely"], "lonely") == network.LOCAL_PORT
    assert network.neighbor_on_port("lonely", 2) is None


# -- model export -----------------------------------------------------------------
def test_inferred_model_to_dict_roundtrips_through_json():
    # Cache 64 >= the behaviour probe's 40 flows, so the LRU switch shows
    # no first-packet penalty (an under-provisioned LRU cache is
    # *genuinely* traffic-driven and would be classified as such).
    profile = make_cache_test_profile(LRU, (64, None), layer_means_ms=(0.5, 3.0))
    engine = SwitchInferenceEngine(
        profile, seed=4, size_probe_max_rules=256, latency_batch_sizes=(30, 60)
    )
    model = engine.infer(include_policy=True)
    payload = json.loads(json.dumps(model.to_dict()))
    assert payload["name"] == profile.name
    assert payload["layers"][0]["size"] == model.layer_sizes[0]
    assert payload["layers"][-1]["size"] is None
    assert payload["policy"][0]["attribute"] == "usage_time"
    assert payload["behavior"]["traffic_driven_caching"] is False
    assert "add/ascending" in payload["latency_curves"]


def test_underprovisioned_lru_is_classified_traffic_driven():
    """When probing exceeds the cache, LRU placement *is* traffic-driven."""
    from repro.core.behavior_inference import BehaviorProber
    from repro.core.probing import ProbingEngine
    from repro.openflow.channel import ControlChannel
    from repro.sim.rng import SeededRng

    profile = make_cache_test_profile(LRU, (16, None), layer_means_ms=(0.5, 3.0))
    engine = ProbingEngine(
        ControlChannel(profile.build(seed=4)), rng=SeededRng(4).child("b")
    )
    result = BehaviorProber(engine, flows=40).probe()
    assert result.traffic_driven_caching


def test_cli_json_output_is_valid_json():
    out = io.StringIO()
    assert (
        cli_main(
            ["probe", "--profile", "switch3", "--max-rules", "1024", "--json"],
            out=out,
        )
        == 0
    )
    payload = json.loads(out.getvalue())
    assert payload["name"] == "switch3"
    assert payload["layers"][0]["size"] == 767
