"""Tests for the deterministic span/event tracer."""

import pytest

from repro.obs.trace import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_span_records_start_and_end_from_injected_clock():
    clock = FakeClock(10.0)
    tracer = Tracer(now_ms=clock)
    span = tracer.span("work", category="test")
    clock.now = 25.0
    event = span.close()
    assert event.start_ms == 10.0
    assert event.end_ms == 25.0
    assert event.duration_ms == 15.0
    assert event.is_span


def test_span_context_manager_closes_and_records():
    clock = FakeClock(1.0)
    tracer = Tracer(now_ms=clock)
    with tracer.span("work") as span:
        span.set(key="value")
        clock.now = 2.0
    (event,) = tracer.events
    assert event.attrs == {"key": "value"}
    assert event.end_ms == 2.0


def test_span_closes_even_when_body_raises():
    tracer = Tracer(now_ms=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("work"):
            raise RuntimeError("boom")
    assert len(tracer) == 1


def test_nested_spans_link_parents():
    tracer = Tracer(now_ms=FakeClock())
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    instant = tracer.event("tick")
    inner.close()
    outer.close()
    events = {e.name: e for e in tracer.events}
    assert events["outer"].parent_id is None
    assert events["inner"].parent_id == events["outer"].event_id
    assert instant.parent_id == events["inner"].event_id


def test_per_span_clock_override_interleaves_timelines():
    default = FakeClock(100.0)
    other = FakeClock(5.0)
    tracer = Tracer(now_ms=default)
    with tracer.span("theirs", clock=other):
        other.now = 7.0
    with tracer.span("ours"):
        default.now = 110.0
    theirs, ours = tracer.events
    assert (theirs.start_ms, theirs.end_ms) == (5.0, 7.0)
    assert (ours.start_ms, ours.end_ms) == (100.0, 110.0)


def test_no_clock_at_all_timestamps_zero():
    tracer = Tracer()
    event = tracer.event("tick")
    assert event.start_ms == 0.0


def test_ring_buffer_drops_oldest_and_counts():
    tracer = Tracer(now_ms=FakeClock(), capacity=3)
    for index in range(5):
        tracer.event(f"e{index}")
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [e.name for e in tracer.events] == ["e2", "e3", "e4"]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_out_of_order_close_does_not_corrupt_stack():
    tracer = Tracer(now_ms=FakeClock())
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.close()  # wrong order: outer closed first
    inner.close()
    after = tracer.span("after")
    after.close()
    events = {e.name: e for e in tracer.events}
    assert events["after"].parent_id is None


def test_double_close_records_once():
    tracer = Tracer(now_ms=FakeClock())
    span = tracer.span("once")
    span.close()
    span.close()
    assert len(tracer) == 1


def test_event_ids_are_sequential_and_unique():
    tracer = Tracer(now_ms=FakeClock())
    ids = [tracer.event(f"e{i}").event_id for i in range(4)]
    assert ids == sorted(set(ids))


def test_trace_event_dict_roundtrip():
    original = TraceEvent(
        event_id=7,
        name="work",
        category="test",
        start_ms=1.5,
        end_ms=2.5,
        parent_id=3,
        attrs={"pattern": "DEL MOD ASCEND_ADD", "n": 4},
    )
    assert TraceEvent.from_dict(original.to_dict()) == original
    instant = TraceEvent(event_id=8, name="tick")
    assert TraceEvent.from_dict(instant.to_dict()) == instant


def test_clear_resets_everything():
    tracer = Tracer(now_ms=FakeClock(), capacity=1)
    tracer.event("a")
    tracer.event("b")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_default_capacity_is_bounded():
    assert Tracer().capacity == DEFAULT_CAPACITY


def test_null_tracer_is_disabled_no_op():
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.span("anything", category="x", foo=1)
    assert span.set(bar=2) is span
    assert span.close() is None
    with NULL_TRACER.span("ctx"):
        pass
    assert NULL_TRACER.event("tick") is None
    assert NULL_TRACER.events == []
    assert len(NULL_TRACER) == 0
    NULL_TRACER.clear()


def test_null_tracer_returns_shared_span():
    assert NullTracer().span("a") is NULL_TRACER.span("b")


def test_real_tracer_is_enabled():
    assert Tracer().enabled is True
