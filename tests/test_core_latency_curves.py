"""Tests for latency-curve probing and fitting."""

import pytest

from repro.core.latency_curves import (
    LatencyCurve,
    LatencyCurveProber,
    PriorityPattern,
    derive_rewrite_patterns,
    fit_curve,
)
from repro.core.probing import ProbingEngine
from repro.core.scores import TangoScoreDatabase
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import FlowModCommand
from repro.sim.rng import SeededRng
from repro.switches.profiles import OVS_PROFILE, SWITCH_2


def _factory(profile, scores=None, seed_box=[0]):
    def make():
        seed_box[0] += 1
        switch = profile.build(seed=seed_box[0])
        return ProbingEngine(
            ControlChannel(switch),
            scores=scores,
            rng=SeededRng(seed_box[0]).child("lat"),
        )

    return make


# -- fitting ---------------------------------------------------------------------
def test_fit_linear_curve():
    samples = [(100, 200.0), (200, 400.0), (400, 800.0)]
    curve = fit_curve(FlowModCommand.ADD, PriorityPattern.SAME, samples)
    assert curve.linear_ms == pytest.approx(2.0, rel=0.01)
    assert curve.quadratic_ms == pytest.approx(0.0, abs=1e-6)


def test_fit_quadratic_curve():
    samples = [(n, 0.5 * n + 0.01 * n * n) for n in (100, 200, 400, 800)]
    curve = fit_curve(FlowModCommand.ADD, PriorityPattern.DESCENDING, samples)
    assert curve.linear_ms == pytest.approx(0.5, rel=0.05)
    assert curve.quadratic_ms == pytest.approx(0.01, rel=0.05)


def test_fit_requires_samples():
    with pytest.raises(ValueError):
        fit_curve(FlowModCommand.ADD, PriorityPattern.SAME, [])


def test_total_and_per_op():
    curve = LatencyCurve(
        op=FlowModCommand.ADD,
        pattern=PriorityPattern.SAME,
        linear_ms=1.0,
        quadratic_ms=0.01,
    )
    assert curve.total_ms(10) == pytest.approx(11.0)
    # Marginal cost grows with fill level.
    assert curve.per_op_ms(100) > curve.per_op_ms(0)


# -- probing ---------------------------------------------------------------------
def test_prober_measures_all_operations():
    scores = TangoScoreDatabase()
    prober = LatencyCurveProber(
        _factory(SWITCH_2, scores), batch_sizes=(50, 100, 200), scores=scores
    )
    curves = prober.probe()
    keys = set(curves)
    assert (FlowModCommand.ADD, PriorityPattern.ASCENDING) in keys
    assert (FlowModCommand.ADD, PriorityPattern.DESCENDING) in keys
    assert (FlowModCommand.MODIFY, PriorityPattern.SAME) in keys
    assert (FlowModCommand.DELETE, PriorityPattern.SAME) in keys


def test_hardware_descending_has_quadratic_term():
    prober = LatencyCurveProber(_factory(SWITCH_2), batch_sizes=(50, 100, 200, 400))
    curves = prober.probe()
    descending = curves[(FlowModCommand.ADD, PriorityPattern.DESCENDING)]
    ascending = curves[(FlowModCommand.ADD, PriorityPattern.ASCENDING)]
    assert descending.quadratic_ms > 5 * max(ascending.quadratic_ms, 1e-9)
    assert descending.total_ms(400) > 3 * ascending.total_ms(400)


def test_ovs_curves_are_flat():
    prober = LatencyCurveProber(_factory(OVS_PROFILE), batch_sizes=(50, 100, 200))
    curves = prober.probe()
    descending = curves[(FlowModCommand.ADD, PriorityPattern.DESCENDING)]
    ascending = curves[(FlowModCommand.ADD, PriorityPattern.ASCENDING)]
    assert descending.total_ms(200) == pytest.approx(ascending.total_ms(200), rel=0.3)


def test_curves_stored_in_score_db():
    scores = TangoScoreDatabase()
    prober = LatencyCurveProber(
        _factory(SWITCH_2, scores), batch_sizes=(50, 100), scores=scores
    )
    prober.probe()
    stored = scores.get("switch2", "latency_curve", op="add", pattern="descending")
    assert stored is not None
    assert stored.op is FlowModCommand.ADD


def test_batch_sizes_required():
    with pytest.raises(ValueError):
        LatencyCurveProber(_factory(SWITCH_2), batch_sizes=())


# -- derived patterns -----------------------------------------------------------------
def test_derive_rewrite_patterns_weights_reflect_measurements():
    prober = LatencyCurveProber(_factory(SWITCH_2), batch_sizes=(50, 100, 200, 400))
    curves = prober.probe()
    ascending, descending = derive_rewrite_patterns(curves)
    counts = {FlowModCommand.ADD: 100}
    # Descending adds must score strictly worse on hardware.
    assert ascending.score_counts(counts) > descending.score_counts(counts)


def test_derived_patterns_order_adds_by_priority():
    prober = LatencyCurveProber(_factory(SWITCH_2), batch_sizes=(50, 100))
    ascending, descending = derive_rewrite_patterns(prober.probe())
    low = ascending.order_key(FlowModCommand.ADD, 1)
    high = ascending.order_key(FlowModCommand.ADD, 9)
    assert low < high
    assert descending.order_key(FlowModCommand.ADD, 9) < descending.order_key(
        FlowModCommand.ADD, 1
    )
