"""Tests for seeded randomness."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import SeededRng, derive_seed


def test_same_seed_same_stream():
    a = SeededRng(42)
    b = SeededRng(42)
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_different_seeds_differ():
    assert SeededRng(1).uniform() != SeededRng(2).uniform()


def test_child_streams_are_independent_of_sibling_creation():
    root = SeededRng(7)
    child_a1 = root.child("a")
    # Creating another child must not perturb "a"'s stream.
    root.child("b")
    child_a2 = SeededRng(7).child("a")
    assert child_a1.uniform() == child_a2.uniform()


def test_derive_seed_is_stable_and_distinct():
    assert derive_seed(1, "x") == derive_seed(1, "x")
    assert derive_seed(1, "x") != derive_seed(1, "y")
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_randint_bounds():
    rng = SeededRng(3)
    values = {rng.randint(0, 5) for _ in range(200)}
    assert values <= {0, 1, 2, 3, 4}
    assert len(values) == 5


def test_choice_empty_rejected():
    with pytest.raises(ValueError):
        SeededRng(0).choice([])


def test_choice_single():
    assert SeededRng(0).choice(["only"]) == "only"


def test_sample_distinct():
    rng = SeededRng(5)
    sample = rng.sample(list(range(100)), 10)
    assert len(set(sample)) == 10


def test_sample_too_many_rejected():
    with pytest.raises(ValueError):
        SeededRng(0).sample([1, 2], 3)


def test_shuffle_is_permutation():
    rng = SeededRng(9)
    data = list(range(50))
    shuffled = list(data)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == data


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_derive_seed_in_63_bit_range(seed, label):
    value = derive_seed(seed, label)
    assert 0 <= value < 2**63


def test_exponential_positive():
    rng = SeededRng(1)
    assert all(rng.exponential(2.0) > 0 for _ in range(100))
