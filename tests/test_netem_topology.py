"""Tests for topologies and flows."""

import pytest

from repro.netem.flows import NetworkFlow
from repro.netem.topology import Topology, b4_topology, triangle_topology


def test_triangle_shape():
    topology = triangle_topology()
    assert len(topology.switches) == 3
    assert len(topology.links) == 3
    assert topology.shortest_path("s1", "s2") == ["s1", "s2"]


def test_b4_shape():
    """Google's B4: 12 sites, 19 links."""
    topology = b4_topology()
    assert len(topology.switches) == 12
    assert len(topology.links) == 19


def test_b4_is_connected():
    import networkx as nx

    assert nx.is_connected(b4_topology().graph)


def test_capacity_validation():
    topology = Topology("t")
    topology.add_switch("a")
    topology.add_switch("b")
    with pytest.raises(ValueError):
        topology.add_link("a", "b", capacity=0)


def test_remove_link_changes_paths():
    topology = triangle_topology()
    assert topology.shortest_path("s1", "s2") == ["s1", "s2"]
    topology.remove_link("s1", "s2")
    assert topology.shortest_path("s1", "s2") == ["s1", "s3", "s2"]


def test_copy_is_independent():
    topology = triangle_topology()
    clone = topology.copy()
    clone.remove_link("s1", "s2")
    assert len(topology.links) == 3
    assert len(clone.links) == 2


def test_k_shortest_paths():
    topology = triangle_topology()
    paths = topology.k_shortest_paths("s1", "s2", k=2)
    assert paths[0] == ["s1", "s2"]
    assert paths[1] == ["s1", "s3", "s2"]


def test_flow_validation():
    with pytest.raises(ValueError):
        NetworkFlow(flow_id=1, src="a", dst="b", path=["a", "c"])
    with pytest.raises(ValueError):
        NetworkFlow(flow_id=1, src="a", dst="b", path=[])


def test_flow_links_are_sorted_pairs():
    flow = NetworkFlow(flow_id=1, src="a", dst="c", path=["a", "b", "c"])
    assert flow.links() == [("a", "b"), ("b", "c")]
    reverse = NetworkFlow(flow_id=2, src="c", dst="a", path=["c", "b", "a"])
    assert reverse.links() == [("b", "c"), ("a", "b")]


def test_flow_match_unique_per_flow():
    a = NetworkFlow(flow_id=1, src="a", dst="a", path=["a"])
    b = NetworkFlow(flow_id=2, src="a", dst="a", path=["a"])
    assert a.match().key() != b.match().key()
