"""Tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS_MS,
    NULL_METRICS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    scoped,
)


def test_counter_increments_and_rejects_negative():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec(3)
    assert gauge.value == 4.0


def test_histogram_buckets_and_overflow():
    histogram = Histogram("h", buckets=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(1.0)  # boundary lands in its own bucket (<=)
    histogram.observe(5.0)
    histogram.observe(99.0)  # overflow
    assert histogram.counts == [2, 1, 1]
    assert histogram.count == 4
    assert histogram.sum == pytest.approx(105.5)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0))


def test_registry_returns_same_handle_for_same_key():
    registry = MetricsRegistry()
    assert registry.counter("c", a="1") is registry.counter("c", a="1")
    assert registry.counter("c", a="1") is not registry.counter("c", a="2")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_registry_label_order_is_irrelevant():
    registry = MetricsRegistry()
    assert registry.counter("c", a="1", b="2") is registry.counter("c", b="2", a="1")


def test_registry_len_and_clear():
    registry = MetricsRegistry()
    registry.counter("c")
    registry.gauge("g")
    registry.histogram("h")
    assert len(registry) == 3
    registry.clear()
    assert len(registry) == 0


def test_snapshot_is_flat_sorted_and_json_ready():
    import json

    registry = MetricsRegistry()
    registry.counter("z.counter").inc(2)
    registry.counter("a.counter", switch="s1").inc()
    registry.gauge("a.gauge").set(7)
    registry.histogram("a.hist", buckets=(1.0,)).observe(0.5)
    snapshot = registry.snapshot()
    assert snapshot["z.counter"] == 2.0
    assert snapshot["a.counter{switch=s1}"] == 1.0
    assert snapshot["a.gauge"] == 7.0
    assert snapshot["a.hist"] == {
        "count": 1,
        "sum": 0.5,
        "buckets": {"1.0": 1},
        "overflow": 0,
    }
    json.dumps(snapshot)  # must serialise


def test_introspection_lists_are_sorted():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a")
    assert [c.name for c in registry.counters()] == ["a", "b"]


def test_default_histogram_buckets_are_sorted_unique():
    assert list(DEFAULT_BUCKETS_MS) == sorted(set(DEFAULT_BUCKETS_MS))


def test_bucket_presets_are_sorted_unique_and_fit_their_domain():
    for preset in (RATIO_BUCKETS, COUNT_BUCKETS):
        assert list(preset) == sorted(set(preset))
    # Ratio buckets cover the 0-1 occupancy domain and end at exactly 1.
    assert RATIO_BUCKETS[-1] == 1.0
    assert all(0.0 < edge <= 1.0 for edge in RATIO_BUCKETS)
    assert COUNT_BUCKETS[0] == 1.0


def test_histogram_bucket_presets_are_usable_overrides():
    registry = MetricsRegistry()
    ratio = registry.histogram("switch.occupancy_ratio", buckets=RATIO_BUCKETS)
    ratio.observe(0.3)
    ratio.observe(0.97)
    assert ratio.buckets == tuple(RATIO_BUCKETS)
    assert ratio.count == 2
    counts = registry.histogram("scheduler.batch_size", buckets=COUNT_BUCKETS)
    counts.observe(7)
    assert counts.buckets == tuple(COUNT_BUCKETS)


def test_histogram_rejects_conflicting_bucket_override():
    registry = MetricsRegistry()
    registry.histogram("h", buckets=(1.0, 10.0))
    # Same buckets re-stated: fine, same handle.
    assert registry.histogram("h", buckets=(1.0, 10.0)) is registry.histogram("h")
    with pytest.raises(ValueError):
        registry.histogram("h", buckets=(2.0, 20.0))


def test_null_registry_is_disabled_and_ignores_updates():
    assert NULL_METRICS.enabled is False
    counter = NULL_METRICS.counter("c", any="label")
    counter.inc(100)
    assert counter.value == 0.0
    gauge = NULL_METRICS.gauge("g")
    gauge.set(5)
    gauge.inc()
    gauge.dec()
    assert gauge.value == 0.0
    histogram = NULL_METRICS.histogram("h")
    histogram.observe(1.0)
    assert histogram.count == 0
    # Shared handles: no allocation per lookup.
    assert NULL_METRICS.counter("x") is NULL_METRICS.counter("y")


def test_scoped_swaps_and_restores_default_registry():
    before = default_registry()
    with scoped() as fresh:
        assert default_registry() is fresh
        assert fresh is not before
        fresh.counter("inside").inc()
    assert default_registry() is before
    assert "inside" not in before.snapshot()


def test_scoped_accepts_explicit_registry():
    mine = MetricsRegistry()
    with scoped(mine) as active:
        assert active is mine
        assert default_registry() is mine


def test_scoped_restores_on_exception():
    before = default_registry()
    with pytest.raises(RuntimeError):
        with scoped():
            raise RuntimeError("boom")
    assert default_registry() is before
