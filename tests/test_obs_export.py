"""Tests for the trace/metrics exporters."""

import io
import json

from repro.obs.export import (
    prometheus_text,
    read_jsonl,
    summarize_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, Tracer


def _sample_events():
    tracer = Tracer(now_ms=lambda: 0.0)
    clock = iter([1.0, 3.0, 4.0, 9.0]).__next__
    with tracer.span("batch", category="scheduler", clock=clock, pattern="P1"):
        pass
    with tracer.span("batch", category="scheduler", clock=clock, pattern="P2"):
        pass
    tracer.event("timeout", category="probing", flow=3)
    return tracer.events


def test_jsonl_roundtrip_through_file_handle():
    events = _sample_events()
    buffer = io.StringIO()
    assert write_jsonl(events, buffer) == len(events)
    assert read_jsonl(io.StringIO(buffer.getvalue())) == events


def test_jsonl_roundtrip_through_path(tmp_path):
    events = _sample_events()
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(events, path)
    assert read_jsonl(path) == events


def test_jsonl_is_byte_deterministic():
    first, second = io.StringIO(), io.StringIO()
    write_jsonl(_sample_events(), first)
    write_jsonl(_sample_events(), second)
    assert first.getvalue() == second.getvalue()
    # Compact separators and sorted keys, one object per line.
    line = first.getvalue().splitlines()[0]
    assert ": " not in line
    keys = list(json.loads(line))
    assert keys == sorted(keys)


def test_chrome_trace_structure():
    doc = to_chrome_trace(_sample_events())
    assert doc["displayTimeUnit"] == "ms"
    records = doc["traceEvents"]
    metadata = [r for r in records if r["ph"] == "M"]
    spans = [r for r in records if r["ph"] == "X"]
    instants = [r for r in records if r["ph"] == "i"]
    # One named track per category (sorted: probing=0, scheduler=1).
    assert [m["args"]["name"] for m in metadata] == ["probing", "scheduler"]
    assert len(spans) == 2 and len(instants) == 1
    first = spans[0]
    assert first["ts"] == 1000.0  # ms -> us
    assert first["dur"] == 2000.0
    assert first["args"]["pattern"] == "P1"
    assert instants[0]["s"] == "t"
    assert spans[0]["tid"] != instants[0]["tid"]


def test_chrome_trace_empty_category_named_trace():
    tracer = Tracer()
    tracer.event("bare")
    doc = to_chrome_trace(tracer.events)
    (metadata, instant) = doc["traceEvents"]
    assert metadata["args"]["name"] == "trace"
    assert instant["cat"] == "trace"


def test_write_chrome_trace_to_path_is_valid_json(tmp_path):
    path = str(tmp_path / "trace.chrome.json")
    count = write_chrome_trace(_sample_events(), path)
    assert count == 3
    with open(path) as handle:
        doc = json.load(handle)
    assert "traceEvents" in doc


def test_prometheus_text_families_and_histogram():
    registry = MetricsRegistry()
    registry.counter("probe.packets_sent", switch="s1").inc(4)
    registry.counter("probe.packets_sent", switch="s2").inc(2)
    registry.gauge("probe.flows_installed").set(7)
    histogram = registry.histogram("executor.issue_ms", buckets=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(5.0)
    histogram.observe(50.0)
    text = prometheus_text(registry)
    # One TYPE line per family even with several label sets.
    assert text.count("# TYPE probe_packets_sent counter") == 1
    assert 'probe_packets_sent{switch="s1"} 4' in text
    assert 'probe_packets_sent{switch="s2"} 2' in text
    assert "# TYPE probe_flows_installed gauge" in text
    assert 'executor_issue_ms_bucket{le="1"} 1' in text
    assert 'executor_issue_ms_bucket{le="10"} 2' in text  # cumulative
    assert 'executor_issue_ms_bucket{le="+Inf"} 3' in text
    assert "executor_issue_ms_sum 55.5" in text
    assert "executor_issue_ms_count 3" in text


def test_prometheus_text_empty_registry_is_empty():
    assert prometheus_text(MetricsRegistry()) == ""


def test_summarize_events_rolls_up_spans_instants_patterns():
    summary = summarize_events(_sample_events())
    assert summary["events"] == 3
    stats = summary["spans"]["scheduler/batch"]
    assert stats["count"] == 2
    assert stats["total_ms"] == 7.0
    assert stats["max_ms"] == 5.0
    assert summary["instants"] == {"probing/timeout": 1}
    assert summary["patterns"] == {"P1": 1, "P2": 1}


def test_summarize_events_empty():
    summary = summarize_events([])
    assert summary["events"] == 0
    assert summary["spans"] == {}
    assert summary["patterns"] == {}


def test_read_jsonl_skips_blank_lines():
    buffer = io.StringIO()
    write_jsonl(_sample_events(), buffer)
    padded = "\n" + buffer.getvalue() + "\n\n"
    assert len(read_jsonl(io.StringIO(padded))) == 3


def test_roundtrip_preserves_instant_event(tmp_path):
    event = TraceEvent(event_id=1, name="tick", category="c", start_ms=2.0)
    path = str(tmp_path / "one.jsonl")
    write_jsonl([event], path)
    (loaded,) = read_jsonl(path)
    assert loaded == event
    assert not loaded.is_span


def _nested_span_events():
    tracer = Tracer(now_ms=lambda: 0.0)
    clock = iter([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).__next__
    with tracer.span("outer", category="scheduler", clock=clock):
        with tracer.span("middle", category="scheduler", clock=clock):
            with tracer.span("inner", category="executor", clock=clock):
                tracer.event("leaf", category="executor")
    return tracer.events


def test_jsonl_roundtrip_identity_on_nested_spans():
    events = _nested_span_events()
    buffer = io.StringIO()
    write_jsonl(events, buffer)
    assert read_jsonl(io.StringIO(buffer.getvalue())) == events
    # Nesting survives: inner spans close before outer ones.
    spans = {e.name: e for e in events if e.is_span}
    assert spans["inner"].start_ms >= spans["middle"].start_ms
    assert spans["inner"].end_ms <= spans["middle"].end_ms
    assert spans["middle"].end_ms <= spans["outer"].end_ms


def test_prometheus_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("c", path='a\\b"c\nd').inc()
    text = prometheus_text(registry)
    assert 'c{path="a\\\\b\\"c\\nd"} 1' in text
    # The exposition stays one sample per physical line.
    samples = [ln for ln in text.splitlines() if ln and not ln.startswith("#")]
    assert len(samples) == 1


def test_prometheus_text_parse_smoke():
    registry = MetricsRegistry()
    registry.counter("probe.packets_sent", switch="s1").inc(4)
    registry.gauge("probe.flows_installed").set(7)
    registry.histogram("executor.issue_ms", buckets=(1.0, 10.0)).observe(5.0)
    for line in prometheus_text(registry).splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)  # every sample value parses as a number
        name = name_part.split("{", 1)[0]
        assert name.replace("_", "").isalnum()


def test_summarize_events_degenerate_traces():
    # Zero-duration span and an instant sharing the same timestamp.
    tracer = Tracer(now_ms=lambda: 5.0)
    clock = iter([5.0, 5.0]).__next__
    with tracer.span("noop", category="c", clock=clock):
        pass
    tracer.event("blip", category="c")
    summary = summarize_events(tracer.events)
    assert summary["events"] == 2
    assert summary["spans"]["c/noop"]["total_ms"] == 0.0
    assert summary["spans"]["c/noop"]["max_ms"] == 0.0
    assert summary["instants"] == {"c/blip": 1}
