"""Property tests for mixed-width TCAM geometry in the table stack."""

from hypothesis import given, settings, strategies as st

from repro.openflow.actions import OutputAction
from repro.openflow.errors import TableFullError
from repro.openflow.match import IpPrefix, Match
from repro.tables.policies import FIFO
from repro.tables.stack import RankedTableStack, TableLayer
from repro.tables.tcam import TcamGeometry, TcamMode

ACTIONS = (OutputAction(1),)


def _match(i, wide):
    if wide:
        return Match(eth_dst=i, eth_type=0x0800, ip_dst=IpPrefix(i, 32))
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),  # slot units
    st.floats(min_value=1.0, max_value=3.0),  # wide cost
    st.lists(st.booleans(), min_size=1, max_size=30),  # insert widths
)
def test_tcam_slot_budget_never_exceeded(slots, wide_cost, widths):
    """Invariant: the sum of slot costs of layer-0 residents never
    exceeds the TCAM's physical slot budget, for any insert mix."""
    geometry = TcamGeometry(
        slot_units=slots, mode=TcamMode.ADAPTIVE, wide_cost=wide_cost
    )
    stack = RankedTableStack(
        [TableLayer("tcam", geometry=geometry), TableLayer("sw", capacity=None)],
        FIFO,
    )
    entries = []
    for index, wide in enumerate(widths):
        entries.append(stack.insert(_match(index, wide), 1, ACTIONS, float(index)))
    occupancy = stack.layer_occupancy()
    assert occupancy[0] + occupancy[1] == len(entries)
    used = sum(
        geometry.entry_cost(e.match.kind)
        for e in entries
        if stack.layer_of(e) == 0
    )
    assert used <= slots + 1e-9
    # FIFO: every layer-1 resident is newer than every layer-0 resident
    # only when costs are uniform; with mixed widths, a wide entry can
    # overflow while a later narrow one fits -- but ranks are preserved:
    ranks = [stack.rank_of(e) for e in entries]
    assert ranks == sorted(ranks)  # FIFO order == insertion order


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.lists(st.booleans(), min_size=1, max_size=25),
)
def test_bounded_geometry_rejections_are_consistent(slots, widths):
    """A rejected add means the candidate genuinely did not fit."""
    geometry = TcamGeometry(slot_units=slots, mode=TcamMode.ADAPTIVE, wide_cost=2.0)
    stack = RankedTableStack([TableLayer("tcam", geometry=geometry)], FIFO)
    used = 0.0
    for index, wide in enumerate(widths):
        cost = 2.0 if wide else 1.0
        try:
            stack.insert(_match(index, wide), 1, ACTIONS, float(index))
            used += cost
        except TableFullError:
            assert used + cost > slots
    assert used <= slots
