"""Tests for the benchmark report renderer."""

import io
import json

import pytest

from repro.tools.report import main, render_report


@pytest.fixture
def payload():
    return {
        "machine_info": {"node": "testhost", "python_version": "3.11"},
        "benchmarks": [
            {
                "name": "bench_fig10_testbed",
                "stats": {"mean": 1.234},
                "extra_info": {
                    "seconds": {"LF": {"Dionysus": 3.6, "Tango": 1.26}},
                    "gain": 0.65,
                },
            },
            {
                "name": "bench_table2_classbench",
                "stats": {"mean": 0.5},
                "extra_info": {"rows": [["Classbench1", 829, 64, 829]]},
            },
        ],
    }


def test_render_contains_bench_sections(payload):
    report = render_report(payload)
    assert "# Tango reproduction" in report
    assert "## bench_fig10_testbed" in report
    assert "## bench_table2_classbench" in report
    assert "testhost" in report


def test_render_includes_extra_info(payload):
    report = render_report(payload)
    assert "gain" in report
    assert "0.65" in report
    assert "Dionysus" in report


def test_render_handles_missing_extra_info():
    report = render_report({"benchmarks": [{"name": "x", "stats": {}}]})
    assert "(no extra_info recorded)" in report


def test_main_reads_file(tmp_path, payload):
    path = tmp_path / "run.json"
    path.write_text(json.dumps(payload))
    out = io.StringIO()
    assert main([str(path)], out=out) == 0
    assert "bench_fig10_testbed" in out.getvalue()


def test_main_reports_unreadable_file(tmp_path):
    assert main([str(tmp_path / "missing.json")], out=io.StringIO()) == 1


def test_main_reports_bad_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    assert main([str(path)], out=io.StringIO()) == 1


# -- races section ------------------------------------------------------------
def test_render_races_section_with_trace():
    from repro.tools.report import render_races

    summary = {
        "accesses": 4,
        "events": 4,
        "locations": 2,
        "findings": 1,
        "diagnostics": [
            {
                "code": "TNG040",
                "severity": "error",
                "message": "tie-break race on db:__fleet__/model_cache",
                "location": "db:__fleet__/model_cache @ t=5.000ms",
                "trace": [
                    "t=5.000ms seq=0 owner=a write cache.store db:...",
                    "t=5.000ms seq=1 owner=b read cache.lookup db:...",
                ],
            }
        ],
    }
    lines = render_races(summary)
    text = "\n".join(lines)
    assert "### Race check" in text
    assert "- accesses: 4 over 4 events (2 locations)" in text
    assert "**TNG040**" in text
    assert "seq=0 owner=a" in text and "seq=1 owner=b" in text


def test_render_report_includes_races_from_extra_info():
    data = {
        "benchmarks": [
            {
                "name": "fleet_sanitized",
                "stats": {},
                "extra_info": {
                    "races": {
                        "accesses": 10,
                        "events": 3,
                        "locations": 2,
                        "findings": 0,
                        "diagnostics": [],
                    }
                },
            }
        ]
    }
    report = render_report(data)
    assert "### Race check" in report
    assert "- findings: 0" in report
    assert "(no extra_info recorded)" not in report


def test_render_diagnostics_section():
    from repro.analysis import DiagnosticReport, Severity

    report = DiagnosticReport()
    report.add("TNG020", Severity.ERROR, "batch over capacity", location="s1",
               hint="shrink the batch")
    payload = {
        "benchmarks": [
            {
                "name": "bench_capacity_guard",
                "stats": {"mean": 0.5},
                "extra_info": {"diagnostics": report.to_dicts()},
            }
        ]
    }
    rendered = render_report(payload)
    assert "### Diagnostics" in rendered
    assert "**TNG020** (error) `s1`: batch over capacity" in rendered
    assert "shrink the batch" in rendered


def test_render_diagnostics_accepts_diagnostic_objects():
    from repro.analysis import DiagnosticReport, Severity
    from repro.tools.report import render_diagnostics

    report = DiagnosticReport()
    report.add("TNG010", Severity.ERROR, "cycle")
    lines = render_diagnostics(list(report))
    assert any("TNG010" in line for line in lines)


def test_render_flow_telemetry_section():
    from repro.obs.slo import SloPolicy, SloTarget
    from repro.obs.telemetry import TelemetryCollector, summarize_telemetry

    collector = TelemetryCollector(interval_ms=10.0)
    collector.add_policy(
        SloPolicy(
            [SloTarget(name="lat", series="executor.install_ms", threshold=1.0)],
            min_samples=2,
        )
    )
    for t in range(0, 100, 5):
        collector.observe_install("s1", "add", float(t), float(t) + 50.0)
    collector.finish(150.0)
    summary = summarize_telemetry(collector.samples)
    summary["alerts"] = [alert.to_dict() for alert in collector.alerts]
    payload = {
        "benchmarks": [
            {
                "name": "bench_flows",
                "stats": {"mean": 0.5},
                "extra_info": {"flow_telemetry": summary},
            }
        ]
    }
    rendered = render_report(payload)
    assert "### Flow telemetry" in rendered
    assert "series `executor.install_ms`" in rendered
    assert "**lat** (burn_rate, page)" in rendered


def test_render_serve_section():
    from repro.tools.report import render_serve

    summary = {
        "arrivals": 5000,
        "duration_ms": 2500.0,
        "requests_per_sec": 2000.0,
        "install_p50_ms": 0.8,
        "install_p99_ms": 2.4,
        "cache": {
            "lookups": 5000,
            "hits": 3000,
            "hit_rate": 0.6,
            "wildcard_hits": 120,
            "punts": 400,
            "installs": 900,
            "evictions": 250,
            "expirations": 30,
            "aggregations": 12,
            "aggregated_rules": 70,
        },
        "occupancy": {
            "total": 96,
            "layers": [{"name": "tcam", "entries": 96, "ratio": 1.0}],
        },
    }
    lines = render_serve(summary)
    text = "\n".join(lines)
    assert lines[0] == "### Sustained serving"
    assert "5000 arrivals" not in text  # arrivals folded into the rate line
    assert "2000.0 req/s sustained" in text
    assert "p50 0.8 ms, p99 2.4 ms" in text
    assert "3000/5000 hits (60.0%)" in text
    assert "250 evictions" in text
    assert "12 aggregations (70 rules folded)" in text
    assert "96 rules" in text and "`tcam` 96 (100%)" in text


def test_render_report_includes_serve_extra_info():
    payload = {
        "benchmarks": [
            {
                "name": "bench_serve_churn",
                "stats": {"mean": 0.4},
                "extra_info": {
                    "serve": {
                        "arrivals": 100,
                        "duration_ms": 50.0,
                        "requests_per_sec": 2000.0,
                        "cache": {"lookups": 100, "hits": 40, "hit_rate": 0.4},
                    }
                },
            }
        ]
    }
    rendered = render_report(payload)
    assert "### Sustained serving" in rendered
    assert "2000.0 req/s sustained" in rendered


def test_render_shards_section():
    from repro.tools.report import render_shards

    summary = {
        "shards": 4,
        "workers": 4,
        "partition": "tier",
        "backend": "process",
        "members": 64,
        "cross_shard_coalesced": 5,
        "wasted_probe_ops": 420,
        "merge_events": 320,
        "merge_records": 640,
        "cpu_count": 4,
        "per_shard": [
            {
                "shard": 0,
                "members": 16,
                "full_probes": 16,
                "cache_hits": 0,
                "makespan_ms": 954.1,
                "events": 80,
                "records": 160,
            },
            {
                "shard": 1,
                "members": 16,
                "full_probes": 14,
                "cache_hits": 2,
                "makespan_ms": 900.0,
                "events": 72,
                "records": 150,
            },
        ],
    }
    lines = render_shards(summary)
    text = "\n".join(lines)
    assert lines[0] == "### Sharded fleet"
    assert lines[-1] == ""
    assert "4 shards / 4 workers (tier partition, process backend)" in text
    assert "64 members" in text
    assert "5 duplicate probes dropped at merge (420 wasted probe ops)" in text
    assert "320 events interleaved, 640 records applied" in text
    assert "shard 0: 16 members, 16 full probes, 0 cache hits" in text
    assert "makespan 954.1 ms" in text
    assert "shard 1: 16 members, 14 full probes, 2 cache hits" in text


def test_render_report_includes_shards_extra_info():
    payload = {
        "benchmarks": [
            {
                "name": "bench_sharded_fleet",
                "stats": {"mean": 1.5},
                "extra_info": {
                    "shards": {
                        "shards": 2,
                        "workers": 2,
                        "partition": "round_robin",
                        "backend": "inline",
                        "members": 8,
                        "cross_shard_coalesced": 0,
                        "wasted_probe_ops": 0,
                        "merge_events": 40,
                        "merge_records": 80,
                        "per_shard": [],
                    }
                },
            }
        ]
    }
    rendered = render_report(payload)
    assert "### Sharded fleet" in rendered
    assert "2 shards / 2 workers (round_robin partition, inline backend)" in rendered
    assert "(no extra_info recorded)" not in rendered
