"""Tests for the deadline-aware Tango scheduler."""

import pytest

from repro.core.requests import RequestDag
from repro.core.scheduler import (
    BasicTangoScheduler,
    DeadlineAwareTangoScheduler,
    NetworkExecutor,
)
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _switch(name="a", add=10.0):
    return SimulatedSwitch(
        name=name,
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=add,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=1.0,
            del_ms=1.0,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _executor():
    return NetworkExecutor({"a": ControlChannel(_switch(), rtt=ConstantLatency(0.0))})


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def _scheduler(executor):
    return DeadlineAwareTangoScheduler(executor, estimate=lambda r: 10.0)


def test_deadline_request_jumps_the_queue():
    """A tight deadline late in pattern order is pulled to the front."""
    dag = RequestDag()
    for i in range(5):
        dag.new_request("a", FlowModCommand.ADD, _match(i), priority=i + 1)
    # Highest priority = last in ascending order, but tightest deadline.
    urgent = dag.new_request(
        "a", FlowModCommand.ADD, _match(99), priority=100, install_by_ms=15.0
    )
    result = _scheduler(_executor()).schedule(dag)
    assert result.records[0].request.request_id == urgent.request_id
    assert result.deadline_misses == 0


def test_basic_scheduler_would_miss_the_same_deadline():
    dag = RequestDag()
    for i in range(5):
        dag.new_request("a", FlowModCommand.ADD, _match(i), priority=i + 1)
    dag.new_request(
        "a", FlowModCommand.ADD, _match(99), priority=100, install_by_ms=15.0
    )
    result = BasicTangoScheduler(_executor()).schedule(dag)
    assert result.deadline_misses == 1


def test_relaxed_deadlines_keep_pattern_order():
    """Deadlines that pattern order already meets cause no reordering."""
    dag = RequestDag()
    requests = [
        dag.new_request(
            "a", FlowModCommand.ADD, _match(i), priority=i + 1, install_by_ms=1000.0
        )
        for i in range(4)
    ]
    result = _scheduler(_executor()).schedule(dag)
    issued = [r.request.request_id for r in result.records]
    assert issued == [r.request_id for r in requests]
    assert result.deadline_misses == 0


def test_multiple_urgent_requests_in_edf_order():
    dag = RequestDag()
    for i in range(4):
        dag.new_request("a", FlowModCommand.ADD, _match(i), priority=i + 1)
    later = dag.new_request(
        "a", FlowModCommand.ADD, _match(90), priority=90, install_by_ms=25.0
    )
    sooner = dag.new_request(
        "a", FlowModCommand.ADD, _match(91), priority=91, install_by_ms=12.0
    )
    result = _scheduler(_executor()).schedule(dag)
    issued = [r.request.request_id for r in result.records]
    assert issued[0] == sooner.request_id
    assert issued[1] == later.request_id


def test_impossible_deadline_still_counted_as_miss():
    dag = RequestDag()
    dag.new_request("a", FlowModCommand.ADD, _match(0), install_by_ms=0.001)
    result = _scheduler(_executor()).schedule(dag)
    assert result.deadline_misses == 1


def test_respects_dependencies_despite_urgency():
    dag = RequestDag()
    parent = dag.new_request("a", FlowModCommand.ADD, _match(0))
    child = dag.new_request(
        "a", FlowModCommand.ADD, _match(1), install_by_ms=5.0, after=[parent]
    )
    result = _scheduler(_executor()).schedule(dag)
    records = {r.request.request_id: r for r in result.records}
    assert records[child.request_id].started_ms >= records[parent.request_id].finished_ms
