"""Scalability guard tests.

These don't measure wall time (flaky); they bound the *algorithmic*
footprint of the hot paths so an accidental O(n^2) regression (e.g. a
per-edge cycle check in bulk DAG construction) fails loudly via the
simulated-operation counters instead of silently slowing the benches.
"""

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.requests import RequestDag
from repro.core.scheduler import BasicTangoScheduler, NetworkExecutor
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer
from repro.tables.tcam import PriorityShiftModel, SortedListShiftModel


def _fast_switch(name="sw"):
    return SimulatedSwitch(
        name=name,
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=0.1,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=0.1,
            del_ms=0.1,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def test_bulk_dag_construction_with_many_edges_is_fast():
    """4000 requests with 4000 chained edges must build in well under a
    second (the per-edge acyclicity check would take minutes)."""
    start = time.time()
    dag = RequestDag()
    previous = None
    for i in range(4000):
        request = dag.new_request("sw", FlowModCommand.ADD, _match(i), priority=1)
        if previous is not None:
            dag.add_dependency(previous, request, check_cycle=False)
        previous = request
    dag.validate_acyclic()
    assert time.time() - start < 2.0
    assert dag.depth() == 4000


def test_scheduler_handles_thousands_of_flat_requests():
    dag = RequestDag()
    for i in range(3000):
        dag.new_request("sw", FlowModCommand.ADD, _match(i), priority=i + 1)
    executor = NetworkExecutor({"sw": ControlChannel(_fast_switch())})
    start = time.time()
    result = BasicTangoScheduler(executor).schedule(dag)
    assert time.time() - start < 10.0
    assert result.total_requests == 3000
    assert result.rounds == 1


def test_switch_absorbs_tens_of_thousands_of_rules():
    switch = _fast_switch()
    start = time.time()
    for i in range(20_000):
        switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(i), priority=100))
    assert switch.num_flows == 20_000
    assert time.time() - start < 10.0


# -- operation-count guards ---------------------------------------------------
# Deterministic counters, not wall time: an accidental return to the
# per-round O(V*E) ready rescan fails these exactly, on any machine.


def _chain(n):
    dag = RequestDag()
    previous = None
    for i in range(n):
        request = dag.new_request("sw", FlowModCommand.ADD, _match(i), priority=i + 1)
        if previous is not None:
            dag.add_dependency(previous, request, check_cycle=False)
        previous = request
    dag.validate_acyclic()
    return dag


def test_chain_schedule_does_linear_dag_work():
    """Scheduling a 2000-request chain must touch O(V + E) DAG state:
    each edge visited once by mark_done, each request yielded once."""
    n = 2000
    dag = _chain(n)
    dag.ops.clear()
    executor = NetworkExecutor({"sw": ControlChannel(_fast_switch())})
    result = BasicTangoScheduler(executor).schedule(dag)
    assert result.total_requests == n
    assert result.rounds == n
    assert dag.ops.edge_visits == n - 1  # one visit per dependency edge
    assert dag.ops.ready_yields == n  # one yield per request
    assert dag.ops.total() <= 2 * (n + (n - 1))


def test_prefix_lookahead_op_growth_is_subquadratic():
    """The incremental tail-cost planner must keep the unlock workload's
    op growth near-linear: doubling n from 1000 to 2000 may grow ops by
    at most 2.5x (the retired recursive planner's ratio was ~3.9x)."""
    from repro.perf.harness import bench_prefix_lookahead

    small = bench_prefix_lookahead(1000, with_reference=False)
    large = bench_prefix_lookahead(2000, with_reference=False)
    assert small.ops > 0
    assert large.ops / small.ops < 2.5


def test_descending_install_accounting_is_subquadratic():
    """5000 descending-priority adds: the Fenwick tree must do
    O(n log n) accounting work where the sorted list did O(n^2)."""
    n = 5000
    model = PriorityShiftModel()
    total = 0
    for priority in range(n, 0, -1):
        total += model.record_add(priority)
    assert total == n * (n - 1) // 2  # every add shifted all residents
    assert model.accounting_ops < 40 * n  # ~n log2(n); quadratic is 12.5M


# -- Fenwick vs sorted-list differential --------------------------------------


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=300)),
        max_size=150,
    )
)
def test_fenwick_matches_sorted_list_on_random_sequences(operations):
    """Property: on any interleaving of adds and deletes, the Fenwick
    model's shift counts are bit-for-bit those of the retired list."""
    fenwick = PriorityShiftModel()
    reference = SortedListShiftModel()
    present = []
    for is_delete, priority in operations:
        if is_delete and present:
            # Delete something actually present, picked deterministically.
            target = min(present, key=lambda p: (abs(p - priority), p))
            fenwick.record_delete(target)
            reference.record_delete(target)
            present.remove(target)
        else:
            assert fenwick.shifts_for_add(priority) == reference.shifts_for_add(
                priority
            )
            assert fenwick.record_add(priority) == reference.record_add(priority)
            present.append(priority)
        assert len(fenwick) == len(reference)
    for probe in (0, 1, 150, 301, 10_000):
        assert fenwick.shifts_for_add(probe) == reference.shifts_for_add(probe)


def test_fenwick_and_sorted_list_agree_on_missing_delete():
    fenwick = PriorityShiftModel()
    reference = SortedListShiftModel()
    fenwick.record_add(5)
    reference.record_add(5)
    with pytest.raises(ValueError, match="priority 7 not present"):
        fenwick.record_delete(7)
    with pytest.raises(ValueError, match="priority 7 not present"):
        reference.record_delete(7)
