"""Scalability guard tests.

These don't measure wall time (flaky); they bound the *algorithmic*
footprint of the hot paths so an accidental O(n^2) regression (e.g. a
per-edge cycle check in bulk DAG construction) fails loudly via the
simulated-operation counters instead of silently slowing the benches.
"""

import time

import pytest

from repro.core.requests import RequestDag
from repro.core.scheduler import BasicTangoScheduler, NetworkExecutor
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _fast_switch(name="sw"):
    return SimulatedSwitch(
        name=name,
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=0.1,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=0.1,
            del_ms=0.1,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def test_bulk_dag_construction_with_many_edges_is_fast():
    """4000 requests with 4000 chained edges must build in well under a
    second (the per-edge acyclicity check would take minutes)."""
    start = time.time()
    dag = RequestDag()
    previous = None
    for i in range(4000):
        request = dag.new_request("sw", FlowModCommand.ADD, _match(i), priority=1)
        if previous is not None:
            dag.add_dependency(previous, request, check_cycle=False)
        previous = request
    dag.validate_acyclic()
    assert time.time() - start < 2.0
    assert dag.depth() == 4000


def test_scheduler_handles_thousands_of_flat_requests():
    dag = RequestDag()
    for i in range(3000):
        dag.new_request("sw", FlowModCommand.ADD, _match(i), priority=i + 1)
    executor = NetworkExecutor({"sw": ControlChannel(_fast_switch())})
    start = time.time()
    result = BasicTangoScheduler(executor).schedule(dag)
    assert time.time() - start < 10.0
    assert result.total_requests == 3000
    assert result.rounds == 1


def test_switch_absorbs_tens_of_thousands_of_rules():
    switch = _fast_switch()
    start = time.time()
    for i in range(20_000):
        switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(i), priority=100))
    assert switch.num_flows == 20_000
    assert time.time() - start < 10.0
