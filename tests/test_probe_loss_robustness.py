"""Failure injection: inference under probe loss.

A real controller-switch channel drops packets; the probing engine
retransmits, and the inference results must survive a few percent loss.
"""

import pytest

from repro.core.policy_inference import PolicyProber
from repro.core.probing import ProbingEngine
from repro.core.size_inference import SizeProber
from repro.openflow.channel import ControlChannel
from repro.openflow.match import PacketFields
from repro.openflow.messages import PacketOut
from repro.sim.rng import SeededRng
from repro.switches.profiles import make_cache_test_profile
from repro.tables.entry import FlowAttribute
from repro.tables.policies import LRU, FIFO, Direction


def _lossy_engine(policy, loss, seed=5, layer_sizes=(64, None), means=(0.5, 3.0)):
    profile = make_cache_test_profile(policy, layer_sizes, layer_means_ms=means)
    switch = profile.build(seed=seed)
    channel = ControlChannel(
        switch,
        probe_loss_probability=loss,
        rng=SeededRng(seed).child("lossy-channel"),
    )
    return ProbingEngine(channel, rng=SeededRng(seed).child("lossy-probe"))


def test_loss_probability_validated():
    profile = make_cache_test_profile(FIFO, (8, None), layer_means_ms=(0.5, 3.0))
    with pytest.raises(ValueError):
        ControlChannel(profile.build(seed=1), probe_loss_probability=1.5)


def test_lost_probe_reports_timeout():
    profile = make_cache_test_profile(FIFO, (8, None), layer_means_ms=(0.5, 3.0))
    channel = ControlChannel(
        profile.build(seed=1),
        probe_loss_probability=0.999,
        rng=SeededRng(1).child("c"),
    )
    rtt = channel.send_packet_out(PacketOut(PacketFields(ip_dst=1)))
    assert rtt == ControlChannel.LOSS_TIMEOUT_MS
    assert channel.probes_lost == 1


def test_measure_rtt_retries_through_loss():
    engine = _lossy_engine(FIFO, loss=0.5, seed=2)
    handle = engine.install_new_flow()
    # With 50% loss and 3 retries the vast majority of measurements land.
    rtts = [engine.measure_rtt(handle, retries=5) for _ in range(50)]
    clean = [r for r in rtts if r < ControlChannel.LOSS_TIMEOUT_MS]
    assert len(clean) >= 45
    assert all(r < 2.0 for r in clean)


def test_size_inference_survives_two_percent_loss():
    engine = _lossy_engine(FIFO, loss=0.02, seed=3)
    result = SizeProber(engine, max_rules=256, accuracy_target=0.02).probe()
    assert result.num_layers == 2
    estimate = result.layers[0].estimated_size
    assert abs(estimate - 64) / 64 <= 0.08


def test_policy_inference_survives_two_percent_loss():
    engine = _lossy_engine(
        LRU, loss=0.02, seed=4, layer_sizes=(64, 128, None), means=(0.5, 2.5, 4.8)
    )
    result = PolicyProber(engine, cache_size=64).probe()
    assert result.terms[0] == (FlowAttribute.USE_TIME, Direction.INCREASING)


def test_lossless_channel_never_counts_losses():
    engine = _lossy_engine(FIFO, loss=0.0, seed=6)
    handle = engine.install_new_flow()
    for _ in range(20):
        engine.measure_rtt(handle)
    assert engine.channel.probes_lost == 0
