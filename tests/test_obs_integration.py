"""End-to-end telemetry: instrumented probing, scheduling, and provenance.

These tests pin the observability acceptance criteria: one annotated
span per scheduled batch, byte-identical same-seed traces, retry/packet
metrics from the probing engine, and ``ScoreRecord.source`` provenance.
"""

import io

from repro.baselines import DionysusScheduler
from repro.core.inference import SwitchInferenceEngine
from repro.core.probing import ProbingEngine
from repro.core.scheduler import (
    BasicTangoScheduler,
    ConcurrentTangoScheduler,
    DeadlineAwareTangoScheduler,
    PrefixTangoScheduler,
)
from repro.core.scores import TangoScoreDatabase
from repro.obs import MetricsRegistry, Tracer, write_jsonl
from repro.openflow.channel import ControlChannel
from repro.perf.workloads import chain_dag, fast_executor, layered_dag
from repro.sim.rng import SeededRng
from repro.switches import SWITCH_2
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import FIFO


def _traced_run(scheduler_cls, build_dag, **kwargs):
    tracer = Tracer()
    metrics = MetricsRegistry()
    executor = fast_executor()
    scheduler = scheduler_cls(executor, tracer=tracer, metrics=metrics, **kwargs)
    result = scheduler.schedule(build_dag(60))
    return tracer, metrics, result


def test_basic_scheduler_emits_one_annotated_span_per_batch():
    tracer, metrics, result = _traced_run(BasicTangoScheduler, layered_dag)
    batches = [e for e in tracer.events if e.name == "scheduler.batch"]
    assert len(batches) == result.rounds
    assert [b.attrs["pattern"] for b in batches] == list(result.pattern_choices)
    for span in batches:
        assert span.is_span
        assert span.attrs["batch_size"] > 0
        assert span.attrs["actual_ms"] >= 0.0
        assert span.attrs["deadline_misses"] == 0
    snapshot = metrics.snapshot()
    assert snapshot["scheduler.batches{scheduler=BasicTangoScheduler}"] == result.rounds
    assert (
        snapshot["scheduler.requests{scheduler=BasicTangoScheduler}"]
        == result.total_requests
    )
    assert snapshot["scheduler.oracle_calls"] == result.rounds


def test_prefix_scheduler_spans_carry_estimate_and_cut():
    tracer, _, result = _traced_run(
        PrefixTangoScheduler, chain_dag, estimate=lambda request: 1.0
    )
    batches = [e for e in tracer.events if e.name == "scheduler.batch"]
    assert len(batches) == result.rounds
    for span in batches:
        assert span.attrs["estimated_ms"] >= 0.0
        assert span.attrs["cut"] <= span.attrs["ready"]


def test_deadline_and_concurrent_schedulers_emit_spans():
    for cls, extra_key in (
        (DeadlineAwareTangoScheduler, "urgent"),
        (ConcurrentTangoScheduler, "guard_ms"),
    ):
        tracer, _, result = _traced_run(cls, layered_dag, estimate=lambda r: 1.0)
        batches = [e for e in tracer.events if e.name == "scheduler.batch"]
        assert len(batches) == result.rounds
        assert all(extra_key in b.attrs for b in batches)


def test_dionysus_spans_are_policy_tagged():
    tracer = Tracer()
    metrics = MetricsRegistry()
    scheduler = DionysusScheduler(fast_executor(), tracer=tracer, metrics=metrics)
    result = scheduler.schedule(layered_dag(60))
    batches = [e for e in tracer.events if e.name == "scheduler.batch"]
    assert len(batches) == result.rounds
    assert all(b.attrs["policy"] == "critical_path" for b in batches)
    snapshot = metrics.snapshot()
    assert snapshot["scheduler.batches{scheduler=DionysusScheduler}"] == result.rounds


def test_executor_metrics_and_request_instants():
    tracer = Tracer()
    metrics = MetricsRegistry()
    from repro.perf.workloads import fast_executor as _fx

    executor = _fx()
    # Rebuild with telemetry attached (fast_executor has no knobs).
    from repro.core.scheduler import NetworkExecutor

    executor = NetworkExecutor(
        executor.channels, metrics=metrics, tracer=tracer, trace_requests=True
    )
    BasicTangoScheduler(executor, tracer=tracer, metrics=metrics).schedule(
        chain_dag(10)
    )
    snapshot = metrics.snapshot()
    issued = [v for k, v in snapshot.items() if k.startswith("executor.requests_issued")]
    assert sum(issued) == 10
    assert snapshot["executor.issue_ms"]["count"] == 10
    instants = [e for e in tracer.events if e.name == "executor.issue"]
    assert len(instants) == 10
    assert all("issue_ms" in e.attrs and "switch" in e.attrs for e in instants)


def test_same_seed_traces_are_byte_identical():
    def render():
        tracer, _, _ = _traced_run(BasicTangoScheduler, layered_dag)
        buffer = io.StringIO()
        write_jsonl(tracer.events, buffer)
        return buffer.getvalue()

    first, second = render(), render()
    assert first == second
    assert first  # non-empty


def test_untraced_run_matches_traced_run_exactly():
    bare = BasicTangoScheduler(fast_executor()).schedule(layered_dag(60))
    _, _, traced = _traced_run(BasicTangoScheduler, layered_dag)
    assert bare.makespan_ms == traced.makespan_ms
    assert bare.rounds == traced.rounds
    assert list(bare.pattern_choices) == list(traced.pattern_choices)


def test_probing_engine_counts_packets_and_retries_under_loss():
    profile = make_cache_test_profile(FIFO, (64, None), layer_means_ms=(0.5, 3.0))
    switch = profile.build(seed=2)
    channel = ControlChannel(
        switch,
        probe_loss_probability=0.5,
        rng=SeededRng(2).child("lossy-channel"),
    )
    tracer = Tracer()
    metrics = MetricsRegistry()
    engine = ProbingEngine(
        channel,
        rng=SeededRng(2).child("lossy-probe"),
        tracer=tracer,
        metrics=metrics,
    )
    handle = engine.install_new_flow()
    for _ in range(30):
        engine.measure_rtt(handle, retries=5)
    snapshot = metrics.snapshot()
    switch_label = f"{{switch={engine.switch_name}}}"
    assert snapshot[f"probe.packets_sent{switch_label}"] >= 30
    assert snapshot[f"probe.rtt_retries{switch_label}"] > 0
    assert snapshot[f"probe.flow_mods_sent{switch_label}"] >= 1


def test_inference_trace_spans_and_score_provenance():
    scores = TangoScoreDatabase()
    tracer = Tracer()
    metrics = MetricsRegistry()
    engine = SwitchInferenceEngine(
        SWITCH_2, scores=scores, seed=1, tracer=tracer, metrics=metrics
    )
    model = engine.infer(include_policy=False)
    assert model.size_probe is not None
    names = {e.name for e in tracer.events}
    assert "infer.size_probe" in names
    assert "infer.size.fill" in names
    root = next(e for e in tracer.events if e.name == "infer.size_probe")
    assert root.attrs["rules_installed"] > 0
    # Provenance: every TangoDB write names the prober that produced it.
    size_record = scores.get_record(model.name, "size_probe")
    assert size_record is not None and size_record.source == "size_prober"
    model_record = scores.get_record(model.name, "switch_model")
    assert model_record is not None and model_record.source == "inference_engine"
    curve_records = [
        r
        for r in scores.records_for_switch(model.name)
        if r.key.metric == "latency_curve"
    ]
    assert curve_records
    assert all(
        (r.source or "").startswith("latency_curve_prober:") for r in curve_records
    )
    assert metrics.snapshot()["infer.size.doubling_rounds"] > 0


def test_probing_pattern_spans_record_provenance():
    from repro.core.patterns import ProbePattern
    from repro.openflow.messages import FlowModCommand

    profile = make_cache_test_profile(FIFO, (64, None), layer_means_ms=(0.5, 3.0))
    switch = profile.build(seed=3)
    scores = TangoScoreDatabase()
    tracer = Tracer()
    engine = ProbingEngine(
        ControlChannel(switch),
        scores=scores,
        rng=SeededRng(3).child("p"),
        tracer=tracer,
    )
    handles = [engine.new_handle(priority=100 + i) for i in range(4)]
    pattern = ProbePattern(
        name="probe-adds",
        flow_mods=tuple(h.flow_mod(FlowModCommand.ADD) for h in handles),
        traffic=tuple(h.packet for h in handles),
    )
    engine.apply_pattern(pattern)
    span = next(e for e in tracer.events if e.name == "probe.apply_pattern")
    assert span.attrs["pattern"] == pattern.name
    assert span.attrs["flow_mods"] == 4
    assert span.attrs["packets"] == 4
    record = scores.get_record(
        engine.switch_name, "pattern_result", pattern=pattern.name
    )
    assert record is not None
    assert record.source == f"probing:{pattern.name}"
