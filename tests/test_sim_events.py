"""Tests for the discrete-event engine."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue, Simulator


def test_queue_pops_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(3.0, lambda: order.append("c"))
    queue.push(1.0, lambda: order.append("a"))
    queue.push(2.0, lambda: order.append("b"))
    while True:
        event = queue.pop()
        if event is None:
            break
        event.action()
    assert order == ["a", "b", "c"]


def test_queue_fifo_within_same_time():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    second = queue.push(1.0, lambda: None)
    assert queue.pop() is first
    assert queue.pop() is second


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    keeper = queue.push(2.0, lambda: None)
    event.cancel()
    assert queue.pop() is keeper


def test_len_excludes_cancelled():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    event.cancel()
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    event.cancel()
    assert queue.peek_time() == 5.0


def test_simulator_runs_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(sim.clock.now_ms))
    sim.schedule(5.0, lambda: fired.append(sim.clock.now_ms))
    end = sim.run()
    assert fired == [2.0, 5.0]
    assert end == 5.0


def test_simulator_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("early"))
    sim.schedule(10.0, lambda: fired.append("late"))
    sim.run(until_ms=5.0)
    assert fired == ["early"]
    assert sim.clock.now_ms == 5.0
    sim.run()
    assert fired == ["early", "late"]


def test_events_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.clock.now_ms)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator(clock=VirtualClock(start_ms=10.0))
    with pytest.raises(ValueError):
        sim.schedule_at(5.0, lambda: None)
