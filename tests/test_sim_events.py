"""Tests for the discrete-event engine."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import (
    NULL_PROVENANCE,
    EventQueue,
    ProvenanceRecorder,
    Simulator,
)


def test_queue_pops_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(3.0, lambda: order.append("c"))
    queue.push(1.0, lambda: order.append("a"))
    queue.push(2.0, lambda: order.append("b"))
    while True:
        event = queue.pop()
        if event is None:
            break
        event.action()
    assert order == ["a", "b", "c"]


def test_queue_fifo_within_same_time():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    second = queue.push(1.0, lambda: None)
    assert queue.pop() is first
    assert queue.pop() is second


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    keeper = queue.push(2.0, lambda: None)
    event.cancel()
    assert queue.pop() is keeper


def test_len_excludes_cancelled():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    event.cancel()
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    event.cancel()
    assert queue.peek_time() == 5.0


def test_simulator_runs_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(sim.clock.now_ms))
    sim.schedule(5.0, lambda: fired.append(sim.clock.now_ms))
    end = sim.run()
    assert fired == [2.0, 5.0]
    assert end == 5.0


def test_simulator_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("early"))
    sim.schedule(10.0, lambda: fired.append("late"))
    sim.run(until_ms=5.0)
    assert fired == ["early"]
    assert sim.clock.now_ms == 5.0
    sim.run()
    assert fired == ["early", "late"]


def test_events_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.clock.now_ms)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator(clock=VirtualClock(start_ms=10.0))
    with pytest.raises(ValueError):
        sim.schedule_at(5.0, lambda: None)


# -- causal provenance ---------------------------------------------------------
def test_default_simulator_records_no_provenance():
    sim = Simulator()
    assert sim.provenance is NULL_PROVENANCE
    assert not sim.provenance.enabled
    event = sim.schedule(1.0, lambda: None)
    assert event.parent_sequence is None
    assert NULL_PROVENANCE.parents == {}
    sim.run()
    assert NULL_PROVENANCE.parents == {}


def test_provenance_records_scheduling_parent():
    recorder = ProvenanceRecorder()
    sim = Simulator(provenance=recorder)
    children = []

    def parent_action():
        children.append(sim.schedule(1.0, lambda: None))

    parent = sim.schedule(2.0, parent_action)
    sim.run()
    child = children[0]
    assert recorder.parents[parent.sequence] is None  # scheduled from root
    assert recorder.parents[child.sequence] == parent.sequence
    assert child.parent_sequence == parent.sequence
    assert child.parent_time_ms == parent.time_ms


def test_provenance_ancestry_is_transitive():
    recorder = ProvenanceRecorder()
    sim = Simulator(provenance=recorder)
    chain = []

    def tick():
        if len(chain) < 3:
            chain.append(sim.call_soon(tick))

    root = sim.schedule(1.0, tick)
    sim.run()
    last = chain[-1]
    assert recorder.is_ancestor(root.sequence, last.sequence)
    assert not recorder.is_ancestor(last.sequence, root.sequence)
    assert recorder.ordered(root.sequence, last.sequence)
    assert recorder.ordered(last.sequence, root.sequence)  # either direction
    assert recorder.ordered(root.sequence, root.sequence)  # same event


def test_sibling_events_are_unordered():
    recorder = ProvenanceRecorder()
    sim = Simulator(provenance=recorder)
    first = sim.schedule_at(5.0, lambda: None)
    second = sim.schedule_at(5.0, lambda: None)
    sim.run()
    assert not recorder.ordered(first.sequence, second.sequence)


def test_current_event_is_set_during_action_and_cleared_after():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, lambda: seen.append(sim.current_event))
    assert sim.current_event is None
    sim.run()
    assert seen == [event]
    assert sim.current_event is None


def test_provenance_fields_do_not_change_event_ordering():
    # Identical schedules with and without a recorder fire identically.
    def run(provenance):
        sim = Simulator(provenance=provenance)
        fired = []
        sim.schedule_at(2.0, lambda: fired.append("a"))
        sim.schedule_at(1.0, lambda: fired.append("b"))
        sim.schedule_at(2.0, lambda: fired.append("c"))
        end = sim.run()
        return fired, end

    assert run(None) == run(ProvenanceRecorder())
