"""Tests for switch requests and the request DAG."""

import pytest

from repro.core.requests import RequestDag, SwitchRequest
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def _dag_with_chain(n=3):
    dag = RequestDag()
    previous = None
    requests = []
    for i in range(n):
        request = dag.new_request(
            location="s1",
            command=FlowModCommand.ADD,
            match=_match(i),
            priority=i,
            after=[previous] if previous else (),
        )
        requests.append(request)
        previous = request
    return dag, requests


def test_new_request_assigns_unique_ids():
    dag = RequestDag()
    a = dag.new_request("s1", FlowModCommand.ADD, _match(1))
    b = dag.new_request("s2", FlowModCommand.DELETE, _match(2))
    assert a.request_id != b.request_id
    assert len(dag) == 2


def test_flow_mod_conversion():
    dag = RequestDag()
    request = dag.new_request(
        "s1", FlowModCommand.ADD, _match(1), priority=7, install_by_ms=50.0
    )
    flow_mod = request.flow_mod()
    assert flow_mod.command is FlowModCommand.ADD
    assert flow_mod.priority == 7
    assert flow_mod.install_by_ms == 50.0


def test_duplicate_request_rejected():
    dag = RequestDag()
    request = dag.new_request("s1", FlowModCommand.ADD, _match(1))
    with pytest.raises(ValueError):
        dag.add_request(request)


def test_cycle_rejected():
    dag, requests = _dag_with_chain(2)
    with pytest.raises(ValueError):
        dag.add_dependency(requests[1], requests[0])
    # The failed edge must not linger.
    assert dag.independent_requests() == [requests[0]]


def test_independent_requests_respect_dependencies():
    dag, requests = _dag_with_chain(3)
    assert dag.independent_requests() == [requests[0]]
    dag.mark_done(requests[0])
    assert dag.independent_requests() == [requests[1]]


def test_mark_done_unknown_rejected():
    dag = RequestDag()
    other = RequestDag().new_request("s", FlowModCommand.ADD, _match(1))
    with pytest.raises(KeyError):
        dag.mark_done(other)


def test_is_done_and_pending():
    dag, requests = _dag_with_chain(2)
    assert not dag.is_done()
    assert len(dag.pending()) == 2
    for request in requests:
        dag.mark_done(request)
    assert dag.is_done()
    assert dag.pending() == []


def test_reset_forgets_completion():
    dag, requests = _dag_with_chain(2)
    dag.mark_done(requests[0])
    dag.reset()
    assert dag.independent_requests() == [requests[0]]


def test_dependencies_of():
    dag, requests = _dag_with_chain(3)
    assert dag.dependencies_of(requests[0]) == []
    assert dag.dependencies_of(requests[2]) == [requests[1]]


def test_critical_path_lengths():
    dag, requests = _dag_with_chain(3)
    lengths = dag.critical_path_lengths()
    assert lengths[requests[0].request_id] == 3
    assert lengths[requests[2].request_id] == 1


def test_depth():
    dag, _ = _dag_with_chain(4)
    assert dag.depth() == 4
    flat = RequestDag()
    for i in range(5):
        flat.new_request("s", FlowModCommand.ADD, _match(i))
    assert flat.depth() == 1
    assert RequestDag().depth() == 0


def test_diamond_dependencies():
    dag = RequestDag()
    top = dag.new_request("s", FlowModCommand.ADD, _match(0))
    left = dag.new_request("s", FlowModCommand.ADD, _match(1), after=[top])
    right = dag.new_request("s", FlowModCommand.ADD, _match(2), after=[top])
    bottom = dag.new_request("s", FlowModCommand.ADD, _match(3), after=[left, right])
    dag.mark_done(top)
    assert set(r.request_id for r in dag.independent_requests()) == {
        left.request_id,
        right.request_id,
    }
    dag.mark_done(left)
    assert bottom not in dag.independent_requests()
    dag.mark_done(right)
    assert dag.independent_requests() == [bottom]


# -- incremental ready set / query API ----------------------------------------
def test_independent_requests_report_insertion_order():
    dag = RequestDag()
    requests = [
        dag.new_request("s", FlowModCommand.ADD, _match(i), priority=50 - i)
        for i in range(6)
    ]
    assert dag.independent_requests() == requests


def test_mark_done_is_idempotent():
    dag, requests = _dag_with_chain(3)
    dag.mark_done(requests[0])
    dag.mark_done(requests[0])  # second completion must not double-decrement
    assert dag.independent_requests() == [requests[1]]


def test_successors_and_predecessor_ids():
    dag, requests = _dag_with_chain(3)
    assert dag.successors_of(requests[0]) == [requests[1]]
    assert dag.successors_of(requests[2]) == []
    assert dag.predecessor_ids(requests[1].request_id) == [requests[0].request_id]
    assert dag.successor_ids(requests[1].request_id) == [requests[2].request_id]
    assert dag.edge_ids() == [
        (requests[0].request_id, requests[1].request_id),
        (requests[1].request_id, requests[2].request_id),
    ]


def test_ready_after_is_stateless():
    dag, requests = _dag_with_chain(3)
    assert dag.ready_after(()) == [requests[0]]
    assert dag.ready_after({requests[0].request_id}) == [requests[1]]
    # The live completion state is untouched.
    assert dag.independent_requests() == [requests[0]]


def test_dependency_on_unknown_request_rejected():
    dag = RequestDag()
    known = dag.new_request("s", FlowModCommand.ADD, _match(0))
    stranger = SwitchRequest(
        request_id=999, location="s", command=FlowModCommand.ADD, match=_match(1)
    )
    with pytest.raises(KeyError):
        dag.add_dependency(known, stranger)
    with pytest.raises(KeyError):
        dag.add_dependency(stranger, known)


def test_duplicate_dependency_is_idempotent():
    dag = RequestDag()
    a = dag.new_request("s", FlowModCommand.ADD, _match(0))
    b = dag.new_request("s", FlowModCommand.ADD, _match(1))
    dag.add_dependency(a, b)
    dag.add_dependency(a, b)  # no double-count of b's pending in-edges
    dag.mark_done(a)
    assert dag.independent_requests() == [b]


def test_rejected_cycle_leaves_counters_intact():
    dag = RequestDag()
    a = dag.new_request("s", FlowModCommand.ADD, _match(0))
    b = dag.new_request("s", FlowModCommand.ADD, _match(1))
    dag.add_dependency(a, b)
    with pytest.raises(ValueError):
        dag.add_dependency(b, a)
    assert dag.independent_requests() == [a]
    dag.mark_done(a)
    assert dag.independent_requests() == [b]


def test_critical_path_cache_invalidated_on_mutation():
    dag, requests = _dag_with_chain(2)
    first = dag.critical_path_lengths()
    assert first[requests[0].request_id] == 2
    # Returned dict is a private copy.
    first[requests[0].request_id] = 99
    assert dag.critical_path_lengths()[requests[0].request_id] == 2
    tail = dag.new_request("s", FlowModCommand.ADD, _match(9), after=[requests[1]])
    lengths = dag.critical_path_lengths()
    assert lengths[requests[0].request_id] == 3
    assert lengths[tail.request_id] == 1


def test_cycle_check_helpers():
    dag, requests = _dag_with_chain(3)
    assert dag.is_acyclic()
    assert dag.find_cycle_ids() == []
    assert dag.topological_order() == [r.request_id for r in requests]


# -- ReadySimulation ----------------------------------------------------------
def test_simulation_complete_and_undo_round_trip():
    dag, requests = _dag_with_chain(3)
    sim = dag.simulation()
    assert sim.ready() == [requests[0]]
    sim.complete([requests[0].request_id])
    assert sim.ready() == [requests[1]]
    sim.complete([requests[1].request_id])
    assert sim.ready() == [requests[2]]
    sim.undo()
    assert sim.ready() == [requests[1]]
    sim.undo()
    assert sim.ready() == [requests[0]]
    # The DAG itself never saw any completion.
    assert dag.independent_requests() == [requests[0]]


def test_simulation_rejects_double_completion():
    dag, requests = _dag_with_chain(2)
    sim = dag.simulation()
    sim.complete([requests[0].request_id])
    with pytest.raises(ValueError):
        sim.complete([requests[0].request_id])


def test_simulation_complete_is_atomic_on_error():
    """A rejected batch must leave the cursor untouched -- no partially
    applied frame that undo() cannot revert."""
    dag, requests = _dag_with_chain(3)
    sim = dag.simulation()
    sim.complete([requests[0].request_id])
    with pytest.raises(ValueError):
        # Second id is already done; the first must NOT be applied.
        sim.complete([requests[1].request_id, requests[0].request_id])
    assert sim.ready() == [requests[1]]  # unchanged
    sim.undo()  # only the original frame exists
    assert sim.ready() == [requests[0]]
    with pytest.raises(IndexError):
        sim.undo()


def test_simulation_complete_rejects_duplicates_in_batch():
    dag, requests = _dag_with_chain(2)
    sim = dag.simulation()
    with pytest.raises(ValueError):
        sim.complete([requests[0].request_id, requests[0].request_id])
    assert sim.ready() == [requests[0]]  # nothing applied


def test_simulation_undo_without_frames_raises():
    dag, _ = _dag_with_chain(2)
    with pytest.raises(IndexError):
        dag.simulation().undo()


def test_simulation_commit_is_permanent_and_idempotent():
    dag, requests = _dag_with_chain(3)
    sim = dag.simulation()
    sim.commit([requests[0].request_id])
    sim.commit([requests[0].request_id])  # already done: no-op
    assert sim.ready() == [requests[1]]
    with pytest.raises(IndexError):
        sim.undo()  # commits push no undo frames


def test_simulation_seeded_with_done_set():
    dag, requests = _dag_with_chain(3)
    sim = dag.simulation({requests[0].request_id, requests[1].request_id})
    assert sim.ready() == [requests[2]]
    sim.complete([requests[2].request_id])
    assert sim.is_done()
