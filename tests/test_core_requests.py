"""Tests for switch requests and the request DAG."""

import pytest

from repro.core.requests import RequestDag, SwitchRequest
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def _dag_with_chain(n=3):
    dag = RequestDag()
    previous = None
    requests = []
    for i in range(n):
        request = dag.new_request(
            location="s1",
            command=FlowModCommand.ADD,
            match=_match(i),
            priority=i,
            after=[previous] if previous else (),
        )
        requests.append(request)
        previous = request
    return dag, requests


def test_new_request_assigns_unique_ids():
    dag = RequestDag()
    a = dag.new_request("s1", FlowModCommand.ADD, _match(1))
    b = dag.new_request("s2", FlowModCommand.DELETE, _match(2))
    assert a.request_id != b.request_id
    assert len(dag) == 2


def test_flow_mod_conversion():
    dag = RequestDag()
    request = dag.new_request(
        "s1", FlowModCommand.ADD, _match(1), priority=7, install_by_ms=50.0
    )
    flow_mod = request.flow_mod()
    assert flow_mod.command is FlowModCommand.ADD
    assert flow_mod.priority == 7
    assert flow_mod.install_by_ms == 50.0


def test_duplicate_request_rejected():
    dag = RequestDag()
    request = dag.new_request("s1", FlowModCommand.ADD, _match(1))
    with pytest.raises(ValueError):
        dag.add_request(request)


def test_cycle_rejected():
    dag, requests = _dag_with_chain(2)
    with pytest.raises(ValueError):
        dag.add_dependency(requests[1], requests[0])
    # The failed edge must not linger.
    assert dag.independent_requests() == [requests[0]]


def test_independent_requests_respect_dependencies():
    dag, requests = _dag_with_chain(3)
    assert dag.independent_requests() == [requests[0]]
    dag.mark_done(requests[0])
    assert dag.independent_requests() == [requests[1]]


def test_mark_done_unknown_rejected():
    dag = RequestDag()
    other = RequestDag().new_request("s", FlowModCommand.ADD, _match(1))
    with pytest.raises(KeyError):
        dag.mark_done(other)


def test_is_done_and_pending():
    dag, requests = _dag_with_chain(2)
    assert not dag.is_done()
    assert len(dag.pending()) == 2
    for request in requests:
        dag.mark_done(request)
    assert dag.is_done()
    assert dag.pending() == []


def test_reset_forgets_completion():
    dag, requests = _dag_with_chain(2)
    dag.mark_done(requests[0])
    dag.reset()
    assert dag.independent_requests() == [requests[0]]


def test_dependencies_of():
    dag, requests = _dag_with_chain(3)
    assert dag.dependencies_of(requests[0]) == []
    assert dag.dependencies_of(requests[2]) == [requests[1]]


def test_critical_path_lengths():
    dag, requests = _dag_with_chain(3)
    lengths = dag.critical_path_lengths()
    assert lengths[requests[0].request_id] == 3
    assert lengths[requests[2].request_id] == 1


def test_depth():
    dag, _ = _dag_with_chain(4)
    assert dag.depth() == 4
    flat = RequestDag()
    for i in range(5):
        flat.new_request("s", FlowModCommand.ADD, _match(i))
    assert flat.depth() == 1
    assert RequestDag().depth() == 0


def test_diamond_dependencies():
    dag = RequestDag()
    top = dag.new_request("s", FlowModCommand.ADD, _match(0))
    left = dag.new_request("s", FlowModCommand.ADD, _match(1), after=[top])
    right = dag.new_request("s", FlowModCommand.ADD, _match(2), after=[top])
    bottom = dag.new_request("s", FlowModCommand.ADD, _match(3), after=[left, right])
    dag.mark_done(top)
    assert set(r.request_id for r in dag.independent_requests()) == {
        left.request_id,
        right.request_id,
    }
    dag.mark_done(left)
    assert bottom not in dag.independent_requests()
    dag.mark_done(right)
    assert dag.independent_requests() == [bottom]
