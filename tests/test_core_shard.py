"""Tests for sharded fleet inference (repro.core.shard).

The contract under test is byte-identity: whatever the shard count,
partition strategy, or worker backend, a sharded run must merge back
into *exactly* the global record order, models, timings, and summary
the single-queue :class:`repro.core.fleet.FleetInferenceEngine`
produces.  Every identity assertion below compares full TangoDB
contents (keys, repr'd values, timestamps, sources, insertion order),
not just summaries.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fleet import FleetInferenceEngine, FleetMember, build_fleet
from repro.core.scores import TangoScoreDatabase
from repro.core.shard import SHARD_BACKENDS, ShardedFleetEngine
from repro.faults import FaultInjector, RetryPolicy
from repro.faults.plan import FaultPlan
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import FIFO, LIFO, LRU, PRIORITY_CACHE

#: Small knobs so a full probe run stays fast while hitting every stage.
FAST = {"size_probe_max_rules": 48, "latency_batch_sizes": (8, 16)}

#: Tier-named behaviourally distinct profiles: one per fat-tree tier
#: plus a bare vendor-style name (edge by default).
SPECS = [
    ("core-0", FIFO, (64, None), (0.5, 4.8)),
    ("aggr-1", LRU, (48, None), (0.6, 5.0)),
    ("edge-2", LIFO, (96, None), (0.4, 4.2)),
    ("prof-3", PRIORITY_CACHE, (80, None), (0.7, 5.2)),
]


def _profiles(count=4):
    return [
        make_cache_test_profile(
            policy, layer_sizes=sizes, layer_means_ms=means, name=name
        )
        for name, policy, sizes, means in SPECS[:count]
    ]


def _db_signature(db):
    """Byte-comparable digest of TangoDB contents, in insertion order."""
    return tuple(
        (record.key, repr(record.value), record.recorded_at_ms, record.source)
        for record in db.records()
    )


def _run_legacy(members, scores=None, **kwargs):
    engine = FleetInferenceEngine(
        members, scores=scores if scores is not None else TangoScoreDatabase(),
        seed=7, **FAST, **kwargs,
    )
    result = engine.infer_fleet(include_policy=False)
    return engine, result


def _run_sharded(members, scores=None, shards=1, backend="inline", **kwargs):
    engine = ShardedFleetEngine(
        members, scores=scores if scores is not None else TangoScoreDatabase(),
        seed=7, shards=shards, backend=backend, **FAST, **kwargs,
    )
    result = engine.infer_fleet(include_policy=False)
    return engine, result


def _assert_identical(sharded, legacy):
    sharded_engine, sharded_result = sharded
    legacy_engine, legacy_result = legacy
    assert json.dumps(sharded_result.summary(), sort_keys=True) == json.dumps(
        legacy_result.summary(), sort_keys=True
    )
    assert _db_signature(sharded_engine.scores) == _db_signature(
        legacy_engine.scores
    )
    for mine, theirs in zip(sharded_result.members, legacy_result.members):
        assert mine.model.to_dict() == theirs.model.to_dict()
    assert (
        sharded_engine.cache.hits,
        sharded_engine.cache.misses,
        sharded_engine.cache.stores,
    ) == (
        legacy_engine.cache.hits,
        legacy_engine.cache.misses,
        legacy_engine.cache.stores,
    )


# -- byte-identity with the single-queue engine --------------------------------
def test_one_shard_matches_single_queue_engine_exactly():
    members = build_fleet(_profiles(), 6)
    _assert_identical(_run_sharded(members, shards=1), _run_legacy(members))


@pytest.mark.parametrize("shards", [2, 4, 7])
@pytest.mark.parametrize("partition", ["round_robin", "tier"])
def test_every_shard_count_and_partition_merges_identically(shards, partition):
    members = build_fleet(_profiles(), 6)
    _assert_identical(
        _run_sharded(members, shards=shards, partition=partition),
        _run_legacy(members),
    )


def test_fixed_seed_replays_byte_identically_at_any_shard_count():
    members = build_fleet(_profiles(3), 5)
    first = _run_sharded(members, shards=3, partition="tier")
    second = _run_sharded(members, shards=3, partition="tier")
    _assert_identical(first, second)


def test_warm_cache_run_matches_legacy():
    members = build_fleet(_profiles(2), 4)
    # Warm a database with a legacy run, then re-run both engines on
    # (copies of) it: every member must hit the model cache at t=0.
    warm_engine, _ = _run_legacy(members)
    legacy_db = TangoScoreDatabase()
    sharded_db = TangoScoreDatabase()
    for db in (legacy_db, sharded_db):
        for record in warm_engine.scores.records():
            db.put(
                record.key.switch,
                record.key.metric,
                record.value,
                recorded_at_ms=record.recorded_at_ms,
                source=record.source,
                **dict(record.key.params),
            )
    sharded = _run_sharded(members, scores=sharded_db, shards=2)
    legacy = _run_legacy(members, scores=legacy_db)
    _assert_identical(sharded, legacy)
    assert sharded[1].makespan_ms == 0.0  # every lookup is a warm hit
    assert all(member.cache_hit for member in sharded[1].members)


def test_cross_shard_coalescing_drops_duplicate_leaders():
    # 6 members over 2 profiles: every fingerprint appears on all 3
    # round-robin shards, so 2 global leaders survive and 4 shard-local
    # probes are dropped at merge (2 of them wasted worker probes).
    members = build_fleet(_profiles(2), 6)
    sharded = _run_sharded(members, shards=3, partition="round_robin")
    _assert_identical(sharded, _run_legacy(members))
    stats = sharded[0].shard_stats
    assert sharded[1].full_probe_runs == 2
    assert stats["cross_shard_coalesced"] == 4
    assert stats["wasted_probe_ops"] > 0


def test_faulted_run_matches_legacy_and_disables_coalescing():
    plan = FaultPlan(seed=5, loss_probability=0.05)
    members = build_fleet(_profiles(2), 4)
    sharded = _run_sharded(
        members,
        shards=2,
        fault_injector=FaultInjector(plan),
        retry_policy=RetryPolicy(),
    )
    legacy = _run_legacy(
        members, fault_injector=FaultInjector(plan), retry_policy=RetryPolicy()
    )
    _assert_identical(sharded, legacy)
    # A lossy plan disables single-flight joins and cache stores.
    assert sharded[1].full_probe_runs == 4
    assert sharded[1].coalesced_joins == 0


def test_uncached_run_matches_legacy():
    members = build_fleet(_profiles(2), 4)
    _assert_identical(
        _run_sharded(members, shards=2, use_cache=False),
        _run_legacy(members, use_cache=False),
    )


def test_virtual_time_ties_break_identically():
    # Five identical members (same profile, same explicit seed) finish
    # at exactly the same virtual instant on every shard; the merge
    # must fall back to global member index, like the single queue.
    profile = _profiles(1)[0]
    members = [
        FleetMember(name=f"tie-{i}", profile=profile, seed=11) for i in range(5)
    ]
    _assert_identical(
        _run_sharded(members, shards=3, use_cache=False),
        _run_legacy(members, use_cache=False),
    )


# -- process backend -----------------------------------------------------------
def test_process_backend_matches_inline():
    members = build_fleet(_profiles(2), 4)
    _assert_identical(
        _run_sharded(members, shards=2, backend="process"),
        _run_sharded(members, shards=2, backend="inline"),
    )


def test_spawn_start_method_matches_inline():
    # Spawn pickles every task into a fresh interpreter -- the strictest
    # portability check on the shard task/result protocol.
    members = build_fleet(_profiles(2), 2)
    _assert_identical(
        _run_sharded(
            members, shards=2, backend="process", mp_start_method="spawn"
        ),
        _run_sharded(members, shards=2, backend="inline"),
    )


# -- validation and stats ------------------------------------------------------
def test_constructor_rejects_bad_geometry():
    members = build_fleet(_profiles(1), 2)
    with pytest.raises(ValueError, match="shards must be positive"):
        ShardedFleetEngine(members, shards=0)
    with pytest.raises(ValueError, match="unknown partition strategy"):
        ShardedFleetEngine(members, partition="hash")
    with pytest.raises(ValueError, match="unknown shard backend"):
        ShardedFleetEngine(members, backend="threads")
    with pytest.raises(ValueError, match="duplicate fleet member names"):
        ShardedFleetEngine([members[0], members[0]])
    with pytest.raises(ValueError, match="at least one member"):
        ShardedFleetEngine([])
    assert SHARD_BACKENDS == ("inline", "process")


def test_shard_stats_shape():
    members = build_fleet(_profiles(3), 6)
    engine, result = _run_sharded(members, shards=3, partition="tier")
    stats = engine.shard_stats
    assert stats["shards"] == 3 and stats["backend"] == "inline"
    assert stats["partition"] == "tier" and stats["members"] == 6
    assert len(stats["per_shard"]) == 3
    assert sum(shard["members"] for shard in stats["per_shard"]) == 6
    assert all(shard["events"] > 0 for shard in stats["per_shard"])
    # Per-shard makespans can only be reached, never exceeded, by the
    # merged global makespan.
    assert result.makespan_ms == pytest.approx(
        max(shard["makespan_ms"] for shard in stats["per_shard"]), abs=1e-3
    )


# -- property: arbitrary fleets and warm databases -----------------------------
@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    data=st.data(),
    copies=st.integers(min_value=1, max_value=6),
    shards=st.sampled_from([1, 2, 4, 7]),
    partition=st.sampled_from(["round_robin", "tier"]),
)
def test_property_random_fleet_merges_byte_identically(
    data, copies, shards, partition
):
    profile_count = data.draw(st.integers(min_value=1, max_value=3))
    members = build_fleet(_profiles(profile_count), copies)
    legacy_db = TangoScoreDatabase()
    sharded_db = TangoScoreDatabase()
    # Interleave unrelated puts and removes into both databases so the
    # merge must preserve pre-existing insertion order around its own
    # records, not just append to an empty store.
    ops = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "remove"]),
                st.sampled_from(["s1", "s2", "s3"]),
                st.sampled_from(["latency", "drops"]),
                st.integers(min_value=0, max_value=99),
            ),
            max_size=8,
        )
    )
    for db in (legacy_db, sharded_db):
        for op, switch, metric, value in ops:
            if op == "put":
                db.put(switch, metric, value, source="property-test")
            else:
                db.remove(switch, metric)
    _assert_identical(
        _run_sharded(members, scores=sharded_db, shards=shards, partition=partition),
        _run_legacy(members, scores=legacy_db),
    )
