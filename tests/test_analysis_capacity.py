"""Static TCAM admission checks (repro.analysis.capacity)."""

from repro.analysis import (
    analyze_dag,
    batch_slot_demand,
    check_capacity,
    check_dag_capacity,
    check_layer_fit,
)
from repro.core.requests import RequestDag
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.tables.tcam import TcamGeometry, TcamMode

L3 = Match(ip_dst=IpPrefix(0x0A000000, 8))
L2 = Match(eth_dst=0x1234)
L2_L3 = Match(eth_dst=0x1234, ip_dst=IpPrefix(0x0A000000, 8))


def _adds(n, match=None):
    return [
        FlowMod(
            FlowModCommand.ADD,
            match if match is not None else Match(ip_dst=IpPrefix(i << 8, 24)),
            priority=i + 1,
        )
        for i in range(n)
    ]


def test_batch_slot_demand_counts_deletes_and_ignores_modifies():
    geometry = TcamGeometry(slot_units=100)
    batch = _adds(3) + [
        FlowMod(FlowModCommand.DELETE, L3, priority=50),
        FlowMod(FlowModCommand.MODIFY, L3, priority=50),
    ]
    net, unstorable = batch_slot_demand(batch, geometry)
    assert net == 2.0  # 3 adds - 1 delete
    assert unstorable == []


def test_fitting_batch_is_clean():
    geometry = TcamGeometry(slot_units=100)
    report = check_capacity(_adds(10), geometry)
    assert len(report) == 0


def test_over_capacity_batch_is_tng020_error():
    geometry = TcamGeometry(slot_units=4)
    report = check_capacity(_adds(5), geometry, location="s1")
    assert [d.code for d in report] == ["TNG020"]
    assert report.has_errors
    assert report.diagnostics[0].location == "s1"


def test_existing_occupancy_counts_toward_capacity():
    geometry = TcamGeometry(slot_units=10)
    assert len(check_capacity(_adds(5), geometry, occupied_units=4.0)) == 0
    report = check_capacity(_adds(5), geometry, occupied_units=6.0)
    assert [d.code for d in report] == ["TNG020"]


def test_double_wide_mode_halves_capacity():
    geometry = TcamGeometry(slot_units=8, mode=TcamMode.DOUBLE_WIDE)
    assert len(check_capacity(_adds(4), geometry, high_water=1.0)) == 0
    report = check_capacity(_adds(5), geometry)
    assert [d.code for d in report] == ["TNG020"]


def test_adaptive_mode_charges_wide_entries_more():
    geometry = TcamGeometry(slot_units=4, mode=TcamMode.ADAPTIVE, wide_cost=2.0)
    wide_adds = [
        FlowMod(FlowModCommand.ADD, L2_L3, priority=i + 1) for i in range(2)
    ]
    assert len(check_capacity(wide_adds, geometry, high_water=1.0)) == 0
    report = check_capacity(wide_adds + _adds(1, match=L3), geometry)
    assert [d.code for d in report] == ["TNG020"]


def test_single_wide_rejects_l2_l3_entry_as_tng021():
    geometry = TcamGeometry(slot_units=100, mode=TcamMode.SINGLE_WIDE)
    batch = [FlowMod(FlowModCommand.ADD, L2_L3, priority=1)]
    report = check_capacity(batch, geometry)
    assert [d.code for d in report] == ["TNG021"]
    assert report.has_errors


def test_high_water_warning_is_tng022():
    geometry = TcamGeometry(slot_units=100)
    report = check_capacity(_adds(95), geometry, high_water=0.9)
    assert [d.code for d in report] == ["TNG022"]
    assert not report.has_errors


def test_layer_fit_spill_into_software_is_tng023_warning():
    report = check_layer_fit(_adds(30), layer_sizes=[20, None], location="s1")
    assert [d.code for d in report] == ["TNG023"]
    assert not report.has_errors


def test_layer_fit_exhausting_all_bounded_layers_is_tng020_error():
    report = check_layer_fit(_adds(30), layer_sizes=[10, 10])
    assert [d.code for d in report] == ["TNG020"]
    assert report.has_errors


def test_layer_fit_within_fast_table_is_clean():
    assert len(check_layer_fit(_adds(10), layer_sizes=[20, None])) == 0


def test_check_dag_capacity_checks_each_switch_batch():
    dag = RequestDag()
    for index in range(6):
        dag.new_request(
            "s1" if index < 5 else "s2",
            FlowModCommand.ADD,
            Match(ip_dst=IpPrefix(index << 8, 24)),
            priority=index + 1,
        )
    geometries = {"s1": TcamGeometry(slot_units=4), "s2": TcamGeometry(slot_units=4)}
    report = check_dag_capacity(dag, geometries)
    assert [d.code for d in report] == ["TNG020"]
    assert report.diagnostics[0].location == "s1"


def test_check_dag_capacity_skips_unknown_switches():
    dag = RequestDag()
    dag.new_request(
        "mystery", FlowModCommand.ADD, Match(ip_dst=IpPrefix(0, 24)), priority=1
    )
    assert len(check_dag_capacity(dag, geometries={})) == 0


def test_analyze_dag_integrates_capacity_admission():
    dag = RequestDag()
    for index in range(5):
        dag.new_request(
            "s1",
            FlowModCommand.ADD,
            Match(ip_dst=IpPrefix(index << 8, 24)),
            priority=index + 1,
        )
    report = analyze_dag(dag, geometries={"s1": TcamGeometry(slot_units=4)})
    assert [d.code for d in report] == ["TNG020"]
