"""Tests for the emulated network and scenario generators."""

import pytest

from repro.core.scheduler import BasicTangoScheduler
from repro.netem.consistency import (
    add_forward_path_dependencies,
    add_reverse_path_dependencies,
)
from repro.netem.network import EmulatedNetwork
from repro.netem.scenarios import (
    LinkFailureScenario,
    TrafficEngineeringScenario,
)
from repro.netem.topology import b4_topology, triangle_topology
from repro.core.requests import RequestDag
from repro.openflow.messages import FlowModCommand
from repro.openflow.match import IpPrefix, Match
from repro.switches.profiles import OVS_PROFILE
from repro.workloads.traffic import uniform_traffic_matrix
from repro.sim.rng import SeededRng


def _network(topology=None):
    return EmulatedNetwork(topology or triangle_topology(), default_profile=OVS_PROFILE, seed=1)


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


# -- EmulatedNetwork ---------------------------------------------------------------
def test_network_builds_one_switch_per_node():
    network = _network()
    assert set(network.switches) == {"s1", "s2", "s3"}
    assert network.switches["s1"].name == "s1"


def test_new_flow_uses_shortest_path():
    network = _network()
    flow = network.new_flow("s1", "s2")
    assert flow.path == ["s1", "s2"]
    assert flow.flow_id in network.flows


def test_preinstall_flow_rules_counts():
    network = _network()
    network.new_flow("s1", "s2")
    network.new_flow("s1", "s3")
    assert network.preinstall_flow_rules() == 4
    assert network.switches["s1"].num_flows == 2


def test_reset_rules():
    network = _network()
    network.new_flow("s1", "s2")
    network.preinstall_flow_rules()
    network.reset_rules()
    assert all(s.num_flows == 0 for s in network.switches.values())


# -- consistency helpers --------------------------------------------------------------
def test_reverse_path_dependencies_force_egress_first():
    dag = RequestDag()
    ingress = dag.new_request("s1", FlowModCommand.ADD, _match(1))
    egress = dag.new_request("s2", FlowModCommand.ADD, _match(1))
    add_reverse_path_dependencies(dag, [ingress, egress])
    assert dag.independent_requests() == [egress]


def test_forward_path_dependencies_force_ingress_first():
    dag = RequestDag()
    ingress = dag.new_request("s1", FlowModCommand.DELETE, _match(1))
    egress = dag.new_request("s2", FlowModCommand.DELETE, _match(1))
    add_forward_path_dependencies(dag, [ingress, egress])
    assert dag.independent_requests() == [ingress]


# -- link failure -----------------------------------------------------------------------
def test_link_failure_reroutes_affected_flows():
    network = _network()
    for _ in range(5):
        network.new_flow("s1", "s2")
    network.new_flow("s1", "s3")
    network.preinstall_flow_rules()

    scenario = LinkFailureScenario(network, ("s1", "s2"))
    assert len(scenario.affected_flows()) == 5
    result = scenario.build_dag()
    # Each rerouted flow: ADD at s3 (new hop) + MODIFY at s1 (repoint).
    assert result.adds == 5
    assert result.mods == 5
    assert result.dels == 0
    # Flows now recorded on the detour path.
    assert all(f.path == ["s1", "s3", "s2"] for f in scenario.affected_flows())


def test_link_failure_dag_orders_detour_before_repoint():
    network = _network()
    network.new_flow("s1", "s2")
    network.preinstall_flow_rules()
    result = LinkFailureScenario(network, ("s1", "s2")).build_dag()
    ready = result.dag.independent_requests()
    assert len(ready) == 1
    assert ready[0].location == "s3"
    assert ready[0].command is FlowModCommand.ADD


def test_link_failure_dag_schedulable():
    network = _network()
    for _ in range(10):
        network.new_flow("s1", "s2")
    network.preinstall_flow_rules()
    result = LinkFailureScenario(network, ("s1", "s2")).build_dag()
    out = BasicTangoScheduler(network.executor()).schedule(result.dag)
    assert out.total_requests == result.total


# -- TE random mix -------------------------------------------------------------------------
def test_random_mix_counts_and_levels():
    network = _network()
    scenario = TrafficEngineeringScenario(network, seed=4)
    result = scenario.random_mix(100, mix=(0.5, 0.25, 0.25), dag_levels=2)
    assert result.total == 100
    assert result.adds == 50
    assert result.mods == 25
    assert result.dels == 25
    assert result.dag.depth() == 2


def test_random_mix_preinstall_covers_mod_del():
    network = _network()
    scenario = TrafficEngineeringScenario(network, seed=4)
    result = scenario.random_mix(40, mix=(0.5, 0.25, 0.25))
    assert len(result.preinstall) == result.mods + result.dels
    result.apply_preinstall(network)
    total_rules = sum(s.num_flows for s in network.switches.values())
    assert total_rules == result.mods + result.dels


def test_random_mix_same_priorities_mode():
    network = _network()
    scenario = TrafficEngineeringScenario(network, seed=4)
    result = scenario.random_mix(30, mix=(1.0, 0.0, 0.0), priorities="same")
    priorities = {r.priority for r in result.dag.requests}
    assert priorities == {100}


def test_random_mix_validates_inputs():
    scenario = TrafficEngineeringScenario(_network(), seed=1)
    with pytest.raises(ValueError):
        scenario.random_mix(10, mix=(0.9, 0.3, 0.1))
    with pytest.raises(ValueError):
        scenario.random_mix(10, dag_levels=0)


# -- TE from traffic matrices ------------------------------------------------------------------
def test_te_matrices_generate_all_three_request_kinds():
    network = _network(b4_topology())
    rng = SeededRng(8).child("tm")
    nodes = network.topology.switches
    before = uniform_traffic_matrix(nodes, total_demand=100.0, rng=rng, sparsity=0.3)
    after = uniform_traffic_matrix(nodes, total_demand=120.0, rng=rng, sparsity=0.3)
    scenario = TrafficEngineeringScenario(network, seed=2)
    result = scenario.from_traffic_matrices(before, after)
    assert result.adds > 0
    assert result.dels > 0
    assert result.mods > 0
    assert len(result.dag) == result.total


def test_te_matrices_dag_schedulable():
    network = _network(b4_topology())
    rng = SeededRng(9).child("tm")
    nodes = network.topology.switches
    before = uniform_traffic_matrix(nodes, 50.0, rng, sparsity=0.15)
    after = uniform_traffic_matrix(nodes, 60.0, rng, sparsity=0.15)
    scenario = TrafficEngineeringScenario(network, seed=2)
    result = scenario.from_traffic_matrices(before, after)
    out = BasicTangoScheduler(network.executor()).schedule(result.dag)
    assert out.total_requests == result.total


# -- fault-scenario catalogue -------------------------------------------------
def test_fault_scenarios_catalogue_builds_valid_plans():
    from repro.netem.scenarios import FAULT_SCENARIOS

    assert {"none", "lossy", "reject", "stall", "disconnect", "chaos"} <= set(
        FAULT_SCENARIOS
    )
    for name, scenario in sorted(FAULT_SCENARIOS.items()):
        plan = scenario.plan(seed=5)
        assert plan.seed == 5
        assert scenario.description
        if name == "none":
            assert plan.is_noop()
        else:
            assert not plan.is_noop()


def test_chaos_scenario_matches_acceptance_shape():
    from repro.netem.scenarios import FAULT_SCENARIOS

    plan = FAULT_SCENARIOS["chaos"].plan()
    assert plan.loss_probability == 0.10
    assert len(plan.disconnects) == 1
    assert plan.disconnects[0].switch is None  # applies to every switch
