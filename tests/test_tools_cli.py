"""Tests for the tango-probe CLI."""

import io

import pytest

from repro.tools.cli import main


def test_profiles_subcommand_lists_vendors():
    out = io.StringIO()
    assert main(["profiles"], out=out) == 0
    text = out.getvalue()
    for name in ("ovs", "switch1", "switch2", "switch3"):
        assert name in text


def test_probe_switch3_reports_size():
    out = io.StringIO()
    assert main(["probe", "--profile", "switch3", "--max-rules", "1024"], out=out) == 0
    text = out.getvalue()
    assert "switch profile : switch3" in text
    assert "size 767" in text
    assert "latency curves" in text
    assert "rule placement : traffic-independent" in text


def test_probe_ovs_detects_microflow_caching():
    out = io.StringIO()
    assert main(["probe", "--profile", "ovs", "--max-rules", "128"], out=out) == 0
    text = out.getvalue()
    assert "traffic-driven (microflow caching)" in text
    assert "unbounded" in text


def test_probe_unknown_profile_rejected():
    with pytest.raises(SystemExit):
        main(["probe", "--profile", "nope"], out=io.StringIO())


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([], out=io.StringIO())


def test_schedule_subcommand_lf():
    out = io.StringIO()
    assert (
        main(["schedule", "--scenario", "lf", "--flows", "40"], out=out) == 0
    )
    text = out.getvalue()
    assert "dionysus" in text
    assert "tango" in text
    assert "baseline" in text


def test_schedule_subcommand_te():
    out = io.StringIO()
    assert (
        main(
            ["schedule", "--scenario", "te2", "--flows", "20", "--requests", "60"],
            out=out,
        )
        == 0
    )
    assert "vs Dionysus" in out.getvalue()


def test_schedule_subcommand_strict_verifies_before_scheduling():
    out = io.StringIO()
    assert (
        main(
            ["schedule", "--scenario", "lf", "--flows", "10", "--strict"],
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "static verification ok" in text
    assert "baseline" in text


def test_probe_trace_writes_all_three_artifacts(tmp_path):
    base = str(tmp_path / "probe-run")
    out = io.StringIO()
    assert (
        main(
            [
                "probe",
                "--profile",
                "switch2",
                "--max-rules",
                "512",
                "--trace",
                base,
            ],
            out=out,
        )
        == 0
    )
    assert "trace:" in out.getvalue()
    import json

    lines = open(base + ".jsonl").read().splitlines()
    assert lines and all(json.loads(line)["name"] for line in lines)
    chrome = json.load(open(base + ".chrome.json"))
    assert chrome["traceEvents"]
    assert "# TYPE" in open(base + ".prom").read()


def test_schedule_trace_batch_spans_carry_patterns(tmp_path):
    base = str(tmp_path / "sched-run")
    out = io.StringIO()
    assert (
        main(
            ["schedule", "--scenario", "lf", "--flows", "20", "--trace", base],
            out=out,
        )
        == 0
    )
    import json

    events = [json.loads(line) for line in open(base + ".jsonl")]
    batches = [e for e in events if e["name"] == "scheduler.batch"]
    assert batches
    tango_batches = [e for e in batches if "pattern" in e["attrs"]]
    assert tango_batches  # every Tango batch names the oracle's choice
    assert all(e["attrs"]["batch_size"] > 0 for e in batches)
    dionysus = [e for e in batches if e["attrs"].get("policy") == "critical_path"]
    assert dionysus
    prom = open(base + ".prom").read()
    assert "scheduler_batches" in prom
    assert "executor_requests_issued" in prom


def test_schedule_trace_is_deterministic(tmp_path):
    outputs = []
    for name in ("a", "b"):
        base = str(tmp_path / name)
        assert (
            main(
                ["schedule", "--scenario", "lf", "--flows", "20", "--trace", base],
                out=io.StringIO(),
            )
            == 0
        )
        outputs.append(open(base + ".jsonl").read())
    assert outputs[0] == outputs[1]


# -- faults subcommand --------------------------------------------------------
def test_faults_subcommand_chaos_end_to_end():
    out = io.StringIO()
    assert (
        main(
            [
                "faults",
                "--scenario",
                "chaos",
                "--seed",
                "3",
                "--flows",
                "20",
                "--verify-determinism",
            ],
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "fault scenario 'chaos'" in text
    assert "layer sizes" in text
    assert "fault retries" in text
    assert "determinism ok" in text


def test_faults_subcommand_none_scenario_verifies_noop():
    out = io.StringIO()
    assert (
        main(
            ["faults", "--scenario", "none", "--flows", "10", "--verify-noop"],
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "noop check ok" in text
    assert "fault retries    : 0" in text


def test_faults_subcommand_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["faults", "--scenario", "nope"], out=io.StringIO())
