"""Tests for the tango-probe CLI."""

import io

import pytest

from repro.tools.cli import main


def test_profiles_subcommand_lists_vendors():
    out = io.StringIO()
    assert main(["profiles"], out=out) == 0
    text = out.getvalue()
    for name in ("ovs", "switch1", "switch2", "switch3"):
        assert name in text


def test_probe_switch3_reports_size():
    out = io.StringIO()
    assert main(["probe", "--profile", "switch3", "--max-rules", "1024"], out=out) == 0
    text = out.getvalue()
    assert "switch profile : switch3" in text
    assert "size 767" in text
    assert "latency curves" in text
    assert "rule placement : traffic-independent" in text


def test_probe_ovs_detects_microflow_caching():
    out = io.StringIO()
    assert main(["probe", "--profile", "ovs", "--max-rules", "128"], out=out) == 0
    text = out.getvalue()
    assert "traffic-driven (microflow caching)" in text
    assert "unbounded" in text


def test_probe_unknown_profile_rejected():
    with pytest.raises(SystemExit):
        main(["probe", "--profile", "nope"], out=io.StringIO())


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([], out=io.StringIO())


def test_schedule_subcommand_lf():
    out = io.StringIO()
    assert (
        main(["schedule", "--scenario", "lf", "--flows", "40"], out=out) == 0
    )
    text = out.getvalue()
    assert "dionysus" in text
    assert "tango" in text
    assert "baseline" in text


def test_schedule_subcommand_te():
    out = io.StringIO()
    assert (
        main(
            ["schedule", "--scenario", "te2", "--flows", "20", "--requests", "60"],
            out=out,
        )
        == 0
    )
    assert "vs Dionysus" in out.getvalue()


def test_schedule_subcommand_strict_verifies_before_scheduling():
    out = io.StringIO()
    assert (
        main(
            ["schedule", "--scenario", "lf", "--flows", "10", "--strict"],
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "static verification ok" in text
    assert "baseline" in text


def test_probe_trace_writes_all_three_artifacts(tmp_path):
    base = str(tmp_path / "probe-run")
    out = io.StringIO()
    assert (
        main(
            [
                "probe",
                "--profile",
                "switch2",
                "--max-rules",
                "512",
                "--trace",
                base,
            ],
            out=out,
        )
        == 0
    )
    assert "trace:" in out.getvalue()
    import json

    lines = open(base + ".jsonl").read().splitlines()
    assert lines and all(json.loads(line)["name"] for line in lines)
    chrome = json.load(open(base + ".chrome.json"))
    assert chrome["traceEvents"]
    assert "# TYPE" in open(base + ".prom").read()


def test_schedule_trace_batch_spans_carry_patterns(tmp_path):
    base = str(tmp_path / "sched-run")
    out = io.StringIO()
    assert (
        main(
            ["schedule", "--scenario", "lf", "--flows", "20", "--trace", base],
            out=out,
        )
        == 0
    )
    import json

    events = [json.loads(line) for line in open(base + ".jsonl")]
    batches = [e for e in events if e["name"] == "scheduler.batch"]
    assert batches
    tango_batches = [e for e in batches if "pattern" in e["attrs"]]
    assert tango_batches  # every Tango batch names the oracle's choice
    assert all(e["attrs"]["batch_size"] > 0 for e in batches)
    dionysus = [e for e in batches if e["attrs"].get("policy") == "critical_path"]
    assert dionysus
    prom = open(base + ".prom").read()
    assert "scheduler_batches" in prom
    assert "executor_requests_issued" in prom


def test_schedule_trace_is_deterministic(tmp_path):
    outputs = []
    for name in ("a", "b"):
        base = str(tmp_path / name)
        assert (
            main(
                ["schedule", "--scenario", "lf", "--flows", "20", "--trace", base],
                out=io.StringIO(),
            )
            == 0
        )
        outputs.append(open(base + ".jsonl").read())
    assert outputs[0] == outputs[1]


# -- fleet inference ----------------------------------------------------------
def _fleet_args(*extra):
    return [
        "infer", "--profile", "switch3", "--fleet", "4",
        "--fleet-profiles", "switch3,switch1", "--max-rules", "1024",
    ] + list(extra)


def test_infer_alias_runs_the_probe_path():
    out = io.StringIO()
    assert main(["infer", "--profile", "switch3", "--max-rules", "1024"], out=out) == 0
    assert "switch profile : switch3" in out.getvalue()


def test_fleet_report_shows_makespan_cache_and_members():
    out = io.StringIO()
    assert main(_fleet_args("--max-in-flight", "2"), out=out) == 0
    text = out.getvalue()
    assert "fleet inference: 4 switches (2 profiles), max in flight 2" in text
    assert "virtual makespan" in text
    assert "sequential sum" in text
    # With 2 slots, switch3#2 joins switch3's in-flight probe; switch1#2
    # is admitted after switch1 completed, so it hits the stored cache.
    assert "full probe runs  : 2" in text
    assert "cache hits 1, coalesced 1" in text
    assert "switch3#2" in text and "coalesced:switch3" in text
    assert "switch1#2" in text and "cache:switch1" in text


def test_fleet_json_summary():
    import json

    out = io.StringIO()
    assert main(_fleet_args("--json"), out=out) == 0
    summary = json.loads(out.getvalue())
    assert summary["members"] == 4
    assert summary["full_probe_runs"] == 2
    assert summary["coalesced_joins"] == 2
    assert summary["makespan_ms"] < summary["sequential_sum_ms"]
    assert [m["name"] for m in summary["per_member"]] == [
        "switch3", "switch1", "switch3#2", "switch1#2",
    ]


def test_fleet_no_cache_probes_every_member():
    import json

    out = io.StringIO()
    assert main(_fleet_args("--json", "--no-fleet-cache"), out=out) == 0
    summary = json.loads(out.getvalue())
    assert summary["full_probe_runs"] == 4
    assert summary["cache_hits"] == summary["coalesced_joins"] == 0


def test_fleet_trace_writes_artifacts_with_fleet_events(tmp_path):
    import json

    base = str(tmp_path / "fleet-run")
    out = io.StringIO()
    assert main(_fleet_args("--trace", base), out=out) == 0
    assert "trace:" in out.getvalue()
    events = [json.loads(line) for line in open(base + ".jsonl")]
    names = {e["name"] for e in events}
    assert {"fleet.infer", "fleet.member_start", "fleet.member_finish"} <= names
    assert "fleet_full_probes" in open(base + ".prom").read()


def test_fleet_rejects_bad_sizes_and_profiles():
    out = io.StringIO()
    assert main(
        ["infer", "--profile", "switch3", "--fleet", "0"], out=out
    ) == 2
    assert "--fleet must be positive" in out.getvalue()
    out = io.StringIO()
    assert main(
        [
            "infer", "--profile", "switch3", "--fleet", "2",
            "--fleet-profiles", "switch3,nope",
        ],
        out=out,
    ) == 2
    assert "unknown fleet profile(s): nope" in out.getvalue()


# -- race sanitizer -----------------------------------------------------------
def test_sanitize_fixture_racy_flags_tng040_and_exits_one():
    out = io.StringIO()
    code = main(
        ["infer", "--profile", "switch2", "--sanitize-fixture", "racy"], out=out
    )
    assert code == 1
    text = out.getvalue()
    assert "TNG040" in text
    assert "t=5.000ms seq=0" in text  # (time, sequence) access trace
    assert "owner=racy-a" in text and "owner=racy-b" in text


def test_sanitize_fixture_json_summary():
    import json

    out = io.StringIO()
    code = main(
        [
            "infer", "--profile", "switch2",
            "--sanitize-fixture", "racy", "--json",
        ],
        out=out,
    )
    assert code == 1
    payload = json.loads(out.getvalue())
    assert payload["findings"] == 1
    assert payload["diagnostics"][0]["code"] == "TNG040"
    assert len(payload["diagnostics"][0]["trace"]) == 2


def test_sanitized_fleet_run_is_race_free_and_exits_zero():
    import json

    out = io.StringIO()
    code = main(
        [
            "infer", "--profile", "switch3", "--fleet", "3",
            "--fleet-profiles", "switch3,switch1",
            "--max-rules", "512", "--sanitize", "--json",
        ],
        out=out,
    )
    assert code == 0
    payload = json.loads(out.getvalue())
    assert payload["fleet"]["members"] == 3
    assert payload["races"]["findings"] == 0
    assert payload["races"]["accesses"] > 0


def test_sanitize_without_fleet_is_a_usage_error():
    out = io.StringIO()
    assert main(["infer", "--profile", "switch2", "--sanitize"], out=out) == 2
    assert "--sanitize" in out.getvalue()


# -- faults subcommand --------------------------------------------------------
def test_faults_subcommand_chaos_end_to_end():
    out = io.StringIO()
    assert (
        main(
            [
                "faults",
                "--scenario",
                "chaos",
                "--seed",
                "3",
                "--flows",
                "20",
                "--verify-determinism",
            ],
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "fault scenario 'chaos'" in text
    assert "layer sizes" in text
    assert "fault retries" in text
    assert "determinism ok" in text


def test_faults_subcommand_none_scenario_verifies_noop():
    out = io.StringIO()
    assert (
        main(
            ["faults", "--scenario", "none", "--flows", "10", "--verify-noop"],
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "noop check ok" in text
    assert "fault retries    : 0" in text


def test_faults_subcommand_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["faults", "--scenario", "nope"], out=io.StringIO())


def test_faults_telemetry_writes_streams_and_fires_burn_alert(tmp_path):
    from repro.obs.slo import read_alerts_jsonl
    from repro.obs.telemetry import read_telemetry_jsonl

    prefix = str(tmp_path / "tele")
    out = io.StringIO()
    assert (
        main(
            [
                "faults",
                "--scenario",
                "disconnect",
                "--seed",
                "7",
                "--flows",
                "40",
                "--verify-determinism",
                "--telemetry",
                prefix,
            ],
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "telemetry:" in text
    assert "identical size estimates and schedules and telemetry streams" in text
    samples = read_telemetry_jsonl(prefix + ".telemetry.jsonl")
    assert samples
    assert "scheduler.fault_deferrals" in {s.series for s in samples}
    alerts = read_alerts_jsonl(prefix + ".alerts.jsonl")
    burn = [a for a in alerts if a.kind == "burn_rate"]
    assert burn, "the seeded disconnect scenario must trip a burn-rate alert"
    # Alert timestamps are cadence ticks: exact multiples of 5 ms.
    assert all(a.t_ms % 5.0 == 0.0 for a in alerts)


def test_faults_telemetry_streams_are_deterministic(tmp_path):
    def run(prefix):
        out = io.StringIO()
        assert (
            main(
                [
                    "faults",
                    "--scenario",
                    "chaos",
                    "--seed",
                    "0",
                    "--flows",
                    "30",
                    "--telemetry",
                    str(tmp_path / prefix),
                ],
                out=out,
            )
            == 0
        )
        with open(str(tmp_path / prefix) + ".telemetry.jsonl") as handle:
            stream = handle.read()
        with open(str(tmp_path / prefix) + ".alerts.jsonl") as handle:
            alerts = handle.read()
        return stream, alerts

    assert run("first") == run("second")


# -- sharded fleet inference (--shards) ----------------------------------------
def _fleet_json(argv):
    import json

    out = io.StringIO()
    assert main(argv, out=out) == 0
    return json.loads(out.getvalue()), out.getvalue()


def test_infer_shards_json_is_byte_identical_across_shard_counts():
    base = [
        "infer", "--profile", "switch1", "--fleet", "6",
        "--fleet-profiles", "switch1,switch3", "--max-rules", "64", "--json",
    ]
    _, legacy_text = _fleet_json(base)
    _, one_shard_text = _fleet_json(base + ["--shards", "1"])
    _, three_shard_text = _fleet_json(
        base + ["--shards", "3", "--partition", "tier"]
    )
    assert one_shard_text == legacy_text
    assert three_shard_text == legacy_text


def test_infer_shards_text_report_appends_shard_section():
    out = io.StringIO()
    assert (
        main(
            [
                "infer", "--profile", "switch3", "--fleet", "4",
                "--max-rules", "64", "--shards", "2", "--partition",
                "round_robin",
            ],
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "fleet inference: 4 switches" in text
    assert "sharded: 2 shards (round_robin partition" in text
    assert "cross-shard coalesced" in text
    assert "shard 0:" in text and "shard 1:" in text


def test_infer_shards_rejects_incompatible_flags():
    base = ["infer", "--profile", "switch1", "--fleet", "4", "--shards", "2"]
    for extra in (
        ["--max-in-flight", "2"],
        ["--sanitize"],
        ["--trace", "/tmp/t"],
    ):
        out = io.StringIO()
        assert main(base + extra, out=out) == 2
        assert "--shards cannot be combined" in out.getvalue()
    out = io.StringIO()
    assert main(base[:-2] + ["--shards", "0"], out=out) == 2
    assert "--shards must be positive" in out.getvalue()


def test_infer_shards_with_fault_scenario_matches_legacy():
    base = [
        "infer", "--profile", "switch1", "--fleet", "4", "--max-rules", "64",
        "--fault-scenario", "lossy", "--seed", "3", "--json",
    ]
    _, legacy_text = _fleet_json(base)
    _, sharded_text = _fleet_json(base + ["--shards", "2"])
    assert sharded_text == legacy_text
