"""Tests for the tango-probe CLI."""

import io

import pytest

from repro.tools.cli import main


def test_profiles_subcommand_lists_vendors():
    out = io.StringIO()
    assert main(["profiles"], out=out) == 0
    text = out.getvalue()
    for name in ("ovs", "switch1", "switch2", "switch3"):
        assert name in text


def test_probe_switch3_reports_size():
    out = io.StringIO()
    assert main(["probe", "--profile", "switch3", "--max-rules", "1024"], out=out) == 0
    text = out.getvalue()
    assert "switch profile : switch3" in text
    assert "size 767" in text
    assert "latency curves" in text
    assert "rule placement : traffic-independent" in text


def test_probe_ovs_detects_microflow_caching():
    out = io.StringIO()
    assert main(["probe", "--profile", "ovs", "--max-rules", "128"], out=out) == 0
    text = out.getvalue()
    assert "traffic-driven (microflow caching)" in text
    assert "unbounded" in text


def test_probe_unknown_profile_rejected():
    with pytest.raises(SystemExit):
        main(["probe", "--profile", "nope"], out=io.StringIO())


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([], out=io.StringIO())


def test_schedule_subcommand_lf():
    out = io.StringIO()
    assert (
        main(["schedule", "--scenario", "lf", "--flows", "40"], out=out) == 0
    )
    text = out.getvalue()
    assert "dionysus" in text
    assert "tango" in text
    assert "baseline" in text


def test_schedule_subcommand_te():
    out = io.StringIO()
    assert (
        main(
            ["schedule", "--scenario", "te2", "--flows", "20", "--requests", "60"],
            out=out,
        )
        == 0
    )
    assert "vs Dionysus" in out.getvalue()


def test_schedule_subcommand_strict_verifies_before_scheduling():
    out = io.StringIO()
    assert (
        main(
            ["schedule", "--scenario", "lf", "--flows", "10", "--strict"],
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "static verification ok" in text
    assert "baseline" in text
