"""Tests for vendor profiles: Table 1 capacities and Figure 2/3 behaviours."""

import pytest

from repro.openflow.channel import ControlChannel
from repro.openflow.errors import TableFullError
from repro.openflow.match import MatchKind, PacketFields
from repro.openflow.messages import FlowMod, FlowModCommand, PacketOut
from repro.core.probing import probe_match, probe_packet
from repro.switches.profiles import (
    OVS_PROFILE,
    SWITCH_1,
    SWITCH_2,
    SWITCH_3,
    VENDOR_PROFILES,
    make_cache_test_profile,
)
from repro.tables.policies import LRU


def _fill_to_reject(switch, kind, limit=6000):
    count = 0
    while count < limit:
        flow_mod = FlowMod(
            FlowModCommand.ADD, probe_match(count, kind), priority=100
        )
        try:
            switch.apply_flow_mod(flow_mod)
        except TableFullError:
            return count
        count += 1
    return count


# -- Table 1 capacities ------------------------------------------------------------
def test_switch2_holds_2560_of_any_kind():
    for kind in (MatchKind.L3, MatchKind.L2, MatchKind.L2_L3):
        switch = SWITCH_2.build(seed=1)
        assert _fill_to_reject(switch, kind) == 2560


def test_switch3_narrow_767_wide_369():
    assert _fill_to_reject(SWITCH_3.build(seed=1), MatchKind.L3) == 767
    assert _fill_to_reject(SWITCH_3.build(seed=1), MatchKind.L2_L3) == 369


def test_switch1_tcam_4k_narrow_2k_wide_with_software_overflow():
    switch = SWITCH_1.build(seed=1)
    for i in range(5000):
        switch.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, probe_match(i, MatchKind.L3), priority=100)
        )
    assert switch.tables.layer_occupancy() == [4096, 904]

    wide = SWITCH_1.build(seed=2)
    for i in range(3000):
        wide.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, probe_match(i, MatchKind.L2_L3), priority=100)
        )
    assert wide.tables.layer_occupancy() == [2048, 952]


def test_registry_contains_all_four_vendors():
    assert set(VENDOR_PROFILES) == {"ovs", "switch1", "switch2", "switch3"}


# -- Figure 2 delay tiers ---------------------------------------------------------
def test_switch1_three_tier_delays():
    """Fig 2b: fast ~0.665ms, slow ~3.7ms, control ~7.5ms."""
    switch = SWITCH_1.build(seed=3)
    channel = ControlChannel(switch)
    for i in range(2100):
        channel.send_flow_mod(
            FlowMod(FlowModCommand.ADD, probe_match(i, MatchKind.L2_L3), priority=100)
        )
    fast = channel.send_packet_out(PacketOut(probe_packet(10)))
    slow = channel.send_packet_out(PacketOut(probe_packet(2090)))
    control = channel.send_packet_out(PacketOut(probe_packet(5000)))
    assert fast < 1.2
    assert 2.5 < slow < 5.0
    assert control > 6.0


def test_switch2_two_tier_delays():
    """Fig 2c: fast ~0.4ms, control ~8ms; no slow tier exists."""
    switch = SWITCH_2.build(seed=3)
    channel = ControlChannel(switch)
    channel.send_flow_mod(
        FlowMod(FlowModCommand.ADD, probe_match(0, MatchKind.L3), priority=100)
    )
    fast = channel.send_packet_out(PacketOut(probe_packet(0)))
    control = channel.send_packet_out(PacketOut(probe_packet(1)))
    assert fast < 1.0
    assert control > 6.0


def test_ovs_three_tier_delays():
    """Fig 2a: fast 3ms, slow ~4.5ms, control ~4.65ms."""
    switch = OVS_PROFILE.build(seed=3)
    channel = ControlChannel(switch)
    channel.send_flow_mod(
        FlowMod(FlowModCommand.ADD, probe_match(0, MatchKind.L3), priority=100)
    )
    slow = channel.send_packet_out(PacketOut(probe_packet(0)))
    fast = channel.send_packet_out(PacketOut(probe_packet(0)))
    control = channel.send_packet_out(PacketOut(probe_packet(1)))
    assert 3.4 < slow < 6.0
    assert fast == pytest.approx(3.0, abs=0.3)
    assert 4.0 < control < 5.6


# -- Figure 3c priority-order asymmetry ----------------------------------------------
def _install_time(profile, priorities, seed):
    switch = profile.build(seed=seed)
    start = switch.clock.now_ms
    for i, priority in enumerate(priorities):
        switch.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, probe_match(i, MatchKind.L3), priority=priority)
        )
    return switch.clock.now_ms - start


def test_switch1_descending_much_slower_than_ascending():
    n = 500
    ascending = _install_time(SWITCH_1, list(range(1, n + 1)), seed=1)
    descending = _install_time(SWITCH_1, list(range(n, 0, -1)), seed=2)
    same = _install_time(SWITCH_1, [100] * n, seed=3)
    assert descending > 5 * ascending
    assert same <= ascending


def test_ovs_priority_order_has_no_effect():
    n = 300
    ascending = _install_time(OVS_PROFILE, list(range(1, n + 1)), seed=1)
    descending = _install_time(OVS_PROFILE, list(range(n, 0, -1)), seed=1)
    assert descending == pytest.approx(ascending, rel=0.25)


# -- cache-test factory ---------------------------------------------------------------
def test_cache_test_profile_shape():
    profile = make_cache_test_profile(LRU, layer_sizes=(16, 32, None))
    switch = profile.build(seed=1)
    assert len(switch.tables.layers) == 3
    assert switch.tables.layers[0].capacity == 16
    assert profile.true_layer_sizes == (16, 32, None)


def test_cache_test_profile_validates_alignment():
    with pytest.raises(ValueError):
        make_cache_test_profile(LRU, layer_sizes=(16,), layer_means_ms=(0.5, 1.0))


def test_with_policy_renames_profile():
    renamed = SWITCH_1.with_policy(LRU)
    assert renamed.policy is LRU
    assert "LRU" in renamed.name
