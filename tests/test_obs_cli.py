"""Tests for the tango-trace CLI."""

import io
import json

import pytest

from repro.obs.cli import main
from repro.obs.export import write_jsonl
from repro.obs.trace import Tracer


@pytest.fixture
def trace_file(tmp_path):
    tracer = Tracer(now_ms=lambda: 0.0)
    clock = iter([0.0, 2.0, 2.0, 5.0]).__next__
    with tracer.span("batch", category="scheduler", clock=clock, pattern="DEL MOD"):
        pass
    with tracer.span("batch", category="scheduler", clock=clock, pattern="DEL MOD"):
        pass
    tracer.event("arm", category="cli", arm="tango")
    path = str(tmp_path / "run.jsonl")
    write_jsonl(tracer.events, path)
    return path


def test_summary_subcommand(trace_file):
    out = io.StringIO()
    assert main(["summary", trace_file], out=out) == 0
    text = out.getvalue()
    assert "events         : 3" in text
    assert "scheduler/batch" in text
    assert "x2" in text
    assert "DEL MOD: 2" in text
    assert "cli/arm: 1" in text


def test_chrome_subcommand_default_output(trace_file, tmp_path):
    out = io.StringIO()
    assert main(["chrome", trace_file], out=out) == 0
    produced = tmp_path / "run.chrome.json"
    assert produced.exists()
    doc = json.loads(produced.read_text())
    assert any(r.get("ph") == "X" for r in doc["traceEvents"])
    assert str(produced) in out.getvalue()


def test_chrome_subcommand_explicit_output(trace_file, tmp_path):
    target = str(tmp_path / "explicit.json")
    assert main(["chrome", trace_file, "-o", target], out=io.StringIO()) == 0
    assert json.loads(open(target).read())["displayTimeUnit"] == "ms"


def test_missing_trace_file_errors(tmp_path):
    assert main(["summary", str(tmp_path / "nope.jsonl")], out=io.StringIO()) == 1


def test_missing_subcommand_rejected():
    with pytest.raises(SystemExit):
        main([], out=io.StringIO())
