"""The paper's Figure 7 / Algorithm 3 worked example.

Section 6 walks through one scheduling round: the current independent
set holds one deletion, one modification, and two additions; pattern 1
(``DEL MOD ASCEND_ADD``) scores -91 = -(10*1 + 1*1 + 20*2^2), pattern 2
(descending adds, weight 40) scores -171, so the scheduler picks pattern
1 and issues the four requests deletions-first with the additions in
ascending priority -- the order "I, H, E, A" in the paper's notation.
"""

import pytest

from repro.core.patterns import default_rewrite_patterns
from repro.core.requests import RequestDag
from repro.core.scheduler import BasicTangoScheduler, NetworkExecutor, count_commands
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _switch(name):
    return SimulatedSwitch(
        name=name,
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=1.0,
            shift_ms=0.01,
            priority_group_ms=0.0,
            mod_ms=0.5,
            del_ms=0.4,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


@pytest.fixture
def figure7():
    """A multi-switch DAG shaped like Figure 7's first round.

    Independent set: I (S1 DEL), H (S1 MOD), E (S1 ADD p1244),
    A (S1 ADD p1334).  Dependents across S1/S2/S4 unlock afterwards.
    """
    dag = RequestDag()
    requests = {}
    requests["I"] = dag.new_request("s1", FlowModCommand.DELETE, _match(1), priority=2001)
    requests["H"] = dag.new_request("s1", FlowModCommand.MODIFY, _match(2), priority=2330)
    requests["E"] = dag.new_request("s1", FlowModCommand.ADD, _match(3), priority=1244)
    requests["A"] = dag.new_request("s1", FlowModCommand.ADD, _match(4), priority=1334)
    requests["B"] = dag.new_request(
        "s1", FlowModCommand.ADD, _match(5), priority=2345, after=[requests["I"]]
    )
    requests["C"] = dag.new_request(
        "s2", FlowModCommand.MODIFY, _match(6), priority=2334, after=[requests["A"]]
    )
    requests["F"] = dag.new_request(
        "s1", FlowModCommand.DELETE, _match(7), priority=1070, after=[requests["E"]]
    )
    requests["G"] = dag.new_request(
        "s4", FlowModCommand.MODIFY, _match(8), priority=2330, after=[requests["H"]]
    )
    requests["J"] = dag.new_request(
        "s1", FlowModCommand.ADD, _match(9), priority=2350, after=[requests["I"]]
    )
    return dag, requests


def test_pattern_scores_match_paper_arithmetic(figure7):
    dag, requests = figure7
    independent = dag.independent_requests()
    counts = count_commands(independent)
    assert counts == {
        FlowModCommand.DELETE: 1,
        FlowModCommand.MODIFY: 1,
        FlowModCommand.ADD: 2,
    }
    ascending, descending = default_rewrite_patterns()
    assert ascending.score_counts(counts) == -91
    assert descending.score_counts(counts) == -171


def test_first_round_issue_order_is_i_h_e_a(figure7):
    dag, requests = figure7
    executor = NetworkExecutor(
        {name: ControlChannel(_switch(name)) for name in ("s1", "s2", "s4")}
    )
    result = BasicTangoScheduler(executor).schedule(dag)
    first_round = [r.request.request_id for r in result.records[:4]]
    expected = [requests[k].request_id for k in ("I", "H", "E", "A")]
    assert first_round == expected
    assert result.pattern_choices[0] == "DEL MOD ASCEND_ADD"


def test_all_nine_requests_complete_respecting_dependencies(figure7):
    dag, requests = figure7
    executor = NetworkExecutor(
        {name: ControlChannel(_switch(name)) for name in ("s1", "s2", "s4")}
    )
    result = BasicTangoScheduler(executor).schedule(dag)
    assert result.total_requests == 9
    finish = {r.request.request_id: r.finished_ms for r in result.records}
    start = {r.request.request_id: r.started_ms for r in result.records}
    for parent_key, child_key in (("I", "B"), ("A", "C"), ("E", "F"), ("H", "G"), ("I", "J")):
        assert start[requests[child_key].request_id] >= finish[requests[parent_key].request_id]
