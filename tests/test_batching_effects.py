"""Tests for same-command batching discounts."""

import dataclasses

import pytest

from repro.baselines import RandomOrderScheduler
from repro.core.requests import RequestDag
from repro.core.scheduler import BasicTangoScheduler, NetworkExecutor
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _switch(discount=0.5):
    return SimulatedSwitch(
        name="batch",
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=1.0,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=1.0,
            del_ms=1.0,
            batch_discount=discount,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def test_discount_validated():
    with pytest.raises(ValueError):
        ControlCostModel(
            add_base_ms=1, shift_ms=0, priority_group_ms=0, mod_ms=1, del_ms=1,
            batch_discount=0.0,
        )
    with pytest.raises(ValueError):
        ControlCostModel(
            add_base_ms=1, shift_ms=0, priority_group_ms=0, mod_ms=1, del_ms=1,
            batch_discount=1.5,
        )


def test_streak_costs_less_than_alternation():
    streaky = _switch()
    for i in range(4):
        streaky.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(i), 1))
    for i in range(4):
        streaky.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, _match(i), actions=())
        )
    streak_time = streaky.clock.now_ms

    alternating = _switch()
    for i in range(4):
        alternating.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(i), 1))
        alternating.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, _match(i), actions=())
        )
    assert streak_time < alternating.clock.now_ms


def test_first_op_of_each_streak_pays_full_price():
    switch = _switch(discount=0.5)
    switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(1), 1))
    assert switch.clock.now_ms == pytest.approx(1.0)
    switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(2), 1))
    assert switch.clock.now_ms == pytest.approx(1.5)
    switch.apply_flow_mod(FlowMod(FlowModCommand.MODIFY, _match(1), 1))
    assert switch.clock.now_ms == pytest.approx(2.5)  # streak broken


def test_unit_discount_is_noop():
    switch = _switch(discount=1.0)
    for i in range(3):
        switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(i), 1))
    assert switch.clock.now_ms == pytest.approx(3.0)


def test_reset_rules_resets_streak():
    switch = _switch(discount=0.5)
    switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(1), 1))
    switch.reset_rules()
    switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(2), 1))
    assert switch.clock.now_ms == pytest.approx(2.0)  # both full price


def test_tango_type_grouping_exploits_batching():
    """Grouping by command type creates streaks; random order breaks them."""

    def run(scheduler_factory, seed):
        switch = _switch(discount=0.5)
        switch.name = "sw"
        executor = NetworkExecutor({"sw": ControlChannel(switch, rtt=ConstantLatency(0.0))})
        dag = RequestDag()
        for i in range(30):
            dag.new_request("sw", FlowModCommand.ADD, _match(i), priority=100)
        for i in range(30):
            dag.new_request(
                "sw", FlowModCommand.MODIFY, _match(i), priority=100
            )
        return scheduler_factory(executor).schedule(dag).makespan_ms

    tango = run(lambda ex: BasicTangoScheduler(ex), seed=1)
    random_order = run(lambda ex: RandomOrderScheduler(ex, seed=3), seed=1)
    assert tango < random_order
