"""Tests for Algorithm 2 (cache-policy inference)."""

import pytest

from repro.core.policy_inference import PolicyProber
from repro.core.probing import ProbingEngine
from repro.openflow.channel import ControlChannel
from repro.sim.rng import SeededRng
from repro.switches.profiles import make_cache_test_profile
from repro.tables.entry import FlowAttribute
from repro.tables.policies import (
    FIFO,
    LIFO,
    LFU,
    LRU,
    PRIORITY_CACHE,
    PRIORITY_THEN_LRU,
    TRAFFIC_THEN_PRIORITY,
    Direction,
)

CACHE = 64


def _probe(policy, seed=7, cache_size=CACHE):
    profile = make_cache_test_profile(
        policy, (cache_size, 2 * cache_size, None), layer_means_ms=(0.5, 2.5, 4.8)
    )
    switch = profile.build(seed=seed)
    engine = ProbingEngine(ControlChannel(switch), rng=SeededRng(seed).child(policy.name))
    return PolicyProber(engine, cache_size=cache_size).probe()


def test_cache_size_too_small_rejected(small_engine):
    with pytest.raises(ValueError):
        PolicyProber(small_engine, cache_size=4)


def test_fifo_detected():
    result = _probe(FIFO)
    assert result.terms[0] == (FlowAttribute.INSERTION, Direction.DECREASING)
    assert result.rounds == 1  # serial attribute terminates immediately


def test_lifo_detected():
    result = _probe(LIFO)
    assert result.terms[0] == (FlowAttribute.INSERTION, Direction.INCREASING)


def test_lru_detected():
    result = _probe(LRU)
    assert result.terms[0] == (FlowAttribute.USE_TIME, Direction.INCREASING)
    assert result.rounds == 1


def test_lfu_primary_detected():
    result = _probe(LFU)
    assert result.terms[0] == (FlowAttribute.TRAFFIC, Direction.INCREASING)


def test_priority_cache_detected():
    result = _probe(PRIORITY_CACHE)
    assert result.terms[0] == (FlowAttribute.PRIORITY, Direction.INCREASING)


def test_lexicographic_traffic_then_priority():
    result = _probe(TRAFFIC_THEN_PRIORITY)
    assert result.terms[0] == (FlowAttribute.TRAFFIC, Direction.INCREASING)
    assert result.terms[1] == (FlowAttribute.PRIORITY, Direction.INCREASING)


def test_lexicographic_priority_then_lru():
    result = _probe(PRIORITY_THEN_LRU)
    assert result.terms[0] == (FlowAttribute.PRIORITY, Direction.INCREASING)
    assert result.terms[1] == (FlowAttribute.USE_TIME, Direction.INCREASING)
    # Use time is serial, so the probe must stop there.
    assert len(result.terms) == 2


def test_terms_unique_attributes():
    result = _probe(TRAFFIC_THEN_PRIORITY)
    attributes = [a for a, _ in result.terms]
    assert len(set(attributes)) == len(attributes)


def test_correlations_recorded_per_round():
    result = _probe(LFU)
    assert len(result.correlations) == result.rounds
    # Round 1 correlates raw attributes; traffic must dominate.
    first = result.correlations[0]
    assert abs(first["traffic"]) > 0.9


def test_as_policy_roundtrip():
    result = _probe(LRU)
    policy = result.as_policy(name="probed")
    assert policy.primary is FlowAttribute.USE_TIME
    assert policy.name == "probed"


def test_probe_cleans_up_flows():
    profile = make_cache_test_profile(FIFO, (32, 64, None), layer_means_ms=(0.5, 2.5, 4.8))
    switch = profile.build(seed=5)
    engine = ProbingEngine(ControlChannel(switch), rng=SeededRng(5).child("x"))
    PolicyProber(engine, cache_size=32).probe()
    assert switch.num_flows == 0


def test_different_seeds_agree():
    """Policy inference must be robust to the probing RNG."""
    for seed in (1, 2, 3):
        result = _probe(LRU, seed=seed)
        assert result.terms[0] == (FlowAttribute.USE_TIME, Direction.INCREASING)
