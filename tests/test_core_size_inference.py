"""Tests for Algorithm 1 (flow-table size inference)."""

import pytest

from repro.core.probing import ProbingEngine
from repro.core.size_inference import SizeProber
from repro.openflow.channel import ControlChannel
from repro.sim.rng import SeededRng
from repro.switches.profiles import SWITCH_2, SWITCH_3, make_cache_test_profile
from repro.tables.policies import FIFO, LFU, LRU, PRIORITY_CACHE


def _prober(profile, seed=1, **kwargs):
    switch = profile.build(seed=seed)
    engine = ProbingEngine(ControlChannel(switch), rng=SeededRng(seed).child("size"))
    return SizeProber(engine, **kwargs)


def test_validation():
    engine = _prober(make_cache_test_profile(FIFO, (8, None), layer_means_ms=(0.5, 3.0))).engine
    with pytest.raises(ValueError):
        SizeProber(engine, trials_per_level=0)
    with pytest.raises(ValueError):
        SizeProber(engine, max_rules=0)
    with pytest.raises(ValueError):
        SizeProber(engine, accuracy_target=1.5)


def test_bounded_single_layer_exact():
    """A TCAM-only switch: rejection reveals the exact size."""
    prober = _prober(SWITCH_3, max_rules=2000)
    result = prober.probe()
    assert result.cache_full
    assert result.num_layers == 1
    assert result.layers[0].estimated_size == 767


def test_switch2_exact():
    prober = _prober(SWITCH_2, max_rules=4096)
    result = prober.probe()
    assert result.cache_full
    assert result.layers[0].estimated_size == 2560


def test_unbounded_switch_reports_unbounded_tail():
    profile = make_cache_test_profile(FIFO, (64, None), layer_means_ms=(0.5, 3.0))
    result = _prober(profile, max_rules=256).probe()
    assert not result.cache_full
    assert result.num_layers == 2
    assert result.layers[-1].estimated_size is None


@pytest.mark.parametrize("policy", [FIFO, LRU, LFU, PRIORITY_CACHE], ids=lambda p: p.name)
def test_two_level_accuracy_within_5_percent(policy):
    """The paper's headline: estimates within 5% of actual sizes."""
    profile = make_cache_test_profile(policy, (64, None), layer_means_ms=(0.5, 3.0))
    result = _prober(profile, max_rules=256, accuracy_target=0.02).probe()
    estimate = result.layers[0].estimated_size
    assert estimate is not None
    assert abs(estimate - 64) / 64 <= 0.05


def test_three_level_estimates_all_layers():
    profile = make_cache_test_profile(FIFO, (32, 64, None), layer_means_ms=(0.5, 2.5, 4.8))
    result = _prober(profile, max_rules=256, accuracy_target=0.03).probe()
    assert result.num_layers == 3
    assert abs(result.layers[0].estimated_size - 32) <= 4
    assert abs(result.layers[1].estimated_size - 64) <= 7
    assert result.layers[2].estimated_size is None


def test_bounded_two_level_last_layer_from_remainder():
    profile = make_cache_test_profile(FIFO, (16, 48), layer_means_ms=(0.5, 3.0))
    result = _prober(profile, max_rules=256, accuracy_target=0.03).probe()
    assert result.cache_full
    assert result.total_rules_installed == 64
    assert sum(l.estimated_size for l in result.layers) == 64
    assert abs(result.layers[0].estimated_size - 16) <= 2


def test_probe_cost_is_linear():
    """Asymptotic optimality: packets O(n), installs n (+1 rejected)."""
    profile = make_cache_test_profile(FIFO, (64, None), layer_means_ms=(0.5, 3.0))
    prober = _prober(profile, max_rules=512, accuracy_target=0.05)
    result = prober.probe()
    assert result.rules_sent <= 513
    assert result.packets_sent <= prober.packet_budget_factor * 512 + 3 * 512


def test_result_stored_in_score_db():
    prober = _prober(SWITCH_3, max_rules=1024)
    result = prober.probe()
    stored = prober.engine.scores.get("switch3", "size_probe")
    assert stored is result


def test_doubling_batches_fill():
    profile = make_cache_test_profile(FIFO, (16, None), layer_means_ms=(0.5, 3.0))
    prober = _prober(profile, max_rules=64, initial_batch=4)
    result = prober.probe()
    assert result.total_rules_installed == 64
    assert not result.cache_full
