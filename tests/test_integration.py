"""End-to-end integration tests reproducing the paper's headline results
at reduced scale (full scale runs live in benchmarks/)."""

import pytest

from repro.baselines import DionysusScheduler, RandomOrderScheduler
from repro.core.api import Tango
from repro.core.inference import SwitchInferenceEngine
from repro.core.patterns import make_type_only_pattern
from repro.core.priorities import (
    assign_r_priorities,
    assign_topological_priorities,
    enforce_topological_priorities,
)
from repro.core.requests import RequestDag
from repro.core.scheduler import BasicTangoScheduler
from repro.netem.network import EmulatedNetwork
from repro.netem.scenarios import LinkFailureScenario, TrafficEngineeringScenario
from repro.netem.topology import triangle_topology
from repro.openflow.messages import FlowModCommand
from repro.switches.profiles import SWITCH_1, SWITCH_3, make_cache_test_profile
from repro.tables.policies import LRU
from repro.workloads.classbench import ClassbenchLikeGenerator


def test_full_inference_pipeline_on_multilevel_switch():
    """Size, policy, and latency curves inferred in one pass."""
    profile = make_cache_test_profile(LRU, (48, 96, None), layer_means_ms=(0.5, 2.5, 4.8))
    engine = SwitchInferenceEngine(
        profile, seed=3, size_probe_max_rules=512, latency_batch_sizes=(40, 80)
    )
    model = engine.infer()
    assert abs(model.layer_sizes[0] - 48) <= 3
    assert abs(model.layer_sizes[1] - 96) <= 6
    assert model.layer_sizes[2] is None
    assert model.policy_probe.terms[0][0].value == "usage_time"
    assert model.latency_curves
    estimator = model.duration_estimator()
    dag = RequestDag()
    request = dag.new_request("x", FlowModCommand.ADD, _unique_match(1))
    assert estimator(request) > 0


def _unique_match(i):
    from repro.openflow.match import IpPrefix, Match

    return Match(eth_type=0x0800, ip_dst=IpPrefix(0x0D000000 + i, 32))


def _single_switch_dag(ruleset, priorities):
    dag = RequestDag()
    requests = {}
    for index, rule in enumerate(ruleset.rules):
        requests[index] = dag.new_request(
            "sw", FlowModCommand.ADD, rule, priority=priorities[index]
        )
    for u, v in ruleset.dependencies.edges():
        dag.add_dependency(requests[u], requests[v])
    return dag


def test_topo_priorities_with_tango_beat_r_priorities_random():
    """Figure 9 shape: Topo+optimal wins over R+random on hardware."""
    ruleset = ClassbenchLikeGenerator(n_rules=150, depth=20, seed=7).generate()
    topo = assign_topological_priorities(ruleset.dependencies)
    r = assign_r_priorities(ruleset.dependencies)

    def run(priorities, scheduler_factory):
        switch = SWITCH_1.build(seed=11)
        switch.name = "sw"
        from repro.core.scheduler import NetworkExecutor
        from repro.openflow.channel import ControlChannel

        executor = NetworkExecutor({"sw": ControlChannel(switch)})
        dag = _single_switch_dag(ruleset, priorities)
        return scheduler_factory(executor).schedule(dag).makespan_ms

    topo_tango = run(topo, lambda ex: BasicTangoScheduler(ex))
    r_random = run(r, lambda ex: RandomOrderScheduler(ex, seed=1))
    assert topo_tango < r_random


def test_link_failure_tango_priority_beats_dionysus():
    """Figure 10 LF shape: Type+Priority wins big; Type-only ties."""

    def build_network():
        network = EmulatedNetwork(
            triangle_topology(),
            default_profile=SWITCH_1,
            profiles={"s3": SWITCH_3},
            seed=3,
        )
        from repro.sim.rng import SeededRng

        rng = SeededRng(5).child("flows")
        for _ in range(300):
            network.new_flow("s1", "s2", priority=rng.randint(1, 2000))
        network.preinstall_flow_rules()
        return network

    def run(factory):
        network = build_network()
        result = LinkFailureScenario(network, ("s1", "s2")).build_dag()
        return factory(network.executor()).schedule(result.dag).makespan_ms

    dionysus = run(lambda ex: DionysusScheduler(ex))
    type_only = run(
        lambda ex: BasicTangoScheduler(ex, patterns=[make_type_only_pattern()])
    )
    type_priority = run(lambda ex: BasicTangoScheduler(ex))
    assert type_priority < 0.6 * dionysus  # paper: ~70% reduction
    assert abs(type_only - dionysus) < 0.35 * dionysus  # paper: ~0%


def test_priority_enforcement_beats_priority_sorting():
    """Figure 11 shape: enforcement > sorting > Dionysus for add-heavy DAGs."""

    def build():
        network = EmulatedNetwork(
            triangle_topology(), default_profile=SWITCH_1, seed=4
        )
        scenario = TrafficEngineeringScenario(network, seed=6)
        result = scenario.random_mix(300, mix=(1.0, 0.0, 0.0), dag_levels=1)
        return network, result

    network, result = build()
    dionysus = DionysusScheduler(network.executor()).schedule(result.dag).makespan_ms

    network, result = build()
    sorting = BasicTangoScheduler(network.executor()).schedule(result.dag).makespan_ms

    network, result = build()
    enforced_dag = enforce_topological_priorities(result.dag)
    enforcement = (
        BasicTangoScheduler(network.executor()).schedule(enforced_dag).makespan_ms
    )

    assert sorting < dionysus
    assert enforcement < sorting


def test_tango_facade_network_roundtrip():
    """Register switches, schedule a two-switch dependent DAG."""
    tango = Tango(seed=9)
    tango.register_profile(SWITCH_1, name="hw1")
    tango.register_profile(SWITCH_3, name="hw3")
    dag = RequestDag()
    parent = dag.new_request("hw3", FlowModCommand.ADD, _unique_match(1), priority=5)
    dag.new_request("hw1", FlowModCommand.MODIFY, _unique_match(1), priority=5, after=[parent])
    result = tango.schedule(dag)
    assert result.total_requests == 2
    assert result.deadline_misses == 0
