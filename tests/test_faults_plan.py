"""Fault plans and retry policies (repro.faults.plan / repro.faults.retry)."""

import pytest

from repro.faults import (
    DEFAULT_RETRY_POLICY,
    DisconnectWindow,
    FaultPlan,
    RetryGiveUpError,
    RetryPolicy,
    StallWindow,
    TRANSIENT_FAULTS,
)
from repro.openflow.errors import (
    ControlMessageLostError,
    FlowModRejectedError,
    SwitchDisconnectedError,
    TableFullError,
    TransientFaultError,
)
from repro.sim.rng import SeededRng


# -- plan validation ----------------------------------------------------------
def test_default_plan_is_noop():
    plan = FaultPlan()
    assert plan.is_noop()
    assert not plan.uses_randomness()


def test_probabilities_must_stay_below_one():
    with pytest.raises(ValueError):
        FaultPlan(loss_probability=1.0)
    with pytest.raises(ValueError):
        FaultPlan(reject_probability=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(probe_loss_probability=1.5)


def test_detect_delays_must_be_positive():
    with pytest.raises(ValueError):
        FaultPlan(loss_detect_ms=0.0)
    with pytest.raises(ValueError):
        FaultPlan(reject_detect_ms=-1.0)


def test_window_validation():
    with pytest.raises(ValueError):
        StallWindow(start_ms=0.0, duration_ms=0.0, extra_ms=1.0)
    with pytest.raises(ValueError):
        StallWindow(start_ms=0.0, duration_ms=5.0, extra_ms=-1.0)
    with pytest.raises(ValueError):
        DisconnectWindow(start_ms=10.0, reconnect_at_ms=10.0)


def test_windows_make_plan_non_noop_without_randomness():
    plan = FaultPlan(disconnects=(DisconnectWindow(1.0, 2.0),))
    assert not plan.is_noop()
    assert not plan.uses_randomness()


# -- window queries -----------------------------------------------------------
def test_stall_extra_sums_active_windows_only():
    plan = FaultPlan(
        stalls=(
            StallWindow(0.0, 10.0, 2.0),
            StallWindow(5.0, 10.0, 3.0, switch="a"),
            StallWindow(5.0, 10.0, 7.0, switch="b"),
        )
    )
    assert plan.stall_extra_ms(6.0, "a") == 5.0  # global + a-specific
    assert plan.stall_extra_ms(6.0, "b") == 9.0
    assert plan.stall_extra_ms(12.0, "a") == 3.0  # global window over
    assert plan.stall_extra_ms(20.0, "a") == 0.0


def test_disconnected_until_is_latest_reconnect():
    plan = FaultPlan(
        disconnects=(
            DisconnectWindow(0.0, 10.0),
            DisconnectWindow(5.0, 30.0, switch="a"),
        )
    )
    assert plan.disconnected_until(6.0, "a") == 30.0
    assert plan.disconnected_until(6.0, "b") == 10.0
    assert plan.disconnected_until(15.0, "b") is None
    # Half-open: the window ends exactly at reconnect_at_ms.
    assert plan.disconnected_until(10.0, "b") is None


def test_plan_to_dict_round_trips_fields():
    plan = FaultPlan(
        seed=3,
        loss_probability=0.1,
        stalls=(StallWindow(1.0, 2.0, 3.0, switch="s"),),
        disconnects=(DisconnectWindow(4.0, 5.0),),
    )
    doc = plan.to_dict()
    assert doc["seed"] == 3
    assert doc["loss_probability"] == 0.1
    assert doc["stalls"][0]["switch"] == "s"
    assert doc["disconnects"][0]["reconnect_at_ms"] == 5.0


# -- error taxonomy -----------------------------------------------------------
def test_transient_fault_taxonomy():
    assert issubclass(ControlMessageLostError, TransientFaultError)
    assert issubclass(FlowModRejectedError, TransientFaultError)
    assert issubclass(SwitchDisconnectedError, TransientFaultError)
    # TableFullError is Algorithm 1's stop signal: never retryable.
    assert not issubclass(TableFullError, TRANSIENT_FAULTS)


def test_disconnect_error_carries_reconnect_time():
    error = SwitchDisconnectedError("s1", 42.0)
    assert error.switch == "s1"
    assert error.retry_at_ms == 42.0


# -- retry policy -------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_fraction=2.0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_ms=0.0)


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(
        backoff_base_ms=2.0, backoff_factor=3.0, backoff_max_ms=10.0,
        jitter_fraction=0.0,
    )
    assert policy.backoff_ms(1) == 2.0
    assert policy.backoff_ms(2) == 6.0
    assert policy.backoff_ms(3) == 10.0  # capped, not 18
    with pytest.raises(ValueError):
        policy.backoff_ms(0)


def test_backoff_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(backoff_base_ms=10.0, jitter_fraction=0.5)
    a = policy.backoff_ms(1, SeededRng(5).child("retry"))
    b = policy.backoff_ms(1, SeededRng(5).child("retry"))
    assert a == b  # same stream state -> same jitter
    assert 10.0 <= a <= 15.0


def test_backoff_without_rng_draws_nothing():
    policy = RetryPolicy(backoff_base_ms=4.0, jitter_fraction=0.5)
    assert policy.backoff_ms(1) == 4.0


def test_exhausted_by_attempts_and_timeout():
    policy = RetryPolicy(max_attempts=3, timeout_ms=100.0)
    assert not policy.exhausted(2, 50.0)
    assert policy.exhausted(3, 0.0)
    assert policy.exhausted(1, 100.0)
    assert DEFAULT_RETRY_POLICY.exhausted(DEFAULT_RETRY_POLICY.max_attempts, 0.0)


def test_give_up_error_preserves_last_fault():
    fault = ControlMessageLostError("flow_mod")
    error = RetryGiveUpError("install", 4, fault)
    assert error.attempts == 4
    assert error.last_fault is fault
    assert "install" in str(error)
