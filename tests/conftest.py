"""Shared fixtures for the Tango reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.probing import ProbingEngine
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.sim.rng import SeededRng
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import FIFO


@pytest.fixture
def small_switch():
    """A small two-level FIFO cache switch (fast probing in tests)."""
    profile = make_cache_test_profile(FIFO, layer_sizes=(32, 64, None))
    return profile.build(seed=7)


@pytest.fixture
def small_engine(small_switch):
    channel = ControlChannel(small_switch)
    return ProbingEngine(channel, rng=SeededRng(11).child("tests"))


def make_match(index: int, priority_salt: int = 0) -> Match:
    """A unique L3 match for test rules."""
    return Match(eth_type=0x0800, ip_dst=IpPrefix(0x0C00_0000 + index, 32))
