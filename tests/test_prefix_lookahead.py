"""Tests for the recursive prefix-tree lookahead (paper Section 6 ext.)."""

import pytest

from repro.core.requests import RequestDag
from repro.core.scheduler import (
    BasicTangoScheduler,
    NetworkExecutor,
    PrefixTangoScheduler,
)
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _switch(name, add):
    return SimulatedSwitch(
        name=name,
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=add,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=0.5,
            del_ms=0.5,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _executor():
    return NetworkExecutor(
        {
            "a": ControlChannel(_switch("a", add=5.0), rtt=ConstantLatency(0.0)),
            "b": ControlChannel(_switch("b", add=1.0), rtt=ConstantLatency(0.0)),
        }
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def _unlock_dag():
    """One cheap blocker on A unlocks a long run on B; 9 slow peers on A."""
    dag = RequestDag()
    blocker = dag.new_request("a", FlowModCommand.ADD, _match(0), priority=1)
    for i in range(1, 10):
        dag.new_request("a", FlowModCommand.ADD, _match(i), priority=i + 1)
    for i in range(10):
        dag.new_request(
            "b", FlowModCommand.ADD, _match(100 + i), priority=i + 1, after=[blocker]
        )
    return dag, blocker


ESTIMATES = {"a": 5.0, "b": 1.0}


def _prefix_scheduler(depth=2):
    return PrefixTangoScheduler(
        _executor(),
        estimate=lambda r: ESTIMATES[r.location],
        lookahead_depth=depth,
    )


def test_lookahead_depth_validated():
    with pytest.raises(ValueError):
        _prefix_scheduler(depth=0)


def test_lookahead_issues_unlocking_prefix_first():
    dag, blocker = _unlock_dag()
    result = _prefix_scheduler().schedule(dag)
    assert result.total_requests == 20
    assert result.records[0].request.request_id == blocker.request_id
    # The blocker was issued alone, then everything else.
    assert result.rounds >= 2


def test_lookahead_beats_greedy_batching_on_unlock_shape():
    dag, _ = _unlock_dag()
    prefix_result = _prefix_scheduler().schedule(dag)
    dag2, _ = _unlock_dag()
    basic_result = BasicTangoScheduler(_executor()).schedule(dag2)
    assert prefix_result.makespan_ms <= basic_result.makespan_ms


def test_plan_estimates_zero_for_completed_dag():
    dag, _ = _unlock_dag()
    scheduler = _prefix_scheduler()
    all_ids = frozenset(r.request_id for r in dag.requests)
    cost, cut = scheduler._plan(dag.simulation(all_ids), depth=2)
    assert cost == 0.0
    assert cut is None


def test_deeper_lookahead_never_estimates_worse():
    dag, _ = _unlock_dag()
    shallow = _prefix_scheduler(depth=1)
    deep = _prefix_scheduler(depth=3)
    cost_shallow, _ = shallow._plan(dag.simulation(), depth=1)
    cost_deep, _ = deep._plan(dag.simulation(), depth=3)
    assert cost_deep <= cost_shallow + 1e-9


def test_plan_simulation_leaves_cursor_unchanged():
    """_plan explores by complete/undo; the cursor must come back clean."""
    dag, _ = _unlock_dag()
    scheduler = _prefix_scheduler()
    sim = dag.simulation()
    before = sim.ready_ids()
    scheduler._plan(sim, depth=3)
    assert sim.ready_ids() == before


def test_flat_dag_issues_everything_in_one_round():
    dag = RequestDag()
    for i in range(6):
        dag.new_request("a", FlowModCommand.ADD, _match(i), priority=i + 1)
    result = _prefix_scheduler().schedule(dag)
    assert result.rounds == 1
    assert result.total_requests == 6
