"""Differential test for the TangoDB per-switch secondary index.

The index (added with the fleet engine) must stay byte-identical to the
linear scan it replaced under any interleaving of ``put`` (insert and
overwrite) and ``remove`` — the remove path is the one a bug would most
plausibly desynchronise.  Hypothesis drives random interleavings and
compares :meth:`records_for_switch`/:meth:`metrics_for_switch` against a
filter over :meth:`records` (the ground-truth linear scan) after every
operation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scores import TangoScoreDatabase

SWITCHES = ("s1", "s2", "s3")
METRICS = ("size", "latency", "model")
PARAMS = (None, 1, 2)

_operations = st.lists(
    st.tuples(
        st.sampled_from(("put", "remove")),
        st.sampled_from(SWITCHES),
        st.sampled_from(METRICS),
        st.sampled_from(PARAMS),
        st.integers(min_value=0, max_value=99),
    ),
    max_size=60,
)


def _apply(db: TangoScoreDatabase, op) -> None:
    verb, switch, metric, param, value = op
    params = {} if param is None else {"k": param}
    if verb == "put":
        db.put(switch, metric, value, recorded_at_ms=float(value), **params)
    else:
        db.remove(switch, metric, **params)


def _scan_signature(db: TangoScoreDatabase, switch: str):
    """What a linear scan answers: records of one switch, stored order."""
    return tuple(
        (record.key, record.value, record.recorded_at_ms, record.source)
        for record in db.records()
        if record.key.switch == switch
    )


def _index_signature(db: TangoScoreDatabase, switch: str):
    return tuple(
        (record.key, record.value, record.recorded_at_ms, record.source)
        for record in db.records_for_switch(switch)
    )


@settings(max_examples=120, deadline=None)
@given(operations=_operations)
def test_per_switch_index_matches_linear_scan(operations):
    db = TangoScoreDatabase()
    for op in operations:
        _apply(db, op)
        for switch in SWITCHES:
            assert _index_signature(db, switch) == _scan_signature(db, switch)


@settings(max_examples=60, deadline=None)
@given(operations=_operations)
def test_metrics_for_switch_matches_linear_scan(operations):
    db = TangoScoreDatabase()
    for op in operations:
        _apply(db, op)
    for switch in SWITCHES:
        expected = sorted(
            {r.key.metric for r in db.records() if r.key.switch == switch}
        )
        assert db.metrics_for_switch(switch) == expected


@settings(max_examples=60, deadline=None)
@given(operations=_operations)
def test_switches_listing_matches_linear_scan(operations):
    db = TangoScoreDatabase()
    for op in operations:
        _apply(db, op)
    assert db.switches() == sorted({r.key.switch for r in db.records()})


def test_overwrite_keeps_first_insertion_position():
    db = TangoScoreDatabase()
    db.put("s1", "a", 1)
    db.put("s1", "b", 2)
    db.put("s1", "a", 3)  # overwrite must not move the record
    assert [r.value for r in db.records_for_switch("s1")] == [3, 2]
    assert _index_signature(db, "s1") == _scan_signature(db, "s1")


def test_remove_then_reinsert_moves_to_the_back():
    db = TangoScoreDatabase()
    db.put("s1", "a", 1)
    db.put("s1", "b", 2)
    db.remove("s1", "a")
    db.put("s1", "a", 3)  # fresh insert after remove: new position
    assert [r.value for r in db.records_for_switch("s1")] == [2, 3]
    assert _index_signature(db, "s1") == _scan_signature(db, "s1")
