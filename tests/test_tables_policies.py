"""Tests for flow entries and cache policies (ATTRIB/MONOTONE/LEX)."""

import pytest
from hypothesis import given, strategies as st

from repro.openflow.actions import OutputAction
from repro.openflow.match import IpPrefix, Match
from repro.tables.entry import SERIAL_ATTRIBUTES, FlowAttribute, FlowEntry
from repro.tables.policies import (
    CachePolicy,
    Direction,
    FIFO,
    LIFO,
    LFU,
    LRU,
    PRIORITY_CACHE,
    STANDARD_POLICIES,
    TRAFFIC_THEN_PRIORITY,
)


def _entry(entry_id=0, inserted=0.0, used=-1.0, traffic=0, priority=0):
    entry = FlowEntry(
        match=Match(eth_type=0x0800, ip_dst=IpPrefix(entry_id, 32)),
        priority=priority,
        actions=(OutputAction(1),),
        entry_id=entry_id,
        inserted_at_ms=inserted,
    )
    entry.last_used_at_ms = used
    entry.traffic_count = traffic
    return entry


# -- FlowEntry ----------------------------------------------------------------
def test_touch_updates_use_time_and_traffic():
    entry = _entry()
    entry.touch(5.0)
    assert entry.last_used_at_ms == 5.0
    assert entry.traffic_count == 1
    entry.touch(7.0, packets=3)
    assert entry.traffic_count == 4


def test_attribute_values():
    entry = _entry(inserted=1.0, used=2.0, traffic=3, priority=4)
    assert entry.attribute_value(FlowAttribute.INSERTION) == 1.0
    assert entry.attribute_value(FlowAttribute.USE_TIME) == 2.0
    assert entry.attribute_value(FlowAttribute.TRAFFIC) == 3.0
    assert entry.attribute_value(FlowAttribute.PRIORITY) == 4.0


def test_serial_attributes_are_times():
    assert SERIAL_ATTRIBUTES == {FlowAttribute.INSERTION, FlowAttribute.USE_TIME}


# -- CachePolicy ---------------------------------------------------------------
def test_policy_requires_terms():
    with pytest.raises(ValueError):
        CachePolicy(terms=())


def test_policy_rejects_duplicate_attribute():
    with pytest.raises(ValueError):
        CachePolicy(
            terms=(
                (FlowAttribute.TRAFFIC, Direction.INCREASING),
                (FlowAttribute.TRAFFIC, Direction.DECREASING),
            )
        )


def test_fifo_prefers_older_insertions():
    old = _entry(entry_id=0, inserted=1.0)
    new = _entry(entry_id=1, inserted=2.0)
    assert FIFO.score(old) > FIFO.score(new)


def test_lifo_prefers_newer_insertions():
    old = _entry(entry_id=0, inserted=1.0)
    new = _entry(entry_id=1, inserted=2.0)
    assert LIFO.score(new) > LIFO.score(old)


def test_lru_prefers_recently_used():
    stale = _entry(entry_id=0, used=1.0)
    fresh = _entry(entry_id=1, used=9.0)
    assert LRU.score(fresh) > LRU.score(stale)


def test_lfu_prefers_heavy_traffic():
    light = _entry(entry_id=0, traffic=1)
    heavy = _entry(entry_id=1, traffic=100)
    assert LFU.score(heavy) > LFU.score(light)


def test_priority_cache_prefers_high_priority():
    low = _entry(entry_id=0, priority=1)
    high = _entry(entry_id=1, priority=10)
    assert PRIORITY_CACHE.score(high) > PRIORITY_CACHE.score(low)


def test_lexicographic_secondary_breaks_primary_tie():
    a = _entry(entry_id=0, traffic=5, priority=1)
    b = _entry(entry_id=1, traffic=5, priority=9)
    assert TRAFFIC_THEN_PRIORITY.score(b) > TRAFFIC_THEN_PRIORITY.score(a)


def test_lexicographic_primary_dominates_secondary():
    a = _entry(entry_id=0, traffic=9, priority=1)
    b = _entry(entry_id=1, traffic=5, priority=100)
    assert TRAFFIC_THEN_PRIORITY.score(a) > TRAFFIC_THEN_PRIORITY.score(b)


def test_entry_id_makes_ordering_total():
    a = _entry(entry_id=0, inserted=1.0)
    b = _entry(entry_id=1, inserted=1.0)
    assert FIFO.score(a) != FIFO.score(b)


def test_standard_policies_registry():
    assert "FIFO" in STANDARD_POLICIES
    assert STANDARD_POLICIES["LRU"].primary is FlowAttribute.USE_TIME


def test_describe_mentions_direction():
    assert "insertion" in CachePolicy(
        terms=((FlowAttribute.INSERTION, Direction.DECREASING),)
    ).describe()
    assert FIFO.describe() == "FIFO"


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),  # inserted
            st.integers(min_value=0, max_value=1000),  # used
            st.integers(min_value=0, max_value=1000),  # traffic
            st.integers(min_value=0, max_value=100),  # priority
        ),
        min_size=2,
        max_size=20,
    )
)
def test_lex_scores_define_total_order(rows):
    """LEX + entry-id tie-break must order any set of entries strictly."""
    entries = [
        _entry(entry_id=i, inserted=r[0], used=r[1], traffic=r[2], priority=r[3])
        for i, r in enumerate(rows)
    ]
    for policy in STANDARD_POLICIES.values():
        scores = [policy.score(e) for e in entries]
        assert len(set(scores)) == len(scores)
