"""Tests for the probing engine."""

import pytest

from repro.core.patterns import ProbePattern
from repro.core.probing import ProbingEngine, probe_match, probe_packet
from repro.openflow.channel import ControlChannel
from repro.openflow.match import MatchKind
from repro.openflow.messages import FlowModCommand
from repro.sim.rng import SeededRng
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import FIFO


@pytest.fixture
def engine():
    switch = make_cache_test_profile(FIFO, layer_sizes=(8, None), layer_means_ms=(0.5, 3.0)).build(seed=1)
    return ProbingEngine(ControlChannel(switch), rng=SeededRng(3).child("t"))


def test_probe_match_packet_correspondence():
    for kind in MatchKind:
        for index in (0, 7, 500):
            match = probe_match(index, kind)
            packet = probe_packet(index)
            assert match.matches_packet(packet)


def test_probe_matches_are_disjoint():
    a = probe_match(1, MatchKind.L3)
    b = probe_match(2, MatchKind.L3)
    assert not a.overlaps(b)


def test_install_new_flow_tracks_handles(engine):
    handle = engine.install_new_flow(priority=42)
    assert engine.flows == [handle]
    assert handle.priority == 42
    assert engine.channel.switch.num_flows == 1


def test_handles_get_unique_indices(engine):
    first = engine.new_handle()
    second = engine.new_handle()
    assert first.index != second.index
    assert first.match.key() != second.match.key()


def test_send_probe_packet_measures_fast_path(engine):
    handle = engine.install_new_flow()
    rtt = engine.send_probe_packet(handle)
    assert rtt < 1.5  # fast layer + channel


def test_measure_rtt_alias(engine):
    handle = engine.install_new_flow()
    assert engine.measure_rtt(handle) < 1.5


def test_select_random_from_installed(engine):
    handles = [engine.install_new_flow() for _ in range(5)]
    for _ in range(10):
        assert engine.select_random() in handles


def test_remove_all_flows(engine):
    for _ in range(4):
        engine.install_new_flow()
    engine.remove_all_flows()
    assert engine.flows == []
    assert engine.channel.switch.num_flows == 0


def test_apply_pattern_records_scores(engine):
    handle = engine.new_handle()
    pattern = ProbePattern(
        name="demo",
        flow_mods=(handle.flow_mod(FlowModCommand.ADD),),
        traffic=(handle.packet,),
    )
    result = engine.apply_pattern(pattern)
    assert result["install_ms"] > 0
    assert len(result["rtts_ms"]) == 1
    stored = engine.scores.get(engine.switch_name, "pattern_result", pattern="demo")
    assert stored == result


def test_measure_install_time_accumulates(engine):
    handles = [engine.new_handle() for _ in range(3)]
    total = engine.measure_install_time(
        [h.flow_mod(FlowModCommand.ADD) for h in handles]
    )
    assert total > 0
    assert engine.channel.switch.num_flows == 3
