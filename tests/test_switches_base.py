"""Tests for the simulated switch control and data planes."""

import pytest

from repro.openflow.actions import ControllerAction, OutputAction
from repro.openflow.errors import TableFullError
from repro.openflow.match import IpPrefix, Match, PacketFields
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer

COST = ControlCostModel(
    add_base_ms=1.0,
    shift_ms=0.1,
    priority_group_ms=0.5,
    mod_ms=0.3,
    del_ms=0.2,
    jitter_std_frac=0.0,
)


def _switch(capacity=8, unbounded_tail=True):
    layers = [TableLayer("tcam", capacity=capacity)]
    delays = [ConstantLatency(0.5)]
    if unbounded_tail:
        layers.append(TableLayer("sw", capacity=None))
        delays.append(ConstantLatency(3.0))
    return SimulatedSwitch(
        name="test",
        layers=layers,
        policy=FIFO,
        layer_delays=delays,
        control_path_delay=ConstantLatency(8.0),
        cost_model=COST,
        seed=4,
    )


def _add(switch, i, priority=100, actions=(OutputAction(1),)):
    switch.apply_flow_mod(
        FlowMod(
            FlowModCommand.ADD,
            Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32)),
            priority=priority,
            actions=actions,
        )
    )


def test_cost_model_validation():
    with pytest.raises(ValueError):
        ControlCostModel(
            add_base_ms=-1, shift_ms=0, priority_group_ms=0, mod_ms=0, del_ms=0
        )


def test_mismatched_delay_models_rejected():
    with pytest.raises(ValueError):
        SimulatedSwitch(
            name="bad",
            layers=[TableLayer("a", capacity=1)],
            policy=FIFO,
            layer_delays=[],
            control_path_delay=ConstantLatency(1.0),
            cost_model=COST,
        )


# -- control-plane costs -------------------------------------------------------
def test_first_add_pays_base_plus_group():
    switch = _switch()
    _add(switch, 1)
    assert switch.clock.now_ms == pytest.approx(1.0 + 0.5)


def test_same_priority_second_add_skips_group_cost():
    switch = _switch()
    _add(switch, 1, priority=7)
    before = switch.clock.now_ms
    _add(switch, 2, priority=7)
    assert switch.clock.now_ms - before == pytest.approx(1.0)


def test_descending_add_pays_shift_cost():
    switch = _switch()
    for i, priority in enumerate((30, 20, 10)):
        _add(switch, i, priority=priority)
    # Adds shifted 0, 1, 2 entries respectively.
    expected = 3 * (1.0 + 0.5) + 0.1 * (0 + 1 + 2)
    assert switch.clock.now_ms == pytest.approx(expected)
    assert switch.stats.total_shifts == 3


def test_ascending_adds_never_shift():
    switch = _switch()
    for i, priority in enumerate((10, 20, 30)):
        _add(switch, i, priority=priority)
    assert switch.stats.total_shifts == 0


def test_modify_updates_actions_flat_cost():
    switch = _switch()
    _add(switch, 1)
    before = switch.clock.now_ms
    switch.apply_flow_mod(
        FlowMod(
            FlowModCommand.MODIFY,
            Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32)),
            priority=100,
            actions=(OutputAction(9),),
        )
    )
    assert switch.clock.now_ms - before == pytest.approx(0.3)
    entry = switch.tables.lookup_exact(Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32)))
    assert entry.actions == (OutputAction(9),)
    assert switch.stats.mods == 1


def test_modify_of_missing_flow_acts_as_add():
    switch = _switch()
    switch.apply_flow_mod(
        FlowMod(
            FlowModCommand.MODIFY,
            Match(eth_type=0x0800, ip_dst=IpPrefix(5, 32)),
            priority=10,
        )
    )
    assert switch.num_flows == 1
    assert switch.stats.adds == 1
    assert switch.stats.mods == 0


def test_modify_with_new_priority_reranks_shift_model():
    switch = _switch()
    _add(switch, 1, priority=10)
    switch.apply_flow_mod(
        FlowMod(
            FlowModCommand.MODIFY,
            Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32)),
            priority=50,
        )
    )
    entry = switch.tables.lookup_exact(Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32)))
    assert entry.priority == 50
    # Shift model must track the new priority (adding at 40 shifts one).
    assert switch.shift_model.shifts_for_add(40) == 1


def test_delete_removes_and_is_idempotent():
    switch = _switch()
    _add(switch, 1)
    match = Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32))
    switch.apply_flow_mod(FlowMod(FlowModCommand.DELETE, match, actions=()))
    assert switch.num_flows == 0
    before = switch.clock.now_ms
    switch.apply_flow_mod(FlowMod(FlowModCommand.DELETE, match, actions=()))
    assert switch.num_flows == 0
    assert switch.clock.now_ms - before == pytest.approx(0.2)
    assert switch.stats.dels == 1


def test_rejected_add_raises_and_counts():
    switch = _switch(capacity=2, unbounded_tail=False)
    _add(switch, 1)
    _add(switch, 2)
    with pytest.raises(TableFullError):
        _add(switch, 3)
    assert switch.stats.rejected_adds == 1
    assert switch.num_flows == 2


# -- data plane ------------------------------------------------------------------
def test_forward_fast_path_delay():
    switch = _switch()
    _add(switch, 1)
    delay = switch.forward_packet(PacketFields(ip_dst=1))
    assert delay == pytest.approx(0.5)
    assert switch.stats.packets_by_layer == [1, 0]


def test_forward_slow_path_after_overflow():
    switch = _switch(capacity=2)
    for i in range(4):
        _add(switch, i)
    delay = switch.forward_packet(PacketFields(ip_dst=3))
    assert delay == pytest.approx(3.0)
    assert switch.stats.packets_by_layer == [0, 1]


def test_forward_miss_goes_to_controller():
    switch = _switch()
    delay = switch.forward_packet(PacketFields(ip_dst=99))
    assert delay == pytest.approx(8.0)
    assert switch.stats.packets_to_controller == 1


def test_controller_action_punts_even_when_cached():
    switch = _switch()
    _add(switch, 1, actions=(ControllerAction(),))
    delay = switch.forward_packet(PacketFields(ip_dst=1))
    assert delay == pytest.approx(8.0)
    assert switch.stats.packets_to_controller == 1


def test_forwarding_updates_flow_attributes():
    switch = _switch()
    _add(switch, 1)
    switch.forward_packet(PacketFields(ip_dst=1))
    entry = switch.tables.lookup_exact(Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32)))
    assert entry.traffic_count == 1
    assert entry.last_used_at_ms >= 0


def test_layer_of_match_helper():
    switch = _switch(capacity=1)
    _add(switch, 1)
    _add(switch, 2)
    assert switch.layer_of_match(Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32))) == 0
    assert switch.layer_of_match(Match(eth_type=0x0800, ip_dst=IpPrefix(2, 32))) == 1


def test_reset_rules_clears_state():
    switch = _switch()
    _add(switch, 1, priority=5)
    switch.reset_rules()
    assert switch.num_flows == 0
    assert len(switch.shift_model) == 0
    # Priority-group bookkeeping also resets: next add pays the group cost.
    before = switch.clock.now_ms
    _add(switch, 2, priority=5)
    assert switch.clock.now_ms - before == pytest.approx(1.5)


def test_jitter_perturbs_costs():
    cost = ControlCostModel(
        add_base_ms=1.0,
        shift_ms=0.0,
        priority_group_ms=0.0,
        mod_ms=0.3,
        del_ms=0.2,
        jitter_std_frac=0.1,
    )
    switch = SimulatedSwitch(
        name="jitter",
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(8.0),
        cost_model=cost,
        seed=5,
    )
    durations = []
    for i in range(20):
        before = switch.clock.now_ms
        _add(switch, i)
        durations.append(switch.clock.now_ms - before)
    assert len(set(durations)) > 1
    assert all(d >= 0 for d in durations)
