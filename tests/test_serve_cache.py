"""Tests for FDRC-style rule caching (admission, eviction, aggregation)."""

import pytest

from repro.openflow.messages import FlowMod, FlowModCommand
from repro.serve.cache import RuleCacheManager, derive_capacity
from repro.serve.stream import flow_address, flow_match
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import FIFO, LRU


class _Arrival:
    """The minimal item shape ``plan_installs`` consumes."""

    def __init__(self, tenant, destination, priority=1):
        self.match = flow_match(tenant, destination)
        self.priority = priority
        self.flow_key = (tenant, destination)


def _switch(policy=LRU, fast=16):
    return make_cache_test_profile(
        policy, layer_sizes=(fast, None), layer_means_ms=(0.5, 4.8), name="cache-ut"
    ).build(seed=1)


def _apply(manager, ops):
    """Execute a plan directly against the switch (no scheduler)."""
    for op in ops:
        manager.switch.apply_flow_mod(
            FlowMod(
                command=op.command,
                match=op.match,
                priority=op.priority,
                actions=op.actions if op.command is FlowModCommand.ADD else (),
            )
        )


def test_derive_capacity_bounded_and_unbounded():
    bounded = _switch(fast=16)
    kind = flow_match(0, 0).kind
    # fast layer is bounded but the overflow layer is not -> unbounded.
    assert derive_capacity(bounded.tables, kind) is None
    manager = RuleCacheManager(bounded, capacity=16)
    assert manager.capacity == 16


def test_admission_threshold_punts_cold_flows():
    manager = RuleCacheManager(_switch(), capacity=8, admission_threshold=2)
    assert not manager.admit((0, 1), now_ms=0.0)  # first packet-in: punt
    assert manager.stats.punts == 1
    assert manager.admit((0, 1), now_ms=1.0)  # second packet-in: admit
    # The window resets stale counters.
    assert not manager.admit((0, 2), now_ms=10.0)
    assert not manager.admit((0, 2), now_ms=10.0 + manager.admission_window_ms + 1.0)


def test_admission_threshold_one_always_admits():
    manager = RuleCacheManager(_switch(), capacity=8, admission_threshold=1)
    assert manager.admit((0, 1), now_ms=0.0)
    assert manager.stats.punts == 0


def test_plan_installs_coalesces_duplicates():
    manager = RuleCacheManager(_switch(), capacity=8)
    ops = manager.plan_installs([_Arrival(0, 1), _Arrival(0, 1)], now_ms=0.0)
    assert len(ops) == 1 and ops[0].reason == "install"
    assert manager.stats.coalesced == 1
    _apply(manager, ops)
    # Already installed -> coalesced again, no new ops.
    assert manager.plan_installs([_Arrival(0, 1)], now_ms=1.0) == []
    assert manager.stats.coalesced == 2


def test_eviction_respects_policy_ranking():
    manager = RuleCacheManager(
        _switch(policy=LRU, fast=4),
        capacity=4,
        aggregate_min_rules=64,  # effectively disable aggregation
    )
    arrivals = [_Arrival(t, 1) for t in range(4)]  # distinct /28 groups
    _apply(manager, manager.plan_installs(arrivals, now_ms=0.0))
    assert len(manager.switch.tables) == 4
    # Touch three of the four; the untouched one is the LRU victim.
    for t, when in ((0, 10.0), (1, 11.0), (3, 12.0)):
        assert manager.lookup(flow_match(t, 1), priority=1, now_ms=when) is not None
    ops = manager.plan_installs([_Arrival(7, 1)], now_ms=20.0)
    deletes = [op for op in ops if op.command is FlowModCommand.DELETE]
    assert [op.reason for op in deletes] == ["evict"]
    assert deletes[0].match == flow_match(2, 1)  # the never-touched flow
    assert manager.stats.evictions == 1
    _apply(manager, ops)
    assert len(manager.switch.tables) == 4  # budget never overcommitted


def test_inferred_policy_override_drives_eviction():
    # The switch runs LRU but the manager is handed a FIFO policy, as if
    # Algorithm 2 had inferred oldest-inserted retention: FIFO *keeps*
    # the oldest flows, so the newest insertion is the victim.
    manager = RuleCacheManager(
        _switch(policy=LRU, fast=4),
        policy=FIFO,
        capacity=4,
        aggregate_min_rules=64,
    )
    assert not manager._trust_stack_ranking
    for t in range(4):
        _apply(manager, manager.plan_installs([_Arrival(t, 1)], now_ms=float(t)))
    # Touch the newest insert so LRU would evict stale tenant 0 instead;
    # the FIFO override must still pick the newest insertion.
    manager.lookup(flow_match(3, 1), priority=1, now_ms=50.0)
    ops = manager.plan_installs([_Arrival(9, 1)], now_ms=60.0)
    victim = next(op for op in ops if op.reason == "evict")
    assert victim.match == flow_match(3, 1)  # newest insertion goes first


def test_aggregation_folds_compatible_siblings():
    manager = RuleCacheManager(
        _switch(fast=8),
        capacity=8,
        aggregate_prefix_len=28,
        aggregate_min_rules=4,
    )
    # Eight flows of one tenant: destinations 0..7 share one /28 group
    # (tenant<<12 | d for d < 16).
    arrivals = [_Arrival(5, d) for d in range(8)]
    _apply(manager, manager.plan_installs(arrivals, now_ms=0.0))
    assert len(manager.switch.tables) == 8
    ops = manager.plan_installs([_Arrival(5, 9)], now_ms=1.0)
    reasons = [op.reason for op in ops]
    assert reasons.count("aggregate-member") == 8
    assert reasons.count("aggregate") == 1
    assert reasons.count("install") == 1  # the trigger still gets its rule
    assert manager.stats.aggregations == 1
    assert manager.stats.aggregated_rules == 8
    _apply(manager, ops)
    # 8 exact rules folded into one /28 wildcard (+ the new exact rule).
    assert len(manager.switch.tables) == 2
    wildcard = next(
        e for e in manager.switch.tables.entries if e.match.ip_dst.length == 28
    )
    assert wildcard.match.ip_dst.value == flow_address(5, 0) & ~0xF
    # Later flows in the group hit through the wildcard...
    hit = manager.lookup(flow_match(5, 12), priority=1, now_ms=2.0)
    assert hit is not None
    assert manager.stats.wildcard_hits == 1
    # ...and planning coalesces them onto it instead of installing.
    assert manager.plan_installs([_Arrival(5, 13)], now_ms=3.0) == []
    assert manager.stats.coalesced == 1


def test_planned_rejection_when_nothing_evictable():
    manager = RuleCacheManager(_switch(fast=4), capacity=0, aggregate_min_rules=64)
    ops = manager.plan_installs([_Arrival(0, 1)], now_ms=0.0)
    assert ops == []
    assert manager.stats.rejected == 1


def test_expired_entries_and_admission_pruning():
    manager = RuleCacheManager(_switch(), capacity=8, admission_threshold=3)
    _apply(manager, manager.plan_installs([_Arrival(0, 1), _Arrival(0, 2)], 0.0))
    manager.lookup(flow_match(0, 1), priority=1, now_ms=100.0)
    expired = manager.expired_entries(now_ms=150.0, idle_timeout_ms=60.0)
    # (0,2) was never used after insert at ~0; (0,1) was touched at 100.
    assert [e.match for e in expired] == [flow_match(0, 2)]
    assert not manager.admit((9, 9), now_ms=0.0)
    assert manager.prune_admission(now_ms=1000.0) == 1


def test_constructor_validation():
    switch = _switch()
    with pytest.raises(ValueError):
        RuleCacheManager(switch, admission_threshold=0)
    with pytest.raises(ValueError):
        RuleCacheManager(switch, aggregate_prefix_len=32)
    with pytest.raises(ValueError):
        RuleCacheManager(switch, aggregate_min_rules=1)


def test_worst_entries_matches_ranking():
    switch = _switch(policy=LRU, fast=8)
    manager = RuleCacheManager(switch, capacity=8)
    _apply(manager, manager.plan_installs([_Arrival(t, 1) for t in range(5)], 0.0))
    for t, when in ((1, 5.0), (2, 6.0), (3, 7.0), (4, 8.0), (0, 9.0)):
        manager.lookup(flow_match(t, 1), priority=1, now_ms=when)
    worst = switch.tables.worst_entries(2)
    assert [e.match for e in worst] == [flow_match(1, 1), flow_match(2, 1)]
