"""Tests for link propagation latency in topologies and tracing."""

import pytest

from repro.netem.audit import probes_for_flows
from repro.netem.network import EmulatedNetwork
from repro.netem.topology import Topology, b4_topology
from repro.netem.tracing import TraceOutcome, trace_packet
from repro.switches.profiles import OVS_PROFILE


def _line(latency_ms):
    topology = Topology("line")
    for name in ("a", "b", "c"):
        topology.add_switch(name)
    topology.add_link("a", "b", latency_ms=latency_ms)
    topology.add_link("b", "c", latency_ms=latency_ms)
    return topology


def test_link_latency_validated():
    topology = Topology("t")
    topology.add_switch("a")
    topology.add_switch("b")
    with pytest.raises(ValueError):
        topology.add_link("a", "b", latency_ms=-1.0)


def test_link_latency_accessor():
    topology = _line(7.5)
    assert topology.link_latency_ms("a", "b") == 7.5
    assert topology.link_latency_ms("b", "a") == 7.5  # undirected


def test_b4_links_have_wan_latency():
    topology = b4_topology()
    a, b = topology.links[0]
    assert topology.link_latency_ms(a, b) == 10.0


def test_trace_total_includes_link_latency():
    fast_links = EmulatedNetwork(_line(0.0), default_profile=OVS_PROFILE, seed=1)
    slow_links = EmulatedNetwork(_line(10.0), default_profile=OVS_PROFILE, seed=1)
    results = {}
    for label, network in (("fast", fast_links), ("slow", slow_links)):
        flow = network.new_flow("a", "c")
        network.preinstall_flow_rules()
        probe = probes_for_flows(network, [flow])[0]
        trace = trace_packet(network, probe.packet, "a")
        assert trace.outcome is TraceOutcome.DELIVERED
        results[label] = trace.total_delay_ms
    # Two traversed links at 10 ms each.
    assert results["slow"] - results["fast"] == pytest.approx(20.0, abs=1.5)


def test_delivery_hop_has_no_link_delay():
    network = EmulatedNetwork(_line(10.0), default_profile=OVS_PROFILE, seed=1)
    flow = network.new_flow("a", "c")
    network.preinstall_flow_rules()
    probe = probes_for_flows(network, [flow])[0]
    trace = trace_packet(network, probe.packet, "a")
    assert trace.hops[-1].link_ms == 0.0
    assert trace.hops[0].link_ms == 10.0
