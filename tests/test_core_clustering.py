"""Tests for 1-D RTT clustering."""

import pytest
from hypothesis import given, strategies as st

from repro.core.clustering import Cluster, assign_cluster, cluster_1d


def test_empty_input():
    assert cluster_1d([]) == []


def test_single_value():
    clusters = cluster_1d([1.0])
    assert len(clusters) == 1
    assert clusters[0].count == 1
    assert clusters[0].mean_ms == 1.0


def test_two_well_separated_bands():
    values = [0.5, 0.52, 0.48, 4.0, 4.1, 3.9]
    clusters = cluster_1d(values, min_gap_ms=0.5)
    assert len(clusters) == 2
    assert clusters[0].count == 3
    assert clusters[1].count == 3
    assert clusters[0].mean_ms < clusters[1].mean_ms


def test_three_bands_like_figure5():
    """Figure 5 shows fast path 1 / fast path 2 / slow path bands."""
    values = [0.05] * 10 + [0.4] * 10 + [1.2] * 10
    clusters = cluster_1d(values, min_gap_ms=0.2)
    assert len(clusters) == 3


def test_gap_below_threshold_merges():
    values = [1.0, 1.3, 1.6]
    assert len(cluster_1d(values, min_gap_ms=0.5)) == 1


def test_min_cluster_fraction_absorbs_outlier():
    values = [0.5] * 100 + [4.0]  # one stray sample
    clusters = cluster_1d(values, min_gap_ms=0.5, min_cluster_fraction=0.02)
    assert len(clusters) == 1
    assert clusters[0].count == 101


def test_leading_outlier_merges_forward():
    values = [0.01] + [2.0] * 100
    clusters = cluster_1d(values, min_gap_ms=0.5, min_cluster_fraction=0.02)
    assert len(clusters) == 1


def test_cluster_bounds():
    clusters = cluster_1d([1.0, 1.2, 5.0, 5.4], min_gap_ms=1.0)
    assert clusters[0].lo_ms == 1.0
    assert clusters[0].hi_ms == 1.2
    assert clusters[1].lo_ms == 5.0
    assert clusters[1].hi_ms == 5.4


def test_assign_cluster_inside_range():
    clusters = cluster_1d([1.0, 1.2, 5.0, 5.4], min_gap_ms=1.0)
    assert assign_cluster(clusters, 1.1) == 0
    assert assign_cluster(clusters, 5.2) == 1


def test_assign_cluster_with_margin():
    clusters = cluster_1d([1.0, 1.2, 5.0, 5.4], min_gap_ms=1.0)
    assert assign_cluster(clusters, 1.4, margin_ms=0.25) == 0
    assert assign_cluster(clusters, 3.0, margin_ms=0.25) is None


def test_cluster_contains():
    cluster = Cluster(mean_ms=1.0, lo_ms=0.9, hi_ms=1.1, count=5)
    assert cluster.contains(1.0)
    assert not cluster.contains(1.2)
    assert cluster.contains(1.2, margin_ms=0.15)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=200),
    st.floats(min_value=0.01, max_value=5.0),
)
def test_clusters_partition_samples(values, gap):
    clusters = cluster_1d(values, min_gap_ms=gap)
    assert sum(c.count for c in clusters) == len(values)
    means = [c.mean_ms for c in clusters]
    assert means == sorted(means)
    for cluster in clusters:
        assert cluster.lo_ms - 1e-9 <= cluster.mean_ms <= cluster.hi_ms + 1e-9


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=100),
    st.floats(min_value=0.1, max_value=5.0),
)
def test_adjacent_clusters_separated_by_gap(values, gap):
    clusters = cluster_1d(values, min_gap_ms=gap)
    for left, right in zip(clusters, clusters[1:]):
        assert right.lo_ms - left.hi_ms > gap
