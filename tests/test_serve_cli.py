"""Tests for the ``tango-serve`` CLI."""

import io
import json

from repro.serve.cli import main

_FAST = [
    "--arrivals",
    "1200",
    "--tenants",
    "8",
    "--destinations",
    "64",
    "--churn-interval",
    "150",
    "--capacity",
    "48",
    "--admission-threshold",
    "2",
    "--idle-timeout",
    "400",
]


def test_text_output_summarises_the_run():
    out = io.StringIO()
    assert main(_FAST + ["--seed", "5"], out=out) == 0
    text = out.getvalue()
    assert "1200 arrivals" in text
    assert "requests/sec" in text
    assert "install latency" in text
    assert "final occupancy" in text


def test_json_output_is_parseable_and_complete():
    out = io.StringIO()
    assert main(_FAST + ["--json"], out=out) == 0
    payload = json.loads(out.getvalue())
    serve = payload["serve"]
    assert serve["arrivals"] == 1200
    assert serve["cache"]["hits"] > 0
    assert serve["cache"]["punts"] > 0
    assert serve["occupancy"]["total"] <= 48
    assert serve["install_p99_ms"] is not None


def test_verify_determinism_passes():
    out = io.StringIO()
    assert main(_FAST + ["--verify-determinism"], out=out) == 0
    assert "determinism ok" in out.getvalue()


def test_sanitize_reports_zero_findings():
    out = io.StringIO()
    assert main(_FAST + ["--sanitize"], out=out) == 0
    assert "0 finding(s)" in out.getvalue()


def test_infer_runs_with_the_inferred_policy():
    out = io.StringIO()
    args = ["--profile", "switch1", "--arrivals", "800", "--tenants", "8",
            "--destinations", "64", "--churn-interval", "150", "--infer", "--json"]
    assert main(args, out=out) == 0
    payload = json.loads(out.getvalue())
    assert payload["serve"]["arrivals"] == 800


def test_telemetry_files_are_written(tmp_path):
    prefix = tmp_path / "serve"
    out = io.StringIO()
    assert main(_FAST + ["--telemetry", str(prefix)], out=out) == 0
    telemetry = tmp_path / "serve.telemetry.jsonl"
    alerts = tmp_path / "serve.alerts.jsonl"
    assert telemetry.exists() and alerts.exists()
    lines = telemetry.read_text().strip().splitlines()
    assert lines
    sample = json.loads(lines[0])
    assert "t_ms" in sample
    assert str(telemetry) in out.getvalue()


def test_report_file_is_written(tmp_path):
    report = tmp_path / "serve.md"
    out = io.StringIO()
    assert main(_FAST + ["--report", str(report)], out=out) == 0
    text = report.read_text()
    assert text.startswith("# Tango serving report")
    assert "## Sustained serving" in text
