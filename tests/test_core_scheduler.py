"""Tests for the Tango schedulers and the network executor."""

import pytest

from repro.core.patterns import (
    TangoPatternDatabase,
    default_rewrite_patterns,
    make_del_mod_add_pattern,
    make_type_only_pattern,
)
from repro.core.requests import RequestDag
from repro.core.scheduler import (
    BasicTangoScheduler,
    ConcurrentTangoScheduler,
    NetworkExecutor,
    PrefixTangoScheduler,
    count_commands,
)
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _switch(name, add=1.0, mod=0.5, dele=0.25, shift=0.0):
    return SimulatedSwitch(
        name=name,
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=add,
            shift_ms=shift,
            priority_group_ms=0.0,
            mod_ms=mod,
            del_ms=dele,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _executor(*names, **kwargs):
    return NetworkExecutor(
        {name: ControlChannel(_switch(name, **kwargs), rtt=ConstantLatency(0.0)) for name in names}
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


# -- executor ---------------------------------------------------------------------
def test_executor_requires_channels():
    with pytest.raises(ValueError):
        NetworkExecutor({})


def test_executor_aligns_clocks():
    a = _switch("a")
    b = _switch("b")
    a.clock.advance(10.0)
    executor = NetworkExecutor(
        {"a": ControlChannel(a), "b": ControlChannel(b)}
    )
    assert a.clock.now_ms == b.clock.now_ms == executor.epoch_ms


def test_executor_issue_honours_not_before():
    executor = _executor("a")
    dag = RequestDag()
    request = dag.new_request("a", FlowModCommand.ADD, _match(1))
    record = executor.issue(request, not_before_ms=50.0)
    assert record.started_ms == 50.0
    assert record.finished_ms == pytest.approx(51.0)


def test_executor_unknown_switch():
    executor = _executor("a")
    dag = RequestDag()
    request = dag.new_request("nope", FlowModCommand.ADD, _match(1))
    with pytest.raises(KeyError):
        executor.issue(request)


# -- pattern oracle / ordering ---------------------------------------------------------
def test_count_commands():
    dag = RequestDag()
    requests = [
        dag.new_request("a", FlowModCommand.ADD, _match(1)),
        dag.new_request("a", FlowModCommand.ADD, _match(2)),
        dag.new_request("a", FlowModCommand.DELETE, _match(3)),
    ]
    counts = count_commands(requests)
    assert counts[FlowModCommand.ADD] == 2
    assert counts[FlowModCommand.DELETE] == 1


def test_pattern_scores_follow_paper_example():
    """Figure 7 walkthrough: 1 DEL, 1 MOD, 2 ADDs scores -91 / -171."""
    ascending, descending = default_rewrite_patterns()
    counts = {
        FlowModCommand.DELETE: 1,
        FlowModCommand.MODIFY: 1,
        FlowModCommand.ADD: 2,
    }
    assert ascending.score_counts(counts) == -91
    assert descending.score_counts(counts) == -171


def test_basic_scheduler_orders_del_mod_add_ascending():
    executor = _executor("a")
    dag = RequestDag()
    dag.new_request("a", FlowModCommand.ADD, _match(1), priority=5)
    dag.new_request("a", FlowModCommand.DELETE, _match(2))
    dag.new_request("a", FlowModCommand.ADD, _match(3), priority=2)
    dag.new_request("a", FlowModCommand.MODIFY, _match(4))
    result = BasicTangoScheduler(executor).schedule(dag)
    issued = [(r.request.command, r.request.priority) for r in result.records]
    assert issued == [
        (FlowModCommand.DELETE, 0),
        (FlowModCommand.MODIFY, 0),
        (FlowModCommand.ADD, 2),
        (FlowModCommand.ADD, 5),
    ]
    assert result.pattern_choices == ["DEL MOD ASCEND_ADD"]


def test_type_only_pattern_preserves_arrival_order_of_adds():
    executor = _executor("a")
    dag = RequestDag()
    dag.new_request("a", FlowModCommand.ADD, _match(1), priority=5)
    dag.new_request("a", FlowModCommand.ADD, _match(2), priority=2)
    result = BasicTangoScheduler(
        executor, patterns=[make_type_only_pattern()]
    ).schedule(dag)
    priorities = [r.request.priority for r in result.records]
    assert priorities == [5, 2]


def test_scheduler_respects_dependencies():
    executor = _executor("a", "b")
    dag = RequestDag()
    first = dag.new_request("a", FlowModCommand.ADD, _match(1))
    second = dag.new_request("b", FlowModCommand.ADD, _match(2), after=[first])
    result = BasicTangoScheduler(executor).schedule(dag)
    records = {r.request.request_id: r for r in result.records}
    assert records[second.request_id].started_ms >= records[first.request_id].finished_ms


def test_scheduler_parallelises_across_switches():
    executor = _executor("a", "b")
    dag = RequestDag()
    for i in range(10):
        dag.new_request("a" if i % 2 else "b", FlowModCommand.ADD, _match(i))
    result = BasicTangoScheduler(executor).schedule(dag)
    # 5 adds per switch at 1ms each, concurrent -> ~5ms, not ~10ms.
    assert result.makespan_ms == pytest.approx(5.0)


def test_makespan_counts_from_epoch():
    executor = _executor("a")
    executor.channels["a"].clock.advance(100.0)
    executor.reset_epoch()
    dag = RequestDag()
    dag.new_request("a", FlowModCommand.ADD, _match(1))
    result = BasicTangoScheduler(executor).schedule(dag)
    assert result.makespan_ms == pytest.approx(1.0)


def test_deadline_misses_counted():
    executor = _executor("a")
    dag = RequestDag()
    dag.new_request("a", FlowModCommand.ADD, _match(1), install_by_ms=0.5)
    dag.new_request("a", FlowModCommand.ADD, _match(2), install_by_ms=100.0)
    result = BasicTangoScheduler(executor).schedule(dag)
    assert result.deadline_misses == 1


def test_scheduler_runs_multiple_rounds():
    executor = _executor("a")
    dag = RequestDag()
    first = dag.new_request("a", FlowModCommand.ADD, _match(1))
    dag.new_request("a", FlowModCommand.ADD, _match(2), after=[first])
    result = BasicTangoScheduler(executor).schedule(dag)
    assert result.rounds == 2
    assert result.total_requests == 2


def test_ascending_pattern_beats_descending_on_shift_switch():
    def run(patterns):
        executor = _executor("a", shift=0.1)
        dag = RequestDag()
        for i in range(50):
            dag.new_request("a", FlowModCommand.ADD, _match(i), priority=i + 1)
        return BasicTangoScheduler(executor, patterns=patterns).schedule(dag)

    ascending = run([make_del_mod_add_pattern("asc", 20.0, ascending_adds=True)])
    descending = run([make_del_mod_add_pattern("desc", 40.0, ascending_adds=False)])
    assert descending.makespan_ms > 2 * ascending.makespan_ms


# -- prefix scheduler --------------------------------------------------------------
def test_prefix_scheduler_completes_dag():
    executor = _executor("a", "b")
    dag = RequestDag()
    blocker = dag.new_request("a", FlowModCommand.ADD, _match(0))
    for i in range(1, 6):
        dag.new_request("a", FlowModCommand.ADD, _match(i))
    dag.new_request("b", FlowModCommand.ADD, _match(10), after=[blocker])
    result = PrefixTangoScheduler(executor, estimate=lambda r: 1.0).schedule(dag)
    assert result.total_requests == 7


def test_prefix_scheduler_matches_basic_when_no_unlocks():
    dag_a, dag_b = RequestDag(), RequestDag()
    for i in range(6):
        dag_a.new_request("a", FlowModCommand.ADD, _match(i))
        dag_b.new_request("a", FlowModCommand.ADD, _match(i))
    basic = BasicTangoScheduler(_executor("a")).schedule(dag_a)
    prefix = PrefixTangoScheduler(_executor("a"), estimate=lambda r: 1.0).schedule(dag_b)
    assert prefix.makespan_ms == pytest.approx(basic.makespan_ms)


# -- concurrent scheduler --------------------------------------------------------------
def test_concurrent_scheduler_completes_and_orders():
    executor = _executor("a", "b")
    dag = RequestDag()
    first = dag.new_request("a", FlowModCommand.ADD, _match(1))
    dag.new_request("b", FlowModCommand.ADD, _match(2), after=[first])
    result = ConcurrentTangoScheduler(
        executor, estimate=lambda r: 1.0, guard_ms=0.0
    ).schedule(dag)
    assert result.total_requests == 2


def test_concurrent_overlaps_dependent_requests():
    """A slow dependent request starts before its fast parent finishes."""
    executor = NetworkExecutor(
        {
            "fast": ControlChannel(_switch("fast", add=1.0), rtt=ConstantLatency(0.0)),
            "slow": ControlChannel(_switch("slow", add=50.0), rtt=ConstantLatency(0.0)),
        }
    )
    dag = RequestDag()
    parent = dag.new_request("fast", FlowModCommand.ADD, _match(1))
    child = dag.new_request("slow", FlowModCommand.ADD, _match(2), after=[parent])

    estimates = {parent.request_id: 1.0, child.request_id: 50.0}
    result = ConcurrentTangoScheduler(
        executor,
        estimate=lambda r: estimates[r.request_id],
        guard_ms=5.0,
    ).schedule(dag)
    records = {r.request.request_id: r for r in result.records}
    # The child starts while the parent's estimated finish is still ahead.
    assert records[child.request_id].started_ms < records[parent.request_id].finished_ms + 5.0
    # Guard: the child's finish still trails the parent's by >= guard.
    assert (
        records[child.request_id].finished_ms
        >= records[parent.request_id].finished_ms + 5.0 - 1e-6
    )


def test_concurrent_guard_anchors_at_epoch_on_reused_executor():
    """Regression: dep-free requests must anchor guard math at the
    executor's epoch.  With the old ``default=0.0`` a reused executor
    (epoch > 0) silently weakened the guard to a no-op."""
    executor = _executor("a", add=1.0)

    # First schedule advances the switch clock, so the next reset_epoch
    # leaves a strictly positive epoch.
    warmup = RequestDag()
    for i in range(3):
        warmup.new_request("a", FlowModCommand.ADD, _match(100 + i))
    scheduler = ConcurrentTangoScheduler(
        executor, estimate=lambda r: 1.0, guard_ms=50.0
    )
    scheduler.schedule(warmup)

    dag = RequestDag()
    dag.new_request("a", FlowModCommand.ADD, _match(1))
    result = scheduler.schedule(dag)
    # schedule() re-aligned the epoch to the advanced switch clock.
    assert executor.epoch_ms > 0.0
    record = result.records[0]
    # guard_ms=50, estimate=1: the request may not start before
    # epoch + 50 - 1.  The old bug started it at the switch clock.
    assert record.started_ms >= executor.epoch_ms + 50.0 - 1.0 - 1e-6
    # makespan is still measured from the (new) epoch.
    assert result.makespan_ms == pytest.approx(
        record.finished_ms - executor.epoch_ms
    )


def test_count_commands_is_counter_equivalent_to_manual_tally():
    """count_commands now returns a Counter; scoring must be unchanged."""
    dag = RequestDag()
    requests = [
        dag.new_request("a", FlowModCommand.DELETE, _match(1)),
        dag.new_request("a", FlowModCommand.ADD, _match(3)),
        dag.new_request("a", FlowModCommand.ADD, _match(4)),
    ]
    counts = count_commands(requests)
    manual = {}
    for request in requests:
        manual[request.command] = manual.get(request.command, 0) + 1
    assert dict(counts) == manual
    # Missing commands read as 0, like dict.get in the patterns' scoring.
    assert counts[FlowModCommand.MODIFY] == 0
    ascending, descending = default_rewrite_patterns()
    assert ascending.score_counts(counts) == ascending.score_counts(manual)
    assert descending.score_counts(counts) == descending.score_counts(manual)


def test_ordering_oracle_memoizes_per_batch():
    """Re-choosing the same batch hits the cache and returns a private
    copy (mutating the result must not corrupt later answers)."""
    executor = _executor("a")
    scheduler = BasicTangoScheduler(executor)
    dag = RequestDag()
    requests = [
        dag.new_request("a", FlowModCommand.ADD, _match(i), priority=10 - i)
        for i in range(5)
    ]
    oracle = scheduler.oracle
    pattern_a, ordered_a = oracle.choose(requests)
    assert oracle.cache_misses == 1 and oracle.cache_hits == 0
    ordered_a.reverse()  # caller-side mutation
    pattern_b, ordered_b = oracle.choose(requests)
    assert oracle.cache_hits == 1
    assert pattern_b is pattern_a
    assert ordered_b == list(reversed(ordered_a))  # cache unharmed
    # A different batch is a miss, not a stale hit.
    oracle.choose(requests[:3])
    assert oracle.cache_misses == 2


def test_ordering_oracle_cache_hit_returns_callers_requests_across_dags():
    """Request ids restart at 0 in every RequestDag, so a scheduler reused
    across DAGs hits the oracle cache with colliding keys.  The cached
    permutation must be re-applied to the *caller's* requests -- never
    replay request objects from the previous DAG."""
    executor = _executor("a", "b")
    scheduler = BasicTangoScheduler(executor)

    dag1 = RequestDag()
    for i in range(3):
        dag1.new_request("a", FlowModCommand.ADD, _match(i), priority=i)
    scheduler.schedule(dag1)

    # Same (id, command, priority) triples, different switch and matches.
    dag2 = RequestDag()
    expected = [
        dag2.new_request("b", FlowModCommand.ADD, _match(100 + i), priority=i)
        for i in range(3)
    ]
    result = scheduler.schedule(dag2)

    assert scheduler.oracle.cache_hits >= 1  # the collision actually occurred
    issued = [record.request for record in result.records]
    assert sorted(issued, key=lambda r: r.request_id) == expected
    for request in issued:
        assert request.location == "b"
    assert dag2.is_done()


def test_pattern_database_registration():
    db = TangoPatternDatabase()
    assert len(db.rewrite_patterns) == 2
    db.register_rewrite(make_type_only_pattern())
    assert len(db.rewrite_patterns) == 3
    assert db.get_rewrite("DEL MOD ASCEND_ADD") is not None
