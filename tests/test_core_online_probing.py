"""Tests for online probing and drift detection."""

import pytest

from repro.core.inference import SwitchInferenceEngine
from repro.core.online_probing import DriftDetector, OnlineSizeProber
from repro.core.probing import ProbingEngine
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.rng import SeededRng
from repro.switches.profiles import SWITCH_3, make_cache_test_profile
from repro.tables.policies import FIFO


def _production_match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(0x2000_0000 + i, 32))


def _engine_with_production(profile, production, seed=3, priority=5000):
    switch = profile.build(seed=seed)
    channel = ControlChannel(switch)
    for i in range(production):
        channel.send_flow_mod(
            FlowMod(FlowModCommand.ADD, _production_match(i), priority=priority)
        )
    return ProbingEngine(channel, rng=SeededRng(seed).child("online"))


def test_validation():
    engine = _engine_with_production(SWITCH_3, 0)
    with pytest.raises(ValueError):
        OnlineSizeProber(engine, max_probe_rules=0)


def test_bounded_switch_free_and_total_capacity():
    engine = _engine_with_production(SWITCH_3, production=200)
    result = OnlineSizeProber(engine).probe()
    assert result.production_rules == 200
    assert result.free_capacity == 767 - 200
    assert result.total_capacity == 767


def test_probe_leaves_production_rules_untouched():
    engine = _engine_with_production(SWITCH_3, production=100)
    switch = engine.channel.switch
    OnlineSizeProber(engine).probe()
    assert switch.num_flows == 100
    # Every production rule is still findable.
    for i in range(100):
        assert switch.tables.lookup_exact(_production_match(i)) is not None


def test_unbounded_switch_reports_none():
    profile = make_cache_test_profile(FIFO, (32, None), layer_means_ms=(0.5, 3.0))
    engine = _engine_with_production(profile, production=10)
    result = OnlineSizeProber(engine, max_probe_rules=128).probe()
    assert result.free_capacity is None
    assert result.total_capacity is None
    assert result.probe_rules_used == 128


def test_empty_switch_total_equals_offline_capacity():
    engine = _engine_with_production(SWITCH_3, production=0)
    result = OnlineSizeProber(engine).probe()
    assert result.total_capacity == 767


def test_result_stored_in_scores():
    engine = _engine_with_production(SWITCH_3, production=10)
    result = OnlineSizeProber(engine).probe()
    assert engine.scores.get("switch3", "online_size_probe") is result


# -- drift detection --------------------------------------------------------------
def _model_dict(**overrides):
    base = {
        "name": "sw",
        "layers": [{"size": 767, "mean_rtt_ms": 0.6}, {"size": None, "mean_rtt_ms": 3.0}],
        "policy": [{"attribute": "insertion", "direction": "DECREASING"}],
        "behavior": {"traffic_driven_caching": False},
        "latency_curves": {
            "add/ascending": {"linear_ms": 0.5, "quadratic_ms": 0.0},
        },
    }
    base.update(overrides)
    return base


def test_no_drift_between_identical_models():
    detector = DriftDetector()
    assert detector.compare(_model_dict(), _model_dict()) == []


def test_small_size_wobble_is_not_drift():
    detector = DriftDetector(size_tolerance=0.05)
    after = _model_dict(
        layers=[{"size": 750, "mean_rtt_ms": 0.6}, {"size": None, "mean_rtt_ms": 3.0}]
    )
    assert detector.compare(_model_dict(), after) == []


def test_large_size_change_detected():
    detector = DriftDetector()
    after = _model_dict(
        layers=[{"size": 369, "mean_rtt_ms": 0.6}, {"size": None, "mean_rtt_ms": 3.0}]
    )
    findings = detector.compare(_model_dict(), after)
    assert any(f.property_path == "layers[0].size" for f in findings)


def test_layer_count_change_detected():
    detector = DriftDetector()
    after = _model_dict(layers=[{"size": 767, "mean_rtt_ms": 0.6}])
    findings = detector.compare(_model_dict(), after)
    assert any(f.property_path == "layers.count" for f in findings)


def test_bounded_to_unbounded_change_detected():
    detector = DriftDetector()
    after = _model_dict(
        layers=[{"size": None, "mean_rtt_ms": 0.6}, {"size": None, "mean_rtt_ms": 3.0}]
    )
    findings = detector.compare(_model_dict(), after)
    assert any(f.property_path == "layers[0].size" for f in findings)


def test_policy_change_detected():
    detector = DriftDetector()
    after = _model_dict(policy=[{"attribute": "usage_time", "direction": "INCREASING"}])
    findings = detector.compare(_model_dict(), after)
    assert any(f.property_path == "policy" for f in findings)


def test_behavior_change_detected():
    detector = DriftDetector()
    after = _model_dict(behavior={"traffic_driven_caching": True})
    findings = detector.compare(_model_dict(), after)
    assert any("behavior" in f.property_path for f in findings)


def test_latency_regression_detected():
    detector = DriftDetector(latency_tolerance=0.25)
    after = _model_dict(
        latency_curves={"add/ascending": {"linear_ms": 2.0, "quadratic_ms": 0.0}}
    )
    findings = detector.compare(_model_dict(), after)
    assert any("latency_curves" in f.property_path for f in findings)


def test_detector_on_real_probe_outputs():
    """End to end: two probes of the same profile show no drift; probing
    a different profile flags the capacity change."""
    first = SwitchInferenceEngine(
        SWITCH_3, seed=1, size_probe_max_rules=1024, latency_batch_sizes=(50, 100)
    ).infer(include_policy=False)
    second = SwitchInferenceEngine(
        SWITCH_3, seed=2, size_probe_max_rules=1024, latency_batch_sizes=(50, 100)
    ).infer(include_policy=False)
    detector = DriftDetector()
    assert detector.compare(first.to_dict(), second.to_dict()) == []

    from repro.switches.profiles import SWITCH_2

    other = SwitchInferenceEngine(
        SWITCH_2, seed=1, size_probe_max_rules=4096, latency_batch_sizes=(50, 100)
    ).infer(include_policy=False)
    findings = detector.compare(first.to_dict(), other.to_dict())
    assert any("layers[0].size" == f.property_path for f in findings)
