"""Fault-tolerant scheduling: deferral, re-planning, deadline attribution."""

import pytest

from repro.core.requests import RequestDag
from repro.core.scheduler import (
    BasicTangoScheduler,
    ConcurrentTangoScheduler,
    DeadlineAwareTangoScheduler,
    NetworkExecutor,
    PrefixTangoScheduler,
)
from repro.faults import DisconnectWindow, FaultInjector, FaultPlan
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _switch(name, add=1.0):
    return SimulatedSwitch(
        name=name,
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=add,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=0.5,
            del_ms=0.25,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _executor(plan=None, *names, add=1.0):
    names = names or ("sw",)
    channels = {
        name: ControlChannel(_switch(name, add=add), rtt=ConstantLatency(0.0))
        for name in names
    }
    injector = FaultInjector(plan) if plan is not None else None
    executor = NetworkExecutor(channels, fault_injector=injector)
    return executor, injector


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def _chain(n, location="sw", install_by=None):
    dag = RequestDag()
    previous = None
    for i in range(n):
        request = dag.new_request(
            location,
            FlowModCommand.ADD,
            _match(i),
            priority=i + 1,
            after=[previous] if previous is not None else [],
            install_by_ms=install_by,
        )
        previous = request
    return dag


DISCONNECT_PLAN = FaultPlan(disconnects=(DisconnectWindow(0.0, 50.0),))


# -- deferral and re-planning -------------------------------------------------
def test_deferred_request_stays_in_dag_and_completes():
    executor, injector = _executor(DISCONNECT_PLAN)
    dag = _chain(3)
    result = BasicTangoScheduler(executor).schedule(dag)
    assert dag.is_done()
    assert len(result.records) == 3
    # The first request was deferred once by the outage, then retried
    # once the reconnect hold expired.
    assert result.fault_retries >= 1
    assert result.faulted_request_ids
    first = result.records[0]
    assert first.started_ms >= 50.0  # held until the window closed
    assert injector.injection_counts()["disconnects"] == result.fault_retries


def test_deferral_adds_rounds_not_records():
    executor, _ = _executor(DISCONNECT_PLAN)
    dag = _chain(2)
    result = BasicTangoScheduler(executor).schedule(dag)
    # Round 1 deferred request 0; rounds 2-3 issued the chain.
    assert result.rounds >= 2
    ids = [record.request.request_id for record in result.records]
    assert ids == sorted(ids)  # chain order preserved across re-planning


def test_loss_faults_defer_and_eventually_succeed():
    plan = FaultPlan(seed=5, loss_probability=0.4)
    executor, injector = _executor(plan)
    result = BasicTangoScheduler(executor).schedule(_chain(30))
    assert len(result.records) == 30
    assert result.fault_retries == injector.injection_counts()["losses"]
    assert result.fault_retries > 0


def test_fault_deferral_cap_raises():
    plan = FaultPlan(seed=1, loss_probability=0.9)
    executor, _ = _executor(plan)
    scheduler = BasicTangoScheduler(executor)
    scheduler.MAX_FAULT_DEFERRALS = 2
    with pytest.raises(RuntimeError, match="deferred"):
        scheduler.schedule(_chain(1))


def test_zero_fault_plan_reports_no_retries():
    executor, injector = _executor(FaultPlan())
    result = BasicTangoScheduler(executor).schedule(_chain(10))
    assert result.fault_retries == 0
    assert result.faulted_request_ids == set()
    assert all(v == 0 for v in injector.injection_counts().values())


# -- deadline attribution -----------------------------------------------------
def test_deadline_miss_attributed_to_fault():
    executor, _ = _executor(DISCONNECT_PLAN)
    dag = _chain(1, install_by=20.0)  # feasible without the outage
    result = BasicTangoScheduler(executor).schedule(dag)
    assert result.deadline_misses == 1
    assert result.deadline_misses_fault == 1
    assert result.deadline_misses_schedule == 0


def test_deadline_miss_attributed_to_schedule_without_faults():
    executor, _ = _executor(None)
    dag = _chain(6, install_by=2.0)  # ~1 ms per request: the tail must miss
    result = BasicTangoScheduler(executor).schedule(dag)
    assert result.deadline_misses > 0
    assert result.deadline_misses_fault == 0
    assert result.deadline_misses_schedule == result.deadline_misses


# -- every scheduler survives faults ------------------------------------------
def _all_schedulers(executor):
    return [
        BasicTangoScheduler(executor),
        PrefixTangoScheduler(executor, estimate=lambda r: 1.0),
        DeadlineAwareTangoScheduler(executor, estimate=lambda r: 1.0),
        ConcurrentTangoScheduler(executor, estimate=lambda r: 1.0, guard_ms=2.0),
    ]


@pytest.mark.parametrize("index", range(4))
def test_each_scheduler_completes_under_chaos(index):
    plan = FaultPlan(
        seed=13,
        loss_probability=0.15,
        disconnects=(DisconnectWindow(5.0, 40.0),),
    )
    executor, _ = _executor(plan, "a", "b")
    dag = RequestDag()
    previous = None
    for i in range(20):
        request = dag.new_request(
            "a" if i % 2 else "b",
            FlowModCommand.ADD,
            _match(i),
            priority=i + 1,
            after=[previous] if previous is not None and i % 3 == 0 else [],
        )
        previous = request
    scheduler = _all_schedulers(executor)[index]
    result = scheduler.schedule(dag)
    assert dag.is_done()
    assert len(result.records) == 20
    assert result.fault_retries > 0


@pytest.mark.parametrize("index", range(4))
def test_each_scheduler_is_seed_deterministic_under_faults(index):
    plan = FaultPlan(seed=21, loss_probability=0.2)

    def run():
        executor, _ = _executor(plan, "a", "b")
        dag = RequestDag()
        for i in range(25):
            dag.new_request(
                "a" if i % 2 else "b", FlowModCommand.ADD, _match(i), priority=i + 1
            )
        result = _all_schedulers(executor)[index].schedule(dag)
        return (
            result.makespan_ms,
            result.rounds,
            result.fault_retries,
            tuple(
                (r.request.request_id, r.started_ms, r.finished_ms)
                for r in result.records
            ),
        )

    assert run() == run()


# -- concurrent guard under fault re-enqueue ----------------------------------
def test_concurrent_guard_survives_fault_reenqueue():
    """Regression (guard-time anchor audit): a dependent deferred by a
    fault must still respect ``dep_finish + guard`` when retried in a
    later batch — the anchor is recomputed from ``finish_times``, not
    forgotten with the failed attempt."""
    plan = FaultPlan(disconnects=(DisconnectWindow(0.0, 30.0, switch="down"),))
    executor, _ = _executor(plan, "fast", "down")
    dag = RequestDag()
    parent = dag.new_request("fast", FlowModCommand.ADD, _match(1), priority=1)
    child = dag.new_request(
        "down", FlowModCommand.ADD, _match(2), priority=2, after=[parent]
    )
    estimates = {parent.request_id: 1.0, child.request_id: 10.0}
    result = ConcurrentTangoScheduler(
        executor, estimate=lambda r: estimates[r.request_id], guard_ms=5.0
    ).schedule(dag)
    records = {r.request.request_id: r for r in result.records}
    parent_finish = records[parent.request_id].finished_ms
    child_record = records[child.request_id]
    assert child.request_id in result.faulted_request_ids
    assert child_record.started_ms >= 30.0  # held until reconnect
    # Guard invariant survives the re-enqueue.
    assert child_record.finished_ms >= parent_finish + 5.0 - 1e-6


def test_concurrent_epoch_anchor_with_fault_on_reused_executor():
    """Dependency-free retries still anchor guard math at the (positive)
    epoch of a reused executor, composed with a fault hold."""
    executor, _ = _executor(None, "a")
    scheduler = ConcurrentTangoScheduler(
        executor, estimate=lambda r: 1.0, guard_ms=50.0
    )
    scheduler.schedule(_chain(3, location="a"))  # advances the epoch
    epoch_before = executor.now_ms()

    plan = FaultPlan(
        disconnects=(DisconnectWindow(0.0, epoch_before + 60.0),)
    )
    executor2, _ = _executor(plan, "a")
    executor2.channels["a"].clock.advance(epoch_before)
    scheduler2 = ConcurrentTangoScheduler(
        executor2, estimate=lambda r: 1.0, guard_ms=50.0
    )
    dag = _chain(1, location="a")
    result = scheduler2.schedule(dag)
    record = result.records[0]
    assert executor2.epoch_ms > 0.0
    # Both constraints hold: the reconnect hold and the epoch-anchored guard.
    assert record.started_ms >= epoch_before + 60.0 - 1e-6
    assert record.started_ms >= executor2.epoch_ms + 50.0 - 1.0 - 1e-6


# -- prefix commit discipline -------------------------------------------------
def test_prefix_scheduler_replans_faulted_requests():
    plan = FaultPlan(seed=2, loss_probability=0.3)
    executor, _ = _executor(plan, "a", "b")
    dag = RequestDag()
    blocker = dag.new_request("a", FlowModCommand.ADD, _match(0), priority=1)
    for i in range(1, 6):
        dag.new_request("a", FlowModCommand.ADD, _match(i), priority=i + 1)
    for i in range(6, 12):
        dag.new_request(
            "b", FlowModCommand.ADD, _match(i), priority=i, after=[blocker]
        )
    result = PrefixTangoScheduler(executor, estimate=lambda r: 1.0).schedule(dag)
    assert dag.is_done()
    assert len(result.records) == 12
    assert result.fault_retries > 0
