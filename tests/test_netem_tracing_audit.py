"""Tests for packet tracing and the consistency auditor."""

import pytest

from repro.apps import StaticFlowPusher
from repro.baselines import FifoOrderScheduler
from repro.core.requests import RequestDag
from repro.core.scheduler import BasicTangoScheduler
from repro.netem.audit import (
    AuditProbe,
    AuditingExecutor,
    probes_for_flows,
)
from repro.netem.consistency import add_reverse_path_dependencies
from repro.netem.network import EmulatedNetwork
from repro.netem.tracing import TraceOutcome, trace_packet
from repro.netem.topology import Topology, triangle_topology
from repro.openflow.actions import DropAction, OutputAction
from repro.openflow.match import PacketFields
from repro.openflow.messages import FlowModCommand
from repro.switches.profiles import OVS_PROFILE


def _network():
    return EmulatedNetwork(triangle_topology(), default_profile=OVS_PROFILE, seed=2)


def _line_network():
    topology = Topology("line")
    for name in ("a", "b", "c"):
        topology.add_switch(name)
    topology.add_link("a", "b")
    topology.add_link("b", "c")
    return EmulatedNetwork(topology, default_profile=OVS_PROFILE, seed=2)


# -- port mapping ------------------------------------------------------------------
def test_ports_are_deterministic_and_disjoint():
    network = _network()
    ports = {network.port_to("s1", n) for n in ("s2", "s3")}
    assert len(ports) == 2
    assert all(p >= 2 for p in ports)
    assert network.neighbor_on_port("s1", network.port_to("s1", "s2")) == "s2"


def test_port_to_unknown_neighbor_rejected():
    network = _network()
    with pytest.raises(KeyError):
        network.port_to("s1", "nowhere")


def test_port_along_path_egress_is_local():
    network = _network()
    assert network.port_along_path(["s1", "s2"], "s2") == network.LOCAL_PORT
    assert network.port_along_path(["s1", "s2"], "s1") == network.port_to("s1", "s2")


# -- tracing --------------------------------------------------------------------------
def test_trace_installed_flow_is_delivered():
    network = _line_network()
    flow = network.new_flow("a", "c")
    network.preinstall_flow_rules()
    probe = probes_for_flows(network, [flow])[0]
    trace = trace_packet(network, probe.packet, "a")
    assert trace.outcome is TraceOutcome.DELIVERED
    assert trace.path == ["a", "b", "c"]
    assert trace.delivered_at == "c"
    assert trace.total_delay_ms > 0


def test_trace_unknown_packet_is_punted_at_ingress():
    network = _line_network()
    trace = trace_packet(network, PacketFields(ip_dst=99), "a")
    assert trace.outcome is TraceOutcome.PUNTED
    assert trace.path == ["a"]


def test_trace_detects_midpath_black_hole():
    network = _line_network()
    flow = network.new_flow("a", "c")
    # Install only the ingress rule: the packet is forwarded to b, which
    # punts -- exactly the transient the reverse ordering prevents.
    network.preinstall_flow_rules()
    network.switches["b"].reset_rules()
    probe = probes_for_flows(network, [flow])[0]
    trace = trace_packet(network, probe.packet, "a")
    assert trace.outcome is TraceOutcome.PUNTED
    assert trace.path == ["a", "b"]


def test_trace_detects_drop_rule():
    network = _line_network()
    flow = network.new_flow("a", "c")
    network.preinstall_flow_rules()
    network.channels["b"].send_flow_mod(
        __import__("repro.openflow.messages", fromlist=["FlowMod"]).FlowMod(
            FlowModCommand.ADD,
            flow.match(),
            priority=10_000,
            actions=(DropAction(),),
        )
    )
    trace = trace_packet(network, probes_for_flows(network, [flow])[0].packet, "a")
    assert trace.outcome is TraceOutcome.DROPPED


def test_trace_detects_forwarding_loop():
    network = _line_network()
    flow = network.new_flow("a", "c")
    # a -> b and b -> a: a two-switch loop.
    for src, dst in (("a", "b"), ("b", "a")):
        network.channels[src].send_flow_mod(
            __import__("repro.openflow.messages", fromlist=["FlowMod"]).FlowMod(
                FlowModCommand.ADD,
                flow.match(),
                priority=100,
                actions=(OutputAction(port=network.port_to(src, dst)),),
            )
        )
    trace = trace_packet(network, probes_for_flows(network, [flow])[0].packet, "a")
    assert trace.outcome is TraceOutcome.LOOP


def test_trace_unknown_ingress_rejected():
    with pytest.raises(KeyError):
        trace_packet(_line_network(), PacketFields(), "nope")


# -- auditing ----------------------------------------------------------------------------
def _install_dag(network, flow, reverse=True):
    dag = RequestDag()
    chain = [
        dag.new_request(
            switch,
            FlowModCommand.ADD,
            flow.match(),
            priority=flow.priority,
            actions=(OutputAction(port=network.port_along_path(flow.path, switch)),),
        )
        for switch in flow.path
    ]
    if reverse:
        add_reverse_path_dependencies(dag, chain)
    return dag


def test_reverse_order_install_is_consistent():
    network = _line_network()
    flow = network.new_flow("a", "c")
    dag = _install_dag(network, flow, reverse=True)
    executor = AuditingExecutor(network, probes_for_flows(network, [flow]))
    BasicTangoScheduler(executor).schedule(dag)
    assert executor.report.consistent
    assert executor.report.probes_traced == 3


def test_forward_order_install_creates_transient_black_hole():
    network = _line_network()
    flow = network.new_flow("a", "c")
    dag = _install_dag(network, flow, reverse=False)
    # FIFO order issues ingress-first: after the first request the
    # ingress forwards into a rule-less switch b.
    executor = AuditingExecutor(network, probes_for_flows(network, [flow]))
    FifoOrderScheduler(executor).schedule(dag)
    assert not executor.report.consistent
    first = executor.report.violations[0]
    assert first.outcome in (TraceOutcome.PUNTED, TraceOutcome.LOOP)
    assert list(first.reached)[0] == "a"


def test_flow_pusher_with_network_ports_is_consistent_end_to_end():
    network = _network()
    pusher = StaticFlowPusher(port_resolver=network.port_along_path)
    flow = network.new_flow("s1", "s2", path=["s1", "s3", "s2"])
    pusher.push_flow(flow)
    executor = AuditingExecutor(network, probes_for_flows(network, [flow]))
    BasicTangoScheduler(executor).schedule(pusher.dag)
    assert executor.report.consistent
    trace = trace_packet(network, probes_for_flows(network, [flow])[0].packet, "s1")
    assert trace.outcome is TraceOutcome.DELIVERED
    assert trace.path == ["s1", "s3", "s2"]


def test_misdelivery_detected():
    network = _line_network()
    flow = network.new_flow("a", "c")
    network.preinstall_flow_rules()
    # Corrupt b's rule to deliver locally instead of forwarding to c.
    network.channels["b"].send_flow_mod(
        __import__("repro.openflow.messages", fromlist=["FlowMod"]).FlowMod(
            FlowModCommand.MODIFY,
            flow.match(),
            priority=flow.priority,
            actions=(OutputAction(port=network.LOCAL_PORT),),
        )
    )
    probe = probes_for_flows(network, [flow])[0]
    executor = AuditingExecutor(network, [probe])
    dag = RequestDag()
    dag.new_request("a", FlowModCommand.MODIFY, flow.match(), priority=flow.priority,
                    actions=(OutputAction(port=network.port_to("a", "b")),))
    BasicTangoScheduler(executor).schedule(dag)
    assert not executor.report.consistent
    assert executor.report.violations[0].outcome is TraceOutcome.DELIVERED
