"""Tests for ACL shadowed-rule elimination."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import AclApplication
from repro.apps.minimize import minimize_acl
from repro.openflow.match import IpPrefix, Match, PacketFields


def _rule(value, length, port=None):
    return Match(
        eth_type=0x0800, ip_dst=IpPrefix(value, length), tp_dst=port
    )


def test_empty_acl():
    result = minimize_acl([])
    assert result.rules == []
    assert result.removed_count == 0


def test_no_shadowing_keeps_everything():
    rules = [_rule(0x0A000000, 8), _rule(0x0B000000, 8)]
    result = minimize_acl(rules)
    assert result.rules == rules
    assert result.removed_count == 0


def test_later_specific_rule_shadowed_by_earlier_general():
    general = _rule(0x0A000000, 8)
    specific = _rule(0x0A010000, 16)
    result = minimize_acl([general, specific])
    assert result.rules == [general]
    assert result.removed_indices == [1]
    assert result.shadowed_by[1] == 0


def test_earlier_specific_does_not_shadow_later_general():
    """The classic exception-then-default ACL pattern must survive."""
    specific = _rule(0x0A010000, 16)
    general = _rule(0x0A000000, 8)
    result = minimize_acl([specific, general])
    assert result.rules == [specific, general]


def test_duplicate_rule_removed():
    rule = _rule(0x0A000000, 24)
    result = minimize_acl([rule, rule])
    assert result.removed_indices == [1]


def test_shadow_by_removed_rule_does_not_cascade_wrongly():
    """A removed rule cannot shadow anything (only kept rules count)."""
    a = _rule(0x0A000000, 8)  # kept
    b = _rule(0x0A010000, 16)  # removed, shadowed by a
    c = _rule(0x0A010100, 24)  # also covered by a directly
    result = minimize_acl([a, b, c])
    assert result.kept_indices == [0]
    assert result.shadowed_by[2] == 0


def test_port_wildcard_shadows_port_specific():
    wide = _rule(0x0A000000, 24)
    narrow = _rule(0x0A000000, 24, port=80)
    result = minimize_acl([wide, narrow])
    assert result.rules == [wide]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # /8 block
            st.integers(min_value=8, max_value=32),
        ),
        max_size=25,
    )
)
def test_minimisation_preserves_first_match_semantics(specs):
    """Property: for any probe packet, the first matching rule index maps
    to the same *kept* rule before and after minimisation."""
    def masked(value, length):
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        return value & mask

    rules = [
        _rule(masked((block << 24) | 0x10000, length), length)
        for block, length in specs
    ]
    result = minimize_acl(rules)
    probes = [PacketFields(ip_dst=(block << 24) | 0x10000) for block in range(4)]
    for packet in probes:
        first_original = next(
            (i for i, rule in enumerate(rules) if rule.matches_packet(packet)), None
        )
        first_minimised = next(
            (
                result.kept_indices[j]
                for j, rule in enumerate(result.rules)
                if rule.matches_packet(packet)
            ),
            None,
        )
        if first_original is None:
            assert first_minimised is None
        else:
            # The original first match either survived, or was shadowed by
            # an earlier rule that also matches -- in both cases the first
            # *kept* match is at most the original index.
            assert first_minimised is not None
            assert first_minimised <= first_original
            # And the rule that now fires covers the one that fired before.
            if first_minimised != first_original:
                assert rules[first_minimised].covers(rules[first_original])


def test_acl_application_with_minimisation():
    general = _rule(0x0A000000, 8)
    shadowed = _rule(0x0A010000, 16)
    independent = _rule(0x0B000000, 8)
    app = AclApplication("sw", minimize=True)
    dag, requests = app.compile([general, shadowed, independent])
    assert len(dag) == 2
    assert set(requests) == {0, 2}  # original indices; index 1 dropped


def test_acl_application_minimisation_preserves_action_alignment():
    from repro.openflow.actions import DropAction, OutputAction

    general = _rule(0x0A000000, 8)
    shadowed = _rule(0x0A010000, 16)
    independent = _rule(0x0B000000, 8)
    app = AclApplication("sw", minimize=True)
    dag, requests = app.compile(
        [general, shadowed, independent],
        actions=[(DropAction(),), (OutputAction(1),), (OutputAction(2),)],
    )
    assert requests[0].actions == (DropAction(),)
    assert requests[2].actions == (OutputAction(2),)
