"""Request-DAG static verification (repro.analysis.dagcheck)."""

import pytest

from repro.analysis import DiagnosticError, analyze_dag, check_dag
from repro.core.requests import RequestDag
from repro.core.scheduler import (
    BasicTangoScheduler,
    ConcurrentTangoScheduler,
    NetworkExecutor,
)
from repro.openflow.actions import OutputAction
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.switches.profiles import VENDOR_PROFILES


def _match(index):
    return Match(ip_dst=IpPrefix(index << 8, 24))


def _linear_dag(n=3, location="s1", deadlines=None):
    dag = RequestDag()
    previous = []
    for index in range(n):
        request = dag.new_request(
            location,
            FlowModCommand.ADD,
            _match(index),
            priority=index + 1,
            install_by_ms=None if deadlines is None else deadlines[index],
            after=previous,
        )
        previous = [request]
    return dag


def _force_cycle(dag):
    requests = dag.requests
    dag._graph.add_edge(requests[-1].request_id, requests[0].request_id)


def test_clean_dag_produces_no_diagnostics():
    report = check_dag(_linear_dag())
    assert len(report) == 0


def test_cycle_is_tng010_error():
    dag = _linear_dag()
    _force_cycle(dag)
    report = check_dag(dag)
    assert [d.code for d in report] == ["TNG010"]
    assert report.has_errors


def test_orphan_barrier_delete_is_tng011_warning():
    dag = RequestDag()
    barrier = dag.new_request("s1", FlowModCommand.DELETE, _match(0), priority=7)
    dag.new_request("s1", FlowModCommand.ADD, _match(1), priority=1, after=[barrier])
    report = check_dag(dag)
    assert [d.code for d in report] == ["TNG011"]
    assert not report.has_errors


def test_barrier_delete_with_matching_add_is_clean():
    dag = RequestDag()
    add = dag.new_request("s1", FlowModCommand.ADD, _match(0), priority=7)
    barrier = dag.new_request(
        "s1", FlowModCommand.DELETE, _match(0), priority=7, after=[add]
    )
    dag.new_request("s1", FlowModCommand.ADD, _match(1), priority=1, after=[barrier])
    assert len(check_dag(dag)) == 0


def test_barrier_delete_of_existing_rule_is_clean():
    dag = RequestDag()
    barrier = dag.new_request("s1", FlowModCommand.DELETE, _match(0), priority=7)
    dag.new_request("s1", FlowModCommand.ADD, _match(1), priority=1, after=[barrier])
    report = check_dag(dag, existing=[("s1", _match(0), 7)])
    assert len(report) == 0


def test_chain_deadline_infeasibility_is_tng012_error():
    # Three chained 10 ms requests; the last must land by 15 ms.
    dag = _linear_dag(n=3, deadlines=[None, None, 15.0])
    report = check_dag(dag, estimate=lambda request: 10.0)
    assert "TNG012" in [d.code for d in report]
    assert report.has_errors


def test_per_switch_edf_infeasibility_is_tng012_error():
    # Two independent requests on one switch, both due by 15 ms, 10 ms each:
    # each chain bound holds (10 <= 15) but 20 ms of serial work is due by 15.
    dag = RequestDag()
    for index in range(2):
        dag.new_request(
            "s1",
            FlowModCommand.ADD,
            _match(index),
            priority=index + 1,
            install_by_ms=15.0,
        )
    report = check_dag(dag, estimate=lambda request: 10.0)
    assert [d.code for d in report] == ["TNG012"]


def test_feasible_deadlines_are_clean():
    dag = _linear_dag(n=3, deadlines=[20.0, 40.0, 60.0])
    assert len(check_dag(dag, estimate=lambda request: 10.0)) == 0


def test_guard_time_violation_is_tng013_warning():
    dag = RequestDag()
    first = dag.new_request("s1", FlowModCommand.ADD, _match(0), priority=1)
    dag.new_request("s2", FlowModCommand.ADD, _match(1), priority=2, after=[first])
    estimates = {"s1": 2.0, "s2": 20.0}
    report = check_dag(
        dag, estimate=lambda request: estimates[request.location], guard_ms=5.0
    )
    assert [d.code for d in report] == ["TNG013"]
    assert not report.has_errors


def test_same_switch_dependency_never_violates_guard():
    dag = _linear_dag(n=2)
    report = check_dag(dag, estimate=lambda request: 100.0, guard_ms=1.0)
    assert len(report) == 0


def test_strict_scheduler_raises_on_cyclic_dag():
    switch = VENDOR_PROFILES["switch2"].build(seed=3)
    executor = NetworkExecutor({switch.name: ControlChannel(switch)})
    dag = _linear_dag(n=2, location=switch.name)
    _force_cycle(dag)
    scheduler = BasicTangoScheduler(executor, strict=True)
    with pytest.raises(DiagnosticError) as excinfo:
        scheduler.schedule(dag)
    assert any(d.code == "TNG010" for d in excinfo.value.report)


def test_non_strict_scheduler_still_runs_clean_dags():
    switch = VENDOR_PROFILES["switch2"].build(seed=3)
    executor = NetworkExecutor({switch.name: ControlChannel(switch)})
    dag = _linear_dag(n=3, location=switch.name)
    result = BasicTangoScheduler(executor, strict=True).schedule(dag)
    assert result.total_requests == 3


def test_strict_concurrent_scheduler_checks_deadlines():
    switch = VENDOR_PROFILES["switch2"].build(seed=3)
    executor = NetworkExecutor({switch.name: ControlChannel(switch)})
    dag = RequestDag()
    previous = []
    for index in range(3):
        request = dag.new_request(
            switch.name,
            FlowModCommand.ADD,
            _match(index),
            priority=index + 1,
            install_by_ms=0.001 if index == 2 else None,
            after=previous,
        )
        previous = [request]
    scheduler = ConcurrentTangoScheduler(
        executor, estimate=lambda request: 10.0, strict=True
    )
    with pytest.raises(DiagnosticError) as excinfo:
        scheduler.schedule(dag)
    assert any(d.code == "TNG012" for d in excinfo.value.report)


def test_analyze_dag_also_runs_rule_checks_per_switch():
    dag = RequestDag()
    wide = Match(ip_dst=IpPrefix(0x0A000000, 8))
    narrow = Match(ip_dst=IpPrefix(0x0A010000, 16))
    dag.new_request("s1", FlowModCommand.ADD, wide, priority=10)
    dag.new_request("s1", FlowModCommand.ADD, narrow, priority=1)
    report = analyze_dag(dag)
    assert [d.code for d in report] == ["TNG002"]


def test_analyze_dag_with_actions_kwarg_smoke():
    dag = RequestDag()
    dag.new_request(
        "s1",
        FlowModCommand.ADD,
        _match(0),
        priority=1,
        actions=(OutputAction(port=2),),
    )
    assert len(analyze_dag(dag)) == 0
