"""Tests for the controller applications layer."""

import pytest

from repro.apps import AclApplication, RouteRequest, RoutingApplication, StaticFlowPusher
from repro.apps.acl import PriorityMode
from repro.core.placement import FlowPlacer, FlowRequirements
from repro.core.priorities import check_priorities
from repro.core.requests import RequestDag
from repro.core.scheduler import BasicTangoScheduler
from repro.netem.flows import NetworkFlow
from repro.netem.network import EmulatedNetwork
from repro.netem.topology import Topology, triangle_topology
from repro.openflow.actions import DropAction, OutputAction
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.switches.profiles import OVS_PROFILE
from repro.workloads.classbench import ClassbenchLikeGenerator
from repro.workloads.dependencies import build_dependency_graph


def _flow(fid, path, priority=100):
    return NetworkFlow(flow_id=fid, src=path[0], dst=path[-1], path=path, priority=priority)


# -- StaticFlowPusher --------------------------------------------------------------
def test_push_flow_orders_egress_first():
    pusher = StaticFlowPusher()
    flow = _flow(1, ["a", "b", "c"])
    chain = pusher.push_flow(flow)
    assert [r.location for r in chain] == ["a", "b", "c"]
    ready = pusher.dag.independent_requests()
    assert [r.location for r in ready] == ["c"]


def test_remove_flow_drains_ingress_first():
    pusher = StaticFlowPusher()
    flow = _flow(2, ["a", "b", "c"])
    pusher.remove_flow(flow)
    ready = pusher.dag.independent_requests()
    assert [r.location for r in ready] == ["a"]
    assert all(r.command is FlowModCommand.DELETE for r in pusher.dag.requests)


def test_push_flow_egress_gets_port_one():
    pusher = StaticFlowPusher()
    chain = pusher.push_flow(_flow(3, ["a", "b"]))
    egress_actions = chain[-1].actions
    assert egress_actions == (OutputAction(port=1),)


def test_reroute_adds_detour_modifies_ingress_deletes_abandoned():
    pusher = StaticFlowPusher()
    flow = _flow(4, ["a", "b", "c"])
    requests = pusher.reroute_flow(flow, ["a", "d", "c"])
    by_command = {}
    for request in requests:
        by_command.setdefault(request.command, []).append(request.location)
    assert by_command[FlowModCommand.ADD] == ["d"]
    assert by_command[FlowModCommand.MODIFY] == ["a"]
    assert by_command[FlowModCommand.DELETE] == ["b"]
    assert flow.path == ["a", "d", "c"]


def test_reroute_rejects_changed_endpoints():
    pusher = StaticFlowPusher()
    flow = _flow(5, ["a", "b"])
    with pytest.raises(ValueError):
        pusher.reroute_flow(flow, ["a", "c"])


def test_push_flow_with_deadline():
    pusher = StaticFlowPusher()
    chain = pusher.push_flow(_flow(6, ["a"]), install_by_ms=25.0)
    assert chain[0].install_by_ms == 25.0


# -- AclApplication -----------------------------------------------------------------
def _nested_rules():
    return [
        Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A010000, 16)),
        Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 8)),
        Match(eth_type=0x0800, ip_dst=IpPrefix(0x0B000000, 8)),
    ]


def test_acl_priorities_satisfy_dependencies():
    app = AclApplication("sw")
    rules = _nested_rules()
    dag, requests = app.compile(rules)
    dependencies = build_dependency_graph(rules)
    priorities = {i: requests[i].priority for i in requests}
    assert check_priorities(dependencies, priorities) == []
    # Rule 0 shadows rule 1: strictly higher priority and installed first.
    assert requests[0].priority > requests[1].priority
    ready_ids = {r.request_id for r in dag.independent_requests()}
    assert requests[0].request_id in ready_ids
    assert requests[1].request_id not in ready_ids


def test_acl_topological_mode_minimises_distinct_priorities():
    app = AclApplication("sw", priority_mode=PriorityMode.TOPOLOGICAL)
    _, requests = app.compile(_nested_rules())
    assert len({r.priority for r in requests.values()}) == 2  # depth 2


def test_acl_unique_mode_one_priority_per_rule():
    app = AclApplication("sw", priority_mode=PriorityMode.UNIQUE)
    _, requests = app.compile(_nested_rules())
    assert len({r.priority for r in requests.values()}) == 3


def test_acl_default_action_is_drop():
    _, requests = AclApplication("sw").compile(_nested_rules())
    assert all(r.actions == (DropAction(),) for r in requests.values())


def test_acl_custom_actions_validated():
    app = AclApplication("sw")
    with pytest.raises(ValueError):
        app.compile(_nested_rules(), actions=[(DropAction(),)])


def test_acl_compiles_and_schedules_classbench():
    ruleset = ClassbenchLikeGenerator(n_rules=80, depth=12, seed=3).generate()
    app = AclApplication("sw")
    dag, _ = app.compile(ruleset.rules)
    network = EmulatedNetwork(_single_node_topology("sw"), default_profile=OVS_PROFILE)
    result = BasicTangoScheduler(network.executor()).schedule(dag)
    assert result.total_requests == 80
    assert network.switches["sw"].num_flows == 80


def _single_node_topology(name):
    topology = Topology("one")
    topology.add_switch(name)
    return topology


# -- RoutingApplication ---------------------------------------------------------------
def test_routing_without_placer_uses_shortest_path():
    network = EmulatedNetwork(triangle_topology(), default_profile=OVS_PROFILE)
    app = RoutingApplication(network)
    request = RouteRequest("s1", "s2", FlowRequirements(expected_packets=10))
    assert app.choose_path(request) == ["s1", "s2"]


def test_routing_k_paths_validated():
    network = EmulatedNetwork(triangle_topology(), default_profile=OVS_PROFILE)
    with pytest.raises(ValueError):
        RoutingApplication(network, k_paths=0)


def test_routing_emits_consistent_install_dag():
    network = EmulatedNetwork(triangle_topology(), default_profile=OVS_PROFILE)
    app = RoutingApplication(network)
    dag = app.route(
        [
            RouteRequest("s1", "s2", FlowRequirements(10)),
            RouteRequest("s2", "s3", FlowRequirements(10)),
        ]
    )
    assert len(dag) == 4  # two 2-hop paths
    result = BasicTangoScheduler(network.executor()).schedule(dag)
    assert result.total_requests == 4


def test_routing_with_placer_avoids_expensive_switch():
    """A detour through a cheap switch beats a direct hop through an
    expensive one when the flow is setup-critical."""
    from repro.core.inference import InferredSwitchModel
    from repro.core.latency_curves import LatencyCurve, PriorityPattern
    from repro.openflow.messages import FlowModCommand as FMC

    def model(name, install_ms):
        m = InferredSwitchModel(name=name)
        m.latency_curves = {
            (FMC.ADD, PriorityPattern.ASCENDING): LatencyCurve(
                op=FMC.ADD,
                pattern=PriorityPattern.ASCENDING,
                linear_ms=install_ms,
                quadratic_ms=0.0,
            )
        }
        return m

    topology = Topology("square")
    for name in ("in", "hw", "sw", "out"):
        topology.add_switch(name)
    topology.add_link("in", "hw")
    topology.add_link("hw", "out")
    topology.add_link("in", "sw")
    topology.add_link("sw", "out")
    network = EmulatedNetwork(topology, default_profile=OVS_PROFILE)

    placer = FlowPlacer(
        [model("in", 0.1), model("out", 0.1), model("hw", 50.0), model("sw", 0.1)]
    )
    app = RoutingApplication(network, placer=placer, k_paths=3)
    request = RouteRequest(
        "in", "out", FlowRequirements(expected_packets=0, setup_weight=1.0)
    )
    assert app.choose_path(request) == ["in", "sw", "out"]
