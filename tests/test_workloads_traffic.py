"""Tests for traffic-matrix and flow-arrival helpers."""

import pytest

from repro.sim.rng import SeededRng
from repro.workloads.traffic import poisson_flow_arrivals, uniform_traffic_matrix

NODES = [f"n{i}" for i in range(6)]


def test_matrix_respects_sparsity():
    rng = SeededRng(1).child("t")
    matrix = uniform_traffic_matrix(NODES, total_demand=100.0, rng=rng, sparsity=0.5)
    assert len(matrix) == int(len(NODES) * (len(NODES) - 1) * 0.5)


def test_matrix_total_demand():
    rng = SeededRng(2).child("t")
    matrix = uniform_traffic_matrix(NODES, total_demand=100.0, rng=rng)
    assert sum(matrix.values()) == pytest.approx(100.0)


def test_matrix_no_self_pairs():
    rng = SeededRng(3).child("t")
    matrix = uniform_traffic_matrix(NODES, total_demand=10.0, rng=rng, sparsity=1.0)
    assert all(a != b for a, b in matrix)


def test_matrix_positive_demands():
    rng = SeededRng(4).child("t")
    matrix = uniform_traffic_matrix(NODES, total_demand=50.0, rng=rng)
    assert all(v > 0 for v in matrix.values())


def test_matrix_deterministic_per_stream():
    a = uniform_traffic_matrix(NODES, 10.0, SeededRng(5).child("t"))
    b = uniform_traffic_matrix(NODES, 10.0, SeededRng(5).child("t"))
    assert a == b


def test_matrix_minimum_one_pair():
    rng = SeededRng(6).child("t")
    matrix = uniform_traffic_matrix(NODES, 10.0, rng, sparsity=0.0001)
    assert len(matrix) == 1


def test_poisson_arrivals_within_duration():
    rng = SeededRng(7).child("p")
    arrivals = poisson_flow_arrivals(rate_per_ms=0.5, duration_ms=100.0, rng=rng)
    assert all(0 < t < 100.0 for t in arrivals)
    assert arrivals == sorted(arrivals)


def test_poisson_mean_rate():
    rng = SeededRng(8).child("p")
    arrivals = poisson_flow_arrivals(rate_per_ms=1.0, duration_ms=5000.0, rng=rng)
    assert len(arrivals) == pytest.approx(5000, rel=0.1)


def test_poisson_rate_validated():
    with pytest.raises(ValueError):
        poisson_flow_arrivals(rate_per_ms=0.0, duration_ms=10.0, rng=SeededRng(1))


def test_zipf_weights_follow_inverse_power_law():
    from repro.workloads.traffic import zipf_weights

    weights = zipf_weights(4, skew=1.0)
    assert weights[0] == pytest.approx(1.0)
    assert weights[1] == pytest.approx(0.5)
    assert weights[3] == pytest.approx(0.25)
    assert zipf_weights(5, skew=0.0) == [1.0] * 5  # skew 0 is uniform


def test_zipf_weights_validated():
    from repro.workloads.traffic import zipf_weights

    with pytest.raises(ValueError):
        zipf_weights(0, skew=1.0)
    with pytest.raises(ValueError):
        zipf_weights(4, skew=-0.1)


def test_zipf_sampler_is_deterministic_and_bounded():
    from repro.workloads.traffic import ZipfSampler

    a = ZipfSampler(16, skew=1.2, rng=SeededRng(9).child("z"))
    b = ZipfSampler(16, skew=1.2, rng=SeededRng(9).child("z"))
    draws = [a.sample() for _ in range(500)]
    assert draws == [b.sample() for _ in range(500)]
    assert all(0 <= d < 16 for d in draws)


def test_zipf_sampler_rank_zero_most_frequent():
    from repro.workloads.traffic import ZipfSampler

    sampler = ZipfSampler(8, skew=1.5, rng=SeededRng(10).child("z"))
    counts = [0] * 8
    for _ in range(4000):
        counts[sampler.sample()] += 1
    assert counts[0] == max(counts)
    assert counts[0] > counts[7]
