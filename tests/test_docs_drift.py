"""Doc-drift guard: API.md must keep up with the public surface.

Two invariants, both cheap and purely static:

* every public *package* under ``src/repro`` has an API.md heading that
  names it (``## ... `repro.x` ...``), so a new subsystem cannot land
  without a reference section;
* every public *module* is reachable from API.md — either its dotted
  path appears verbatim, or at least one public top-level name it
  defines does (word-boundary match), so a module cannot drift into
  being entirely undocumented.

CI runs this file as the doc-drift check.
"""

import ast
import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
API = (REPO / "API.md").read_text(encoding="utf-8")
API_HEADINGS = [line for line in API.splitlines() if line.startswith("#")]


def _packages():
    for init in sorted(SRC.rglob("__init__.py")):
        package = init.parent.relative_to(SRC.parent)
        if len(package.parts) == 1:
            continue  # the root namespace is the whole document
        yield ".".join(package.parts)


def _modules():
    for path in sorted(SRC.rglob("*.py")):
        if path.name.startswith("_"):
            continue
        module = path.relative_to(SRC.parent).with_suffix("")
        yield ".".join(module.parts), path


def _public_names(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    names = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return {name for name in names if not name.startswith("_")}


def test_every_package_has_an_api_heading():
    missing = [
        package
        for package in _packages()
        if not any(f"`{package}`" in heading for heading in API_HEADINGS)
    ]
    assert not missing, (
        "packages without an API.md heading (add a `## ... — `<package>`` "
        f"section): {missing}"
    )


def test_every_module_is_reachable_from_api_md():
    undocumented = []
    for module, path in _modules():
        if module in API:
            continue
        names = _public_names(path)
        if any(re.search(rf"\b{re.escape(name)}\b", API) for name in sorted(names)):
            continue
        undocumented.append((module, sorted(names)[:5]))
    assert not undocumented, (
        "modules with no API.md mention (neither the dotted path nor any "
        f"public name appears): {undocumented}"
    )


def test_console_scripts_are_documented():
    pyproject = (REPO / "pyproject.toml").read_text(encoding="utf-8")
    block = pyproject.split("[project.scripts]", 1)[1].split("[", 1)[0]
    scripts = re.findall(r"^(\S+)\s*=", block, flags=re.MULTILINE)
    assert scripts, "no console scripts found in pyproject.toml"
    missing = [script for script in scripts if f"`{script}" not in API]
    assert not missing, f"console scripts absent from API.md: {missing}"
