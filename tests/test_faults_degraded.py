"""Degraded-mode inference under injected faults, incl. property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.inference import SwitchInferenceEngine
from repro.core.probing import ProbingEngine
from repro.core.scheduler import BasicTangoScheduler
from repro.core.size_inference import SizeProber
from repro.faults import (
    DisconnectWindow,
    FaultInjector,
    FaultPlan,
    RetryGiveUpError,
    RetryPolicy,
)
from repro.openflow.channel import ControlChannel
from repro.perf.workloads import fast_executor, layered_dag
from repro.sim.rng import SeededRng
from repro.switches.profiles import VENDOR_PROFILES, make_cache_test_profile
from repro.tables.policies import FIFO


def _engine(profile, plan=None, seed=1, policy=RetryPolicy()):
    switch = profile.build(seed=seed)
    channel = ControlChannel(switch)
    if plan is not None:
        channel = FaultInjector(plan).wrap_channel(channel)
    return ProbingEngine(
        channel, rng=SeededRng(seed).child("size"), retry_policy=policy
    )


BOUNDED = make_cache_test_profile(FIFO, (64,), layer_means_ms=(0.5,))


# -- retry integration in the probing engine ----------------------------------
def test_install_retries_through_losses():
    plan = FaultPlan(seed=3, loss_probability=0.3)
    engine = _engine(BOUNDED, plan)
    handle = engine.new_handle(priority=10)
    engine.install_flow(handle)
    assert engine.installs_completed == 1
    assert engine.fault_giveups == 0


def test_retry_gives_up_after_max_attempts():
    plan = FaultPlan(seed=1, loss_probability=0.95)
    engine = _engine(BOUNDED, plan, policy=RetryPolicy(max_attempts=3))
    with pytest.raises(RetryGiveUpError) as info:
        engine.install_flow(engine.new_handle(priority=10))
    assert info.value.attempts == 3
    assert engine.fault_giveups == 1
    assert engine.fault_retries == 3


def test_no_retry_policy_propagates_raw_fault():
    from repro.openflow.errors import TransientFaultError

    plan = FaultPlan(seed=1, loss_probability=0.95)
    engine = _engine(BOUNDED, plan, policy=None)
    with pytest.raises(TransientFaultError):
        engine.install_flow(engine.new_handle(priority=10))


def test_retry_waits_out_disconnect_windows():
    plan = FaultPlan(disconnects=(DisconnectWindow(0.0, 25.0),))
    engine = _engine(BOUNDED, plan)
    engine.install_flow(engine.new_handle(priority=10))
    assert engine.now_ms >= 25.0  # the retry held until reconnect
    assert engine.fault_retries == 1


def test_remove_all_flows_is_best_effort_under_faults():
    plan = FaultPlan(seed=7, loss_probability=0.6)
    engine = _engine(BOUNDED, plan, policy=RetryPolicy(max_attempts=2))
    for i in range(5):
        try:
            engine.install_flow(engine.new_handle(priority=i + 1))
        except RetryGiveUpError:
            pass
    engine.remove_all_flows()  # must not raise even when DELETEs give up
    assert engine.flows == []


# -- degraded size inference --------------------------------------------------
def test_size_probe_survives_chaos_with_exact_estimate():
    plan = FaultPlan(
        seed=11,
        loss_probability=0.1,
        disconnects=(DisconnectWindow(20.0, 60.0),),
    )
    result = SizeProber(_engine(BOUNDED, plan), max_rules=256).probe()
    assert result.layers[0].estimated_size == 64
    assert 0.0 < result.confidence <= 1.0


def test_size_probe_confidence_degrades_with_giveups():
    clean = SizeProber(_engine(BOUNDED), max_rules=256).probe()
    assert clean.confidence == 1.0
    assert clean.install_giveups == 0

    noisy_plan = FaultPlan(seed=4, loss_probability=0.45)
    noisy = SizeProber(
        _engine(BOUNDED, noisy_plan, policy=RetryPolicy(max_attempts=2)),
        max_rules=256,
    ).probe()
    assert noisy.install_giveups > 0
    assert noisy.confidence < 1.0


def test_inference_engine_end_to_end_under_faults_is_reproducible():
    plan = FaultPlan(seed=11, loss_probability=0.1)

    def run():
        engine = SwitchInferenceEngine(
            VENDOR_PROFILES["switch3"],
            seed=11,
            size_probe_max_rules=1024,
            fault_injector=FaultInjector(plan),
            retry_policy=RetryPolicy(),
        )
        result = engine.infer_sizes()
        return (
            tuple(layer.estimated_size for layer in result.layers),
            result.install_giveups,
            result.confidence,
        )

    first = run()
    assert first == run()
    assert first[0] == (767,)  # rejection still reveals the exact size


# -- properties ---------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_size_inference_terminates_exact_under_partial_loss(loss, seed):
    """Property: any loss probability < 1 still lets Algorithm 1
    terminate, and on a single-layer bounded switch the rejection signal
    keeps n-hat exact regardless of how many probes were lost."""
    plan = FaultPlan(seed=seed, loss_probability=loss)
    result = SizeProber(_engine(BOUNDED, plan, seed=seed), max_rules=256).probe()
    assert result.layers[0].estimated_size == 64
    assert 0.0 < result.confidence <= 1.0


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=150),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_zero_fault_plan_is_byte_identical_property(n, seed):
    """Property: wrapping with any no-op plan never changes a schedule."""

    def signature(injector):
        executor = fast_executor("sw", seed=3, fault_injector=injector)
        result = BasicTangoScheduler(executor).schedule(layered_dag(n))
        return (
            result.makespan_ms,
            result.rounds,
            tuple(result.pattern_choices),
            tuple(
                (r.request.request_id, r.started_ms, r.finished_ms)
                for r in result.records
            ),
        )

    bare = signature(None)
    wrapped = signature(FaultInjector(FaultPlan(seed=seed)))
    assert bare == wrapped
