"""Property-based tests of whole-switch invariants under random workloads."""

from hypothesis import given, settings, strategies as st

from repro.openflow.errors import TableFullError
from repro.openflow.match import IpPrefix, Match, PacketFields
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import LRU, FIFO
from repro.tables.stack import TableLayer

COST = ControlCostModel(
    add_base_ms=0.5,
    shift_ms=0.05,
    priority_group_ms=0.1,
    mod_ms=0.3,
    del_ms=0.2,
    jitter_std_frac=0.0,
)


def _switch(policy, capacity=8, bounded=False):
    layers = [TableLayer("fast", capacity=capacity)]
    delays = [ConstantLatency(0.5)]
    if not bounded:
        layers.append(TableLayer("slow", capacity=None))
        delays.append(ConstantLatency(3.0))
    return SimulatedSwitch(
        name="prop",
        layers=layers,
        policy=policy,
        layer_delays=delays,
        control_path_delay=ConstantLatency(8.0),
        cost_model=COST,
        seed=1,
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "mod", "del", "packet"]),
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=15),
    ),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(operations, st.sampled_from([FIFO, LRU]))
def test_switch_bookkeeping_invariants(ops, policy):
    """Clock monotone; shift model mirrors table contents; stats add up."""
    switch = _switch(policy)
    live = set()
    last_clock = switch.clock.now_ms
    for op, key, priority in ops:
        match = _match(key)
        if op == "add" and key not in live:
            switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, match, priority))
            live.add(key)
        elif op == "mod" and key in live:
            switch.apply_flow_mod(FlowMod(FlowModCommand.MODIFY, match, priority))
        elif op == "del":
            switch.apply_flow_mod(FlowMod(FlowModCommand.DELETE, match, actions=()))
            live.discard(key)
        elif op == "packet":
            delay = switch.forward_packet(PacketFields(ip_dst=key))
            assert delay > 0
        assert switch.clock.now_ms >= last_clock
        last_clock = switch.clock.now_ms
        # The priority-shift model tracks exactly the installed rules.
        assert len(switch.shift_model) == switch.num_flows
        assert switch.num_flows == len(live)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=6),
)
def test_bounded_switch_never_exceeds_capacity(keys, capacity):
    switch = _switch(FIFO, capacity=capacity, bounded=True)
    installed = set()
    for key in keys:
        if key in installed:
            continue
        try:
            switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(key), 1))
            installed.add(key)
        except TableFullError:
            assert len(installed) == capacity
    assert switch.num_flows == len(installed) <= capacity


@settings(max_examples=40, deadline=None)
@given(operations)
def test_forwarding_tier_consistent_with_layer(ops):
    """A matched packet's delay always equals its rule's layer delay."""
    switch = _switch(FIFO)
    live = set()
    for op, key, priority in ops:
        if op == "add" and key not in live:
            switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, _match(key), priority))
            live.add(key)
        elif op == "del":
            switch.apply_flow_mod(
                FlowMod(FlowModCommand.DELETE, _match(key), actions=())
            )
            live.discard(key)
        elif op == "packet" and key in live:
            layer = switch.layer_of_match(_match(key))
            delay = switch.forward_packet(PacketFields(ip_dst=key))
            expected = 0.5 if layer == 0 else 3.0
            assert delay == expected
