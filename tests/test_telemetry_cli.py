"""Tests for the ``tango-telemetry`` command-line tool."""

import io
import json

from repro.obs.slo import SloPolicy, SloTarget, write_alerts_jsonl
from repro.obs.telemetry import TelemetryCollector, write_telemetry_jsonl
from repro.obs.telemetry_cli import main


def _write_stream(tmp_path):
    collector = TelemetryCollector(interval_ms=10.0)
    for t in range(0, 60, 5):
        collector.observe_install("s1", "add", float(t), float(t) + 2.0)
        collector.observe_probe("s2", "mod", float(t), 0.5)
    collector.finish(60.0)
    path = str(tmp_path / "run.telemetry.jsonl")
    write_telemetry_jsonl(collector.samples, path)
    return path


def _write_alerts(tmp_path):
    policy = SloPolicy(
        [SloTarget(name="lat", series="executor.install_ms", threshold=1.0, budget=0.05)],
        min_samples=2,
    )
    collector = TelemetryCollector(interval_ms=10.0)
    collector.add_policy(policy)
    for t in range(0, 100, 5):
        collector.observe_install("s1", "add", float(t), float(t) + 50.0)
    collector.finish(150.0)
    path = str(tmp_path / "run.alerts.jsonl")
    write_alerts_jsonl(collector.alerts, path)
    return path, len(collector.alerts)


def test_summary_human_readable(tmp_path):
    out = io.StringIO()
    assert main(["summary", _write_stream(tmp_path)], out=out) == 0
    text = out.getvalue()
    assert "samples :" in text
    assert "executor.install_ms" in text
    assert "probe.rtt_ms" in text


def test_summary_json(tmp_path):
    out = io.StringIO()
    assert main(["summary", _write_stream(tmp_path), "--json"], out=out) == 0
    payload = json.loads(out.getvalue())
    assert payload["samples"] > 0
    assert "executor.install_ms" in payload["series"]


def test_timeseries_points_and_source_filter(tmp_path):
    path = _write_stream(tmp_path)
    out = io.StringIO()
    assert main(["timeseries", path, "executor.install_ms", "--json"], out=out) == 0
    points = json.loads(out.getvalue())
    assert points and all(len(point) == 2 for point in points)
    assert points == sorted(points)
    out = io.StringIO()
    assert (
        main(
            ["timeseries", path, "probe.rtt_ms", "--source", "nope", "--json"],
            out=out,
        )
        == 0
    )
    assert json.loads(out.getvalue()) == []


def test_timeseries_unknown_series_lists_available(tmp_path):
    out = io.StringIO()
    assert main(["timeseries", _write_stream(tmp_path), "nope.series"], out=out) == 1
    text = out.getvalue()
    assert "no samples for series 'nope.series'" in text
    assert "available series:" in text


def test_alerts_listing_and_kind_filter(tmp_path):
    path, count = _write_alerts(tmp_path)
    assert count >= 1
    out = io.StringIO()
    assert main(["alerts", path], out=out) == 0
    assert f"alerts : {count}" in out.getvalue()
    out = io.StringIO()
    assert main(["alerts", path, "--kind", "burn_rate", "--json"], out=out) == 0
    payload = json.loads(out.getvalue())
    assert len(payload) == count
    assert all(alert["kind"] == "burn_rate" for alert in payload)
    out = io.StringIO()
    assert main(["alerts", path, "--kind", "drift", "--json"], out=out) == 0
    assert json.loads(out.getvalue()) == []


def test_missing_file_returns_error(tmp_path):
    assert main(["summary", str(tmp_path / "missing.jsonl")], out=io.StringIO()) == 1
    assert main(["alerts", str(tmp_path / "missing.jsonl")], out=io.StringIO()) == 1
