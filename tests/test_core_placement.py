"""Tests for inferred-model-driven flow placement."""

import pytest

from repro.core.inference import InferredSwitchModel, SwitchInferenceEngine
from repro.core.latency_curves import LatencyCurve, PriorityPattern
from repro.core.placement import FlowPlacer, FlowRequirements, PlacementScore
from repro.core.size_inference import SizeProbeResult
from repro.core.clustering import Cluster
from repro.openflow.messages import FlowModCommand
from repro.switches.profiles import OVS_PROFILE, SWITCH_2


def _model(name, install_ms, fast_rtt_ms):
    model = InferredSwitchModel(name=name)
    model.latency_curves = {
        (FlowModCommand.ADD, PriorityPattern.ASCENDING): LatencyCurve(
            op=FlowModCommand.ADD,
            pattern=PriorityPattern.ASCENDING,
            linear_ms=install_ms,
            quadratic_ms=0.0,
        )
    }
    model.size_probe = SizeProbeResult(
        total_rules_installed=10,
        cache_full=False,
        clusters=[Cluster(mean_ms=fast_rtt_ms, lo_ms=fast_rtt_ms, hi_ms=fast_rtt_ms, count=10)],
        layers=[],
        rules_sent=10,
        packets_sent=10,
    )
    return model


SOFT = _model("soft", install_ms=0.05, fast_rtt_ms=3.0)
HARD = _model("hard", install_ms=5.0, fast_rtt_ms=0.5)


def test_requirements_validation():
    with pytest.raises(ValueError):
        FlowRequirements(expected_packets=-1)
    with pytest.raises(ValueError):
        FlowRequirements(expected_packets=1, setup_weight=-1)


def test_placer_needs_models():
    with pytest.raises(ValueError):
        FlowPlacer([])


def test_low_volume_flow_goes_to_software_switch():
    """The paper's intro example: startup latency matters, bandwidth low."""
    placer = FlowPlacer([SOFT, HARD])
    choice = placer.place(FlowRequirements(expected_packets=1))
    assert choice.switch == "soft"


def test_high_volume_flow_goes_to_hardware_switch():
    placer = FlowPlacer([SOFT, HARD])
    choice = placer.place(FlowRequirements(expected_packets=10_000))
    assert choice.switch == "hard"


def test_crossover_volume():
    placer = FlowPlacer([SOFT, HARD])
    crossover = placer.crossover_packets("soft", "hard")
    # install penalty 4.95 ms / forwarding gain 2.5 ms per packet ~ 1.98.
    assert crossover == pytest.approx(4.95 / 2.5)
    below = placer.place(FlowRequirements(expected_packets=crossover * 0.5))
    above = placer.place(FlowRequirements(expected_packets=crossover * 2))
    assert below.switch == "soft"
    assert above.switch == "hard"


def test_crossover_infinite_when_hardware_never_wins():
    slow_hard = _model("slowhard", install_ms=5.0, fast_rtt_ms=3.5)
    placer = FlowPlacer([SOFT, slow_hard])
    assert placer.crossover_packets("soft", "slowhard") == float("inf")


def test_setup_weight_shifts_the_decision():
    placer = FlowPlacer([SOFT, HARD])
    volume = 3.0  # just above the crossover at weight 1.0
    assert placer.place(FlowRequirements(volume, setup_weight=1.0)).switch == "hard"
    assert placer.place(FlowRequirements(volume, setup_weight=10.0)).switch == "soft"


def test_fill_level_raises_install_cost():
    quadratic = InferredSwitchModel(name="q")
    quadratic.latency_curves = {
        (FlowModCommand.ADD, PriorityPattern.ASCENDING): LatencyCurve(
            op=FlowModCommand.ADD,
            pattern=PriorityPattern.ASCENDING,
            linear_ms=0.1,
            quadratic_ms=0.01,
        )
    }
    placer = FlowPlacer([quadratic])
    empty = placer.score("q", FlowRequirements(0), fill_level=0)
    full = placer.score("q", FlowRequirements(0), fill_level=1000)
    assert full.install_ms > empty.install_ms


def test_unknown_candidate_rejected():
    placer = FlowPlacer([SOFT])
    with pytest.raises(KeyError):
        placer.place(FlowRequirements(1), candidates=["nope"])


def test_end_to_end_with_real_inference():
    """Probe a real software and hardware profile; verify the paper's
    qualitative placement rule emerges from measurements alone."""
    soft_model = SwitchInferenceEngine(
        OVS_PROFILE, seed=2, size_probe_max_rules=128, latency_batch_sizes=(40, 80)
    ).infer(include_policy=False)
    hard_model = SwitchInferenceEngine(
        SWITCH_2, seed=2, size_probe_max_rules=4096, latency_batch_sizes=(40, 80)
    ).infer(include_policy=False)
    placer = FlowPlacer([soft_model, hard_model])
    # A setup-critical, low-volume flow belongs on the software switch;
    # a high-volume flow amortises the hardware install cost.
    latency_sensitive = FlowRequirements(expected_packets=1, setup_weight=20.0)
    assert placer.place(latency_sensitive).switch == "ovs"
    assert placer.place(FlowRequirements(expected_packets=50_000)).switch == "switch2"
    # The hardware install penalty is measurable either way.
    assert (
        placer.score("switch2", latency_sensitive).install_ms
        > placer.score("ovs", latency_sensitive).install_ms
    )
