"""Tests for inferred-model-driven flow placement."""

import pytest

from repro.core.inference import InferredSwitchModel, SwitchInferenceEngine
from repro.core.latency_curves import LatencyCurve, PriorityPattern
from repro.core.placement import FlowPlacer, FlowRequirements, PlacementScore
from repro.core.size_inference import SizeProbeResult
from repro.core.clustering import Cluster
from repro.openflow.messages import FlowModCommand
from repro.switches.profiles import OVS_PROFILE, SWITCH_2


def _model(name, install_ms, fast_rtt_ms):
    model = InferredSwitchModel(name=name)
    model.latency_curves = {
        (FlowModCommand.ADD, PriorityPattern.ASCENDING): LatencyCurve(
            op=FlowModCommand.ADD,
            pattern=PriorityPattern.ASCENDING,
            linear_ms=install_ms,
            quadratic_ms=0.0,
        )
    }
    model.size_probe = SizeProbeResult(
        total_rules_installed=10,
        cache_full=False,
        clusters=[Cluster(mean_ms=fast_rtt_ms, lo_ms=fast_rtt_ms, hi_ms=fast_rtt_ms, count=10)],
        layers=[],
        rules_sent=10,
        packets_sent=10,
    )
    return model


SOFT = _model("soft", install_ms=0.05, fast_rtt_ms=3.0)
HARD = _model("hard", install_ms=5.0, fast_rtt_ms=0.5)


def test_requirements_validation():
    with pytest.raises(ValueError):
        FlowRequirements(expected_packets=-1)
    with pytest.raises(ValueError):
        FlowRequirements(expected_packets=1, setup_weight=-1)


def test_placer_needs_models():
    with pytest.raises(ValueError):
        FlowPlacer([])


def test_low_volume_flow_goes_to_software_switch():
    """The paper's intro example: startup latency matters, bandwidth low."""
    placer = FlowPlacer([SOFT, HARD])
    choice = placer.place(FlowRequirements(expected_packets=1))
    assert choice.switch == "soft"


def test_high_volume_flow_goes_to_hardware_switch():
    placer = FlowPlacer([SOFT, HARD])
    choice = placer.place(FlowRequirements(expected_packets=10_000))
    assert choice.switch == "hard"


def test_crossover_volume():
    placer = FlowPlacer([SOFT, HARD])
    crossover = placer.crossover_packets("soft", "hard")
    # install penalty 4.95 ms / forwarding gain 2.5 ms per packet ~ 1.98.
    assert crossover == pytest.approx(4.95 / 2.5)
    below = placer.place(FlowRequirements(expected_packets=crossover * 0.5))
    above = placer.place(FlowRequirements(expected_packets=crossover * 2))
    assert below.switch == "soft"
    assert above.switch == "hard"


def test_crossover_infinite_when_hardware_never_wins():
    slow_hard = _model("slowhard", install_ms=5.0, fast_rtt_ms=3.5)
    placer = FlowPlacer([SOFT, slow_hard])
    assert placer.crossover_packets("soft", "slowhard") == float("inf")


def test_setup_weight_shifts_the_decision():
    placer = FlowPlacer([SOFT, HARD])
    volume = 3.0  # just above the crossover at weight 1.0
    assert placer.place(FlowRequirements(volume, setup_weight=1.0)).switch == "hard"
    assert placer.place(FlowRequirements(volume, setup_weight=10.0)).switch == "soft"


def test_fill_level_raises_install_cost():
    quadratic = InferredSwitchModel(name="q")
    quadratic.latency_curves = {
        (FlowModCommand.ADD, PriorityPattern.ASCENDING): LatencyCurve(
            op=FlowModCommand.ADD,
            pattern=PriorityPattern.ASCENDING,
            linear_ms=0.1,
            quadratic_ms=0.01,
        )
    }
    placer = FlowPlacer([quadratic])
    empty = placer.score("q", FlowRequirements(0), fill_level=0)
    full = placer.score("q", FlowRequirements(0), fill_level=1000)
    assert full.install_ms > empty.install_ms


def test_unknown_candidate_rejected():
    placer = FlowPlacer([SOFT])
    with pytest.raises(KeyError):
        placer.place(FlowRequirements(1), candidates=["nope"])


def test_end_to_end_with_real_inference():
    """Probe a real software and hardware profile; verify the paper's
    qualitative placement rule emerges from measurements alone."""
    soft_model = SwitchInferenceEngine(
        OVS_PROFILE, seed=2, size_probe_max_rules=128, latency_batch_sizes=(40, 80)
    ).infer(include_policy=False)
    hard_model = SwitchInferenceEngine(
        SWITCH_2, seed=2, size_probe_max_rules=4096, latency_batch_sizes=(40, 80)
    ).infer(include_policy=False)
    placer = FlowPlacer([soft_model, hard_model])
    # A setup-critical, low-volume flow belongs on the software switch;
    # a high-volume flow amortises the hardware install cost.
    latency_sensitive = FlowRequirements(expected_packets=1, setup_weight=20.0)
    assert placer.place(latency_sensitive).switch == "ovs"
    assert placer.place(FlowRequirements(expected_packets=50_000)).switch == "switch2"
    # The hardware install penalty is measurable either way.
    assert (
        placer.score("switch2", latency_sensitive).install_ms
        > placer.score("ovs", latency_sensitive).install_ms
    )


# -- topology tiers and shard partitioning -------------------------------------
def test_assign_tier_recognises_prefixes_and_fleet_suffixes():
    from repro.core.placement import SwitchTier, assign_tier

    assert assign_tier("core-3") is SwitchTier.CORE
    assert assign_tier("Spine7") is SwitchTier.CORE
    assert assign_tier("aggr-1") is SwitchTier.AGGREGATION
    assert assign_tier("agg2") is SwitchTier.AGGREGATION
    assert assign_tier("pod0-sw") is SwitchTier.AGGREGATION
    assert assign_tier("distribution-a") is SwitchTier.AGGREGATION
    # Vendor names and unknowns default to the edge tier.
    assert assign_tier("switch1") is SwitchTier.EDGE
    assert assign_tier("ovs") is SwitchTier.EDGE
    # build_fleet duplicate suffixes are stripped before matching.
    assert assign_tier("core-3#2") is SwitchTier.CORE
    assert assign_tier("aggr-1#17") is SwitchTier.AGGREGATION


def test_tier_counts_reports_every_tier():
    from repro.core.placement import SwitchTier, tier_counts

    counts = tier_counts(["core-0", "aggr-0", "edge-0", "edge-1", "sw"])
    assert counts == {
        SwitchTier.CORE: 1,
        SwitchTier.AGGREGATION: 1,
        SwitchTier.EDGE: 3,
    }
    assert tier_counts([]) == {tier: 0 for tier in SwitchTier}


def test_partition_names_round_robin_and_validation():
    from repro.core.placement import partition_names

    names = [f"sw-{i}" for i in range(7)]
    groups = partition_names(names, 3)
    assert groups == [[0, 3, 6], [1, 4], [2, 5]]
    # Empty groups are kept when shards exceed members.
    assert partition_names(["a"], 3) == [[0], [], []]
    with pytest.raises(ValueError, match="shards must be positive"):
        partition_names(names, 0)
    with pytest.raises(ValueError, match="unknown partition strategy"):
        partition_names(names, 2, strategy="hash")


def test_partition_names_tier_is_balanced_ascending_and_deterministic():
    from repro.core.placement import assign_tier, partition_names

    names = ["edge-0", "core-0", "aggr-0", "edge-1", "core-1", "aggr-1", "edge-2"]
    groups = partition_names(names, 3, strategy="tier")
    # Balanced: sizes differ by at most one and cover every index once.
    sizes = sorted(len(group) for group in groups)
    assert sizes == [2, 2, 3]
    assert sorted(index for group in groups for index in group) == list(range(7))
    # Ascending member order inside every group: the sharded engine's
    # global single-flight leader must be the lowest-indexed member.
    assert all(group == sorted(group) for group in groups)
    # Cores land together, ahead of aggregation, ahead of edge.
    tiers_by_group = [
        {assign_tier(names[index]).value for index in group} for group in groups
    ]
    assert tiers_by_group[0] == {"core", "aggregation"} or tiers_by_group[0] == {
        "core"
    }
    assert partition_names(names, 3, strategy="tier") == groups


def test_cut_dag_splits_local_and_barrier_edges_into_waves():
    from repro.core.placement import cut_dag
    from repro.core.requests import RequestDag
    from repro.openflow.match import IpPrefix, Match
    from repro.openflow.messages import FlowModCommand

    def match(index):
        return Match(eth_type=0x0800, ip_dst=IpPrefix(index, 32))

    dag = RequestDag()
    a = dag.new_request("core-0", FlowModCommand.ADD, match(1), priority=1)
    b = dag.new_request("core-0", FlowModCommand.ADD, match(2), priority=2)
    c = dag.new_request("edge-0", FlowModCommand.ADD, match(3), priority=3)
    d = dag.new_request("edge-0", FlowModCommand.ADD, match(4), priority=4)
    dag.add_dependency(a, b)  # local: same shard
    dag.add_dependency(b, c)  # barrier: core shard -> edge shard
    dag.add_dependency(c, d)  # local again
    cut = cut_dag(dag, {"core-0": 0, "edge-0": 1})
    assert cut.shards == 2
    assert cut.local_edges == (
        (a.request_id, b.request_id),
        (c.request_id, d.request_id),
    )
    assert cut.barrier_edges == ((b.request_id, c.request_id),)
    assert cut.barrier_count == 1
    # Waves: only the barrier edge raises the depth.
    assert cut.waves[a.request_id] == cut.waves[b.request_id] == 0
    assert cut.waves[c.request_id] == cut.waves[d.request_id] == 1
    assert cut.max_wave == 1
    assert cut.wave_members() == [
        [a.request_id, b.request_id],
        [c.request_id, d.request_id],
    ]


def test_cut_dag_rejects_unassigned_locations():
    from repro.core.placement import cut_dag
    from repro.core.requests import RequestDag
    from repro.openflow.match import IpPrefix, Match
    from repro.openflow.messages import FlowModCommand

    dag = RequestDag()
    dag.new_request(
        "mystery", FlowModCommand.ADD,
        Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32)), priority=1,
    )
    with pytest.raises(KeyError, match="no shard assignment"):
        cut_dag(dag, {"core-0": 0})
