"""Tests for SLO burn-rate alerting and the telemetry drift feed."""

import io

import pytest

from repro.obs.slo import (
    BurnWindow,
    DEFAULT_BURN_WINDOWS,
    DriftFeed,
    SloPolicy,
    SloTarget,
    TelemetryAlert,
    alerts_jsonl_lines,
    default_slo_targets,
    read_alerts_jsonl,
    write_alerts_jsonl,
)
from repro.obs.telemetry import TelemetryCollector, TelemetrySample


def _sample(t_ms, value, series="executor.install_ms", source="s1"):
    return TelemetrySample(t_ms=t_ms, series=series, source=source, value=value)


def _policy(threshold=10.0, budget=0.05, **kwargs):
    target = SloTarget(
        name="latency", series="executor.install_ms", threshold=threshold, budget=budget
    )
    return SloPolicy([target], **kwargs)


# -- validation -----------------------------------------------------------------------
def test_slo_target_validation():
    with pytest.raises(ValueError):
        SloTarget(name="x", series="s", threshold=1.0, budget=0.0)
    with pytest.raises(ValueError):
        SloTarget(name="x", series="s", threshold=1.0, budget=1.5)
    with pytest.raises(ValueError):
        SloTarget(name="x", series="s", threshold=1.0, aggregate="p75")


def test_burn_window_validation():
    with pytest.raises(ValueError):
        BurnWindow(short_ms=0.0, long_ms=10.0, burn_threshold=1.0)
    with pytest.raises(ValueError):
        BurnWindow(short_ms=20.0, long_ms=10.0, burn_threshold=1.0)
    with pytest.raises(ValueError):
        BurnWindow(short_ms=5.0, long_ms=10.0, burn_threshold=0.0)


def test_policy_rejects_empty_and_duplicate_targets():
    with pytest.raises(ValueError):
        SloPolicy([])
    target = SloTarget(name="x", series="s", threshold=1.0)
    with pytest.raises(ValueError):
        SloPolicy([target, target])


def test_default_burn_windows_ladder():
    page, ticket = DEFAULT_BURN_WINDOWS
    assert page.severity == "page" and ticket.severity == "ticket"
    assert page.burn_threshold > ticket.burn_threshold
    assert page.long_ms < ticket.long_ms


def test_default_slo_targets_cover_the_stock_series():
    targets = default_slo_targets()
    series = {t.series for t in targets}
    assert series == {
        "executor.install_ms",
        "scheduler.fault_deferrals",
        "switch.occupancy_ratio",
    }


# -- burn-rate mechanics ---------------------------------------------------------------
def test_sustained_burn_fires_once_per_episode():
    policy = _policy(threshold=10.0, budget=0.05, min_samples=3)
    # Every observation violates: burn = 1.0 / 0.05 = 20x on all windows.
    for t in range(0, 100, 5):
        policy.ingest(_sample(float(t), 50.0))
    first = policy.evaluate(100.0)
    assert [a.severity for a in first] == ["page", "ticket"]
    # Still burning at the next tick: the latch suppresses a re-page.
    policy.ingest(_sample(105.0, 50.0))
    assert policy.evaluate(110.0) == []


def test_burn_needs_both_windows():
    # A short burst that already ended: the long window still shows the
    # burn but the short window has recovered, so nothing fires.
    policy = _policy(
        threshold=10.0,
        budget=0.5,
        windows=[BurnWindow(short_ms=20.0, long_ms=200.0, burn_threshold=1.5)],
        min_samples=2,
    )
    for t in range(0, 60, 5):
        policy.ingest(_sample(float(t), 50.0))  # violations
    for t in range(60, 110, 5):
        policy.ingest(_sample(float(t), 1.0))  # recovered
    assert policy.evaluate(110.0) == []


def test_hysteresis_rearms_after_recovery():
    policy = _policy(
        threshold=10.0,
        budget=0.5,
        windows=[BurnWindow(short_ms=30.0, long_ms=60.0, burn_threshold=1.0)],
        min_samples=2,
    )
    for t in range(0, 60, 5):
        policy.ingest(_sample(float(t), 50.0))
    assert len(policy.evaluate(60.0)) == 1
    # Recovery: short window fills with healthy samples, latch re-arms.
    for t in range(60, 130, 5):
        policy.ingest(_sample(float(t), 1.0))
    assert policy.evaluate(130.0) == []
    # Second episode fires again.
    for t in range(130, 200, 5):
        policy.ingest(_sample(float(t), 50.0))
    assert len(policy.evaluate(200.0)) == 1
    assert len(policy.alerts) == 2


def test_min_samples_suppresses_cold_start():
    policy = _policy(threshold=10.0, budget=0.05, min_samples=5)
    for t in range(3):
        policy.ingest(_sample(float(t), 50.0))
    assert policy.evaluate(5.0) == []


def test_per_source_target_isolates_switches():
    target = SloTarget(
        name="occupancy",
        series="switch.occupancy_ratio",
        threshold=0.9,
        budget=0.5,
        aggregate="max",
        per_source=True,
    )
    policy = SloPolicy(
        [target],
        windows=[BurnWindow(short_ms=50.0, long_ms=100.0, burn_threshold=1.0)],
        min_samples=2,
    )
    for t in range(0, 50, 5):
        policy.ingest(_sample(float(t), 0.99, series="switch.occupancy_ratio", source="s1"))
        policy.ingest(_sample(float(t), 0.10, series="switch.occupancy_ratio", source="s2"))
    raised = policy.evaluate(50.0)
    assert [a.source for a in raised] == ["s1"]
    assert raised[0].value == pytest.approx(0.99)


def test_alert_detail_carries_burn_evidence():
    policy = _policy(threshold=10.0, budget=0.05, min_samples=2)
    for t in range(0, 100, 5):
        policy.ingest(_sample(float(t), 50.0))
    (page, _) = policy.evaluate(100.0)
    detail = dict(page.detail)
    assert detail["aggregate"] == "p99"
    assert float(detail["short_burn"]) >= 4.0
    assert float(detail["long_burn"]) >= 4.0


# -- collector integration ---------------------------------------------------------------
def test_policy_alerts_fire_at_cadence_tick_timestamps():
    collector = TelemetryCollector(interval_ms=10.0, window_ms=100.0)
    policy = collector.add_policy(_policy(threshold=10.0, budget=0.05, min_samples=2))
    for t in range(0, 100, 5):
        collector.observe_install("s1", "add", float(t), float(t) + 50.0)
    collector.finish(150.0)
    assert policy.alerts
    for alert in policy.alerts:
        assert alert.t_ms % collector.interval_ms == 0.0
    assert collector.alerts == sorted(
        collector.alerts, key=lambda a: (a.t_ms, a.name)
    )


# -- drift feed ----------------------------------------------------------------------------
def test_drift_feed_detects_mean_shift_and_emits_finding():
    feed = DriftFeed(
        series=("probe.rtt_ms",), window_ms=50.0, baseline_factor=5.0, threshold=0.5
    )
    for t in range(0, 200, 10):
        feed.ingest(_sample(float(t), 1.0, series="probe.rtt_ms"))
    assert feed.evaluate(200.0) == []  # flat: no drift
    for t in range(200, 250, 10):
        feed.ingest(_sample(float(t), 10.0, series="probe.rtt_ms"))
    raised = feed.evaluate(250.0)
    assert [a.name for a in raised] == ["drift-mean_shift"]
    (finding,) = feed.findings
    assert finding.property_path == "telemetry[probe.rtt_ms][s1].mean_shift"
    assert finding.after > finding.before


def test_drift_feed_churn_scoring_on_flagged_series():
    feed = DriftFeed(
        series=("switch.occupancy_ratio",),
        window_ms=50.0,
        baseline_factor=5.0,
        threshold=0.5,
        churn_series=("switch.occupancy_ratio",),
        min_samples=3,
    )
    # Oscillating occupancy: mean stays ~0.5 but churn is large.
    for index, t in enumerate(range(0, 250, 5)):
        value = 0.2 if index % 2 else 0.8
        feed.ingest(_sample(float(t), value, series="switch.occupancy_ratio", source="s3"))
    names = {a.name for a in feed.evaluate(250.0)}
    assert "drift-churn" in names


def test_drift_feed_hysteresis_one_alert_per_episode():
    feed = DriftFeed(series=("probe.rtt_ms",), window_ms=50.0, threshold=0.5)
    for t in range(0, 200, 10):
        feed.ingest(_sample(float(t), 1.0, series="probe.rtt_ms"))
    for t in range(200, 260, 10):
        feed.ingest(_sample(float(t), 10.0, series="probe.rtt_ms"))
    assert len(feed.evaluate(255.0)) == 1
    assert feed.evaluate(260.0) == []  # same episode


def test_drift_feed_ignores_unwatched_series():
    feed = DriftFeed(series=("probe.rtt_ms",))
    feed.ingest(_sample(0.0, 1.0, series="executor.install_ms"))
    assert feed.evaluate(10.0) == []


def test_drift_feed_validation():
    with pytest.raises(ValueError):
        DriftFeed(baseline_factor=1.0)


# -- alert serialization ---------------------------------------------------------------------
def _alerts():
    policy = _policy(threshold=10.0, budget=0.05, min_samples=2)
    for t in range(0, 100, 5):
        policy.ingest(_sample(float(t), 50.0))
    policy.evaluate(100.0)
    return policy.alerts


def test_alert_dict_roundtrip():
    for alert in _alerts():
        assert TelemetryAlert.from_dict(alert.to_dict()) == alert


def test_alerts_jsonl_roundtrip_and_determinism(tmp_path):
    alerts = _alerts()
    buffer = io.StringIO()
    assert write_alerts_jsonl(alerts, buffer) == len(alerts)
    assert read_alerts_jsonl(io.StringIO(buffer.getvalue())) == alerts
    path = str(tmp_path / "alerts.jsonl")
    write_alerts_jsonl(alerts, path)
    assert read_alerts_jsonl(path) == alerts
    assert alerts_jsonl_lines(_alerts()) == alerts_jsonl_lines(_alerts())
