"""Tests for the virtual-time race detector (repro.analysis.racecheck)."""

from repro.analysis.racecheck import (
    AccessKind,
    RaceSanitizer,
    check_races,
    run_racy_fixture,
    sanitized_fleet_run,
    verify_noop_sanitize,
)
from repro.core.fleet import ModelCache, build_fleet
from repro.core.inference import InferredSwitchModel
from repro.core.scores import TangoScoreDatabase
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import FIFO, LRU

FAST = {"size_probe_max_rules": 128, "latency_batch_sizes": (20, 60)}


def _profiles(count):
    policies = [FIFO, LRU]
    return [
        make_cache_test_profile(
            policies[i % len(policies)],
            layer_sizes=(32 + 16 * i, None),
            layer_means_ms=(0.5 + 0.1 * i, 4.5 + 0.5 * i),
            name=f"rc{i}",
        )
        for i in range(count)
    ]


# -- the access model ----------------------------------------------------------
def test_root_context_accesses_never_race():
    sanitizer = RaceSanitizer()
    sanitizer.make_simulator()
    scores = sanitizer.wrap_scores(TangoScoreDatabase())
    # Two conflicting writes, both from straight-line root code.
    scores.put("s1", "m", 1)
    scores.put("s1", "m", 2)
    result = sanitizer.check()
    assert result.accesses == 2
    assert result.events == 0
    assert result.findings == []


def test_same_time_unordered_writes_race():
    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    scores = sanitizer.wrap_scores(TangoScoreDatabase())
    sim.schedule_at(3.0, lambda: scores.put("s1", "m", 1))
    sim.schedule_at(3.0, lambda: scores.put("s1", "m", 2))
    sim.run()
    result = sanitizer.check()
    findings = result.findings
    assert len(findings) == 1
    assert findings[0].code == "TNG040"
    assert "t=3.000ms" in findings[0].location
    # Full access trace with (time, sequence) per entry.
    assert len(findings[0].trace) == 2
    assert all("t=3.000ms seq=" in line for line in findings[0].trace)


def test_scheduling_ancestry_is_a_happens_before_edge():
    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    scores = sanitizer.wrap_scores(TangoScoreDatabase())

    def writer():
        scores.put("s1", "m", 1)
        # Same virtual instant, but scheduled *by* the writer.
        sim.call_soon(lambda: scores.get("s1", "m"))

    sim.schedule_at(3.0, writer)
    sim.run()
    assert sanitizer.check().findings == []


def test_different_virtual_times_do_not_race():
    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    scores = sanitizer.wrap_scores(TangoScoreDatabase())
    sim.schedule_at(3.0, lambda: scores.put("s1", "m", 1))
    sim.schedule_at(4.0, lambda: scores.put("s1", "m", 2))
    sim.run()
    assert sanitizer.check().findings == []


def test_reads_alone_do_not_race():
    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    scores = sanitizer.wrap_scores(TangoScoreDatabase())
    scores.put("s1", "m", 1)
    sim.schedule_at(3.0, lambda: scores.get("s1", "m"))
    sim.schedule_at(3.0, lambda: scores.get("s1", "m"))
    sim.run()
    assert sanitizer.check().findings == []


def test_different_locations_do_not_race():
    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    scores = sanitizer.wrap_scores(TangoScoreDatabase())
    sim.schedule_at(3.0, lambda: scores.put("s1", "m", 1))
    sim.schedule_at(3.0, lambda: scores.put("s2", "m", 2))
    sim.run()
    assert sanitizer.check().findings == []


def test_commutative_metric_updates_do_not_race():
    from repro.obs.metrics import MetricsRegistry

    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    metrics = sanitizer.wrap_metrics(MetricsRegistry())
    sim.schedule_at(3.0, lambda: metrics.counter("fleet.ops").inc())
    sim.schedule_at(3.0, lambda: metrics.counter("fleet.ops").inc())
    sim.schedule_at(3.0, lambda: metrics.histogram("fleet.lat").observe(1.0))
    sim.run()
    assert sanitizer.check().findings == []
    # The underlying registry still saw every update.
    assert metrics.counter("fleet.ops").value == 2.0


def test_gauge_set_is_a_racy_write():
    from repro.obs.metrics import MetricsRegistry

    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    metrics = sanitizer.wrap_metrics(MetricsRegistry())
    sim.schedule_at(3.0, lambda: metrics.gauge("fleet.depth").set(1.0))
    sim.schedule_at(3.0, lambda: metrics.gauge("fleet.depth").set(2.0))
    sim.run()
    findings = sanitizer.check().findings
    assert len(findings) == 1
    assert "metric:fleet.depth" in findings[0].location


def test_whole_switch_scan_conflicts_with_same_time_write():
    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    scores = sanitizer.wrap_scores(TangoScoreDatabase())
    sim.schedule_at(3.0, lambda: scores.put("s1", "m", 1))
    sim.schedule_at(3.0, lambda: scores.records_for_switch("s1"))
    sim.run()
    findings = sanitizer.check().findings
    assert len(findings) == 1
    assert any("records_for_switch" in line for line in findings[0].trace)


def test_duplicate_pairs_reported_once():
    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    scores = sanitizer.wrap_scores(TangoScoreDatabase())

    def double_write(value):
        def action():
            scores.put("s1", "m", value)
            scores.put("s1", "m", value + 1)

        return action

    sim.schedule_at(3.0, double_write(0))
    sim.schedule_at(3.0, double_write(10))
    sim.run()
    # Four conflicting cross-event combinations, one event pair.
    assert len(sanitizer.check().findings) == 1


def test_check_races_result_summary_shape():
    result = run_racy_fixture()
    summary = result.summary()
    assert summary["findings"] == 1
    assert summary["accesses"] == result.accesses
    assert summary["events"] >= 2
    payload = summary["diagnostics"][0]
    assert payload["code"] == "TNG040"
    assert len(payload["trace"]) == 2


# -- sanitizer proxies delegate faithfully -------------------------------------
def test_sanitized_scores_delegate_every_operation():
    sanitizer = RaceSanitizer()
    scores = sanitizer.wrap_scores(TangoScoreDatabase())
    scores.put("s1", "m", 41, recorded_at_ms=2.0, source="test", k=1)
    assert scores.get("s1", "m", k=1) == 41
    assert scores.has("s1", "m", k=1)
    assert scores.get_record("s1", "m", k=1).source == "test"
    assert [r.value for r in scores.records_for_switch("s1")] == [41]
    assert scores.metrics_for_switch("s1") == ["m"]
    assert scores.switches() == ["s1"]
    assert len(scores) == 1
    assert scores.remove("s1", "m", k=1)
    assert len(scores) == 0
    kinds = [access.kind for access in sanitizer.log]
    assert AccessKind.WRITE in kinds and AccessKind.READ in kinds


def test_sanitized_cache_logs_against_the_db_location():
    sanitizer = RaceSanitizer()
    cache = sanitizer.wrap_cache(ModelCache(TangoScoreDatabase()))
    model = InferredSwitchModel(name="m1")
    cache.store("fp", model, origin="m1", recorded_at_ms=1.0)
    assert cache.lookup("fp") is not None
    assert cache.invalidate("fp")
    locations = {access.location for access in sanitizer.log}
    assert locations == {"db:__fleet__/model_cache?fingerprint=fp"}
    # Counter passthrough still works through the proxy.
    assert cache.hits == 1 and cache.stores == 1 and cache.invalidations == 1


# -- the regression fixture (both sides of the detector) -----------------------
def test_racy_fixture_flags_exactly_the_unordered_pair():
    result = run_racy_fixture()
    findings = result.findings
    assert len(findings) == 1
    finding = findings[0]
    assert "racy-fixture-0" in finding.location
    assert "safe-fixture" not in finding.location
    owners = "".join(finding.trace)
    assert "owner=racy-a" in owners and "owner=racy-b" in owners


def test_racy_fixture_is_seed_parameterised():
    result = run_racy_fixture(seed=7)
    assert "racy-fixture-7" in result.findings[0].location


# -- fleet integration ---------------------------------------------------------
def test_clean_fleet_run_reports_zero_findings():
    members = build_fleet(_profiles(2), 4)
    fleet_result, races = sanitized_fleet_run(members, seed=0, **FAST)
    assert len(fleet_result.members) == 4
    assert races.findings == []
    assert races.accesses > 0
    assert races.events > 0


def test_faulted_fleet_run_reports_zero_findings():
    from repro.faults import FaultInjector, RetryPolicy
    from repro.netem.scenarios import FAULT_SCENARIOS

    plan = FAULT_SCENARIOS["lossy"].plan(3)
    members = build_fleet(_profiles(2), 3)
    fleet_result, races = sanitized_fleet_run(
        members,
        seed=3,
        fault_injector=FaultInjector(plan),
        retry_policy=RetryPolicy(),
        **FAST,
    )
    assert len(fleet_result.members) == 3
    assert races.findings == []


def test_sanitized_run_is_byte_identical_to_bare_run():
    # AssertionError from verify_noop_sanitize is the failure mode.
    payload = verify_noop_sanitize()
    assert payload["findings"] == 0
    assert payload["accesses"] > 0


def test_check_races_empty_log_is_clean():
    from repro.analysis.racecheck import AccessLog
    from repro.sim.events import ProvenanceRecorder

    result = check_races(AccessLog(), ProvenanceRecorder())
    assert result.findings == []
    assert result.accesses == 0
