"""Tests for the Tango controller facade and score database."""

import pytest

from repro.core.api import Tango
from repro.core.requests import RequestDag
from repro.core.scores import TangoScoreDatabase
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.switches.profiles import SWITCH_3, make_cache_test_profile
from repro.tables.policies import FIFO


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


# -- score database ---------------------------------------------------------------
def test_scores_put_get_roundtrip():
    db = TangoScoreDatabase()
    db.put("s1", "metric", 42, foo="bar")
    assert db.get("s1", "metric", foo="bar") == 42
    assert db.get("s1", "metric") is None  # different params
    assert db.get("s1", "metric", default=7) == 7


def test_scores_has_and_len():
    db = TangoScoreDatabase()
    assert not db.has("s", "m")
    db.put("s", "m", 1)
    assert db.has("s", "m")
    assert len(db) == 1


def test_scores_overwrite_same_key():
    db = TangoScoreDatabase()
    db.put("s", "m", 1)
    db.put("s", "m", 2)
    assert db.get("s", "m") == 2
    assert len(db) == 1


def test_scores_per_switch_queries():
    db = TangoScoreDatabase()
    db.put("a", "m1", 1)
    db.put("a", "m2", 2)
    db.put("b", "m1", 3)
    assert db.metrics_for_switch("a") == ["m1", "m2"]
    assert len(db.records_for_switch("b")) == 1


# -- Tango facade ------------------------------------------------------------------
def test_register_profile_and_duplicate_rejected():
    tango = Tango(seed=1)
    name = tango.register_profile(SWITCH_3)
    assert name == "switch3"
    assert tango.switch_names == ["switch3"]
    with pytest.raises(ValueError):
        tango.register_profile(SWITCH_3)


def test_register_custom_name():
    tango = Tango(seed=1)
    assert tango.register_profile(SWITCH_3, name="edge-1") == "edge-1"
    assert tango.switch("edge-1") is not None


def test_register_existing_switch():
    tango = Tango(seed=1)
    switch = SWITCH_3.build(seed=5)
    tango.register_switch(switch)
    assert tango.switch("switch3") is switch


def test_infer_requires_profile():
    tango = Tango(seed=1)
    switch = SWITCH_3.build(seed=5)
    tango.register_switch(switch)
    with pytest.raises(KeyError):
        tango.infer("switch3")


def test_infer_small_profile_end_to_end():
    tango = Tango(seed=2)
    profile = make_cache_test_profile(FIFO, (32, None), layer_means_ms=(0.5, 3.0))
    name = tango.register_profile(profile)
    model = tango.infer(
        name,
        include_policy=True,
        size_probe_max_rules=256,
        latency_batch_sizes=(40, 80),
    )
    assert model.layer_sizes[0] is not None
    # The tiny cache (32 of 256 rules) caps the sampling budget; accuracy
    # at the paper's scale is asserted in test_core_size_inference.
    assert abs(model.layer_sizes[0] - 32) <= 4
    assert model.policy_probe is not None
    assert tango.model(name) is model
    # Inference results land in the shared score database.
    assert tango.scores.has(profile.name, "size_probe")


def test_schedule_via_facade():
    tango = Tango(seed=3)
    profile = make_cache_test_profile(FIFO, (64, None), layer_means_ms=(0.5, 3.0))
    tango.register_profile(profile, name="sw")
    dag = RequestDag()
    for i in range(10):
        dag.new_request("sw", FlowModCommand.ADD, _match(i), priority=i)
    result = tango.schedule(dag)
    assert result.total_requests == 10
    assert result.makespan_ms > 0


@pytest.mark.parametrize("variant", ["basic", "prefix", "concurrent"])
def test_all_scheduler_variants(variant):
    tango = Tango(seed=4)
    profile = make_cache_test_profile(FIFO, (64, None), layer_means_ms=(0.5, 3.0))
    tango.register_profile(profile, name="sw")
    dag = RequestDag()
    first = dag.new_request("sw", FlowModCommand.ADD, _match(0))
    dag.new_request("sw", FlowModCommand.ADD, _match(1), after=[first])
    result = tango.schedule(dag, variant=variant)
    assert result.total_requests == 2


def test_unknown_variant_rejected():
    tango = Tango(seed=4)
    profile = make_cache_test_profile(FIFO, (64, None), layer_means_ms=(0.5, 3.0))
    tango.register_profile(profile, name="sw")
    dag = RequestDag()
    dag.new_request("sw", FlowModCommand.ADD, _match(0))
    with pytest.raises(ValueError):
        tango.schedule(dag, variant="bogus")


def test_measured_patterns_used_after_inference():
    tango = Tango(seed=5)
    profile = make_cache_test_profile(FIFO, (64, None), layer_means_ms=(0.5, 3.0))
    name = tango.register_profile(profile, name="sw")
    tango.infer(name, include_policy=False)
    dag = RequestDag()
    dag.new_request("sw", FlowModCommand.ADD, _match(0))
    scheduler = tango.make_scheduler(dag)
    # Patterns must come from the inferred model, not the defaults.
    assert all("ASCEND" in p.name or "DESCEND" in p.name for p in scheduler.oracle.patterns)
    model = tango.model(name)
    assert len(model.rewrite_patterns()) == 2
