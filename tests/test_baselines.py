"""Tests for the Dionysus and naive baseline schedulers."""

import pytest

from repro.baselines import DionysusScheduler, FifoOrderScheduler, RandomOrderScheduler
from repro.core.requests import RequestDag
from repro.core.scheduler import NetworkExecutor
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _switch(name, add=1.0):
    return SimulatedSwitch(
        name=name,
        layers=[TableLayer("t", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=add,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=0.5,
            del_ms=0.25,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _executor(*names):
    return NetworkExecutor(
        {n: ControlChannel(_switch(n), rtt=ConstantLatency(0.0)) for n in names}
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def test_dionysus_completes_dag():
    executor = _executor("a", "b")
    dag = RequestDag()
    first = dag.new_request("a", FlowModCommand.ADD, _match(1))
    dag.new_request("b", FlowModCommand.ADD, _match(2), after=[first])
    result = DionysusScheduler(executor).schedule(dag)
    assert result.total_requests == 2
    assert result.makespan_ms > 0


def test_dionysus_prioritises_critical_path():
    """The head of a long chain must be issued before independent requests."""
    executor = _executor("a")
    dag = RequestDag()
    for i in range(3):
        dag.new_request("a", FlowModCommand.ADD, _match(i))
    head = dag.new_request("a", FlowModCommand.ADD, _match(10))
    dag.new_request("a", FlowModCommand.ADD, _match(11), after=[head])
    result = DionysusScheduler(executor).schedule(dag)
    order = [r.request.request_id for r in result.records]
    assert order[0] == head.request_id


def test_dionysus_pipelines_dependents():
    executor = _executor("a", "b")
    dag = RequestDag()
    for i in range(4):
        parent = dag.new_request("a", FlowModCommand.ADD, _match(i))
        dag.new_request("b", FlowModCommand.ADD, _match(10 + i), after=[parent])
    result = DionysusScheduler(executor).schedule(dag)
    # 4 adds on each switch; with pipelining the makespan is well under
    # the serial 8ms.
    assert result.makespan_ms < 6.0


def test_dionysus_respects_dependencies():
    executor = _executor("a", "b")
    dag = RequestDag()
    first = dag.new_request("a", FlowModCommand.ADD, _match(1))
    second = dag.new_request("b", FlowModCommand.ADD, _match(2), after=[first])
    result = DionysusScheduler(executor).schedule(dag)
    records = {r.request.request_id: r for r in result.records}
    assert (
        records[second.request_id].started_ms
        >= records[first.request_id].finished_ms
    )


def test_random_order_is_seed_deterministic():
    def run(seed):
        executor = _executor("a")
        dag = RequestDag()
        for i in range(8):
            dag.new_request("a", FlowModCommand.ADD, _match(i), priority=i)
        result = RandomOrderScheduler(executor, seed=seed).schedule(dag)
        return [r.request.request_id for r in result.records]

    assert run(1) == run(1)
    assert run(1) != run(2)


def test_fifo_order_preserves_creation_order():
    executor = _executor("a")
    dag = RequestDag()
    requests = [
        dag.new_request("a", FlowModCommand.ADD, _match(i), priority=9 - i)
        for i in range(5)
    ]
    result = FifoOrderScheduler(executor).schedule(dag)
    assert [r.request.request_id for r in result.records] == [
        r.request_id for r in requests
    ]


def test_baselines_and_tango_issue_same_requests():
    from repro.core.scheduler import BasicTangoScheduler

    def dag_factory():
        dag = RequestDag()
        for i in range(6):
            dag.new_request("a", FlowModCommand.ADD, _match(i), priority=i)
        return dag

    ids = set(r.request_id for r in dag_factory().requests)
    for scheduler_cls in (DionysusScheduler, FifoOrderScheduler):
        result = scheduler_cls(_executor("a")).schedule(dag_factory())
        assert set(r.request.request_id for r in result.records) == ids
