"""Tests for the multi-level ranked table stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.openflow.actions import OutputAction
from repro.openflow.errors import TableFullError
from repro.openflow.match import IpPrefix, Match, MatchKind, PacketFields
from repro.tables.policies import FIFO, LIFO, LRU, LFU, PRIORITY_CACHE
from repro.tables.stack import RankedTableStack, TableLayer
from repro.tables.tcam import TcamGeometry, TcamMode

ACTIONS = (OutputAction(1),)


def _match(i, wide=False):
    if wide:
        return Match(eth_dst=i, eth_type=0x0800, ip_dst=IpPrefix(i, 32))
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def _stack(layers=None, policy=FIFO):
    layers = layers or [TableLayer("fast", capacity=2), TableLayer("slow", capacity=None)]
    return RankedTableStack(layers, policy)


# -- construction --------------------------------------------------------------
def test_needs_layers():
    with pytest.raises(ValueError):
        RankedTableStack([], FIFO)


def test_only_last_layer_may_be_unbounded():
    with pytest.raises(ValueError):
        RankedTableStack(
            [TableLayer("a", capacity=None), TableLayer("b", capacity=4)], FIFO
        )


def test_layer_rejects_capacity_and_geometry_together():
    with pytest.raises(ValueError):
        TableLayer("x", capacity=4, geometry=TcamGeometry(slot_units=4))


# -- insert / delete -----------------------------------------------------------
def test_insert_and_lookup():
    stack = _stack()
    entry = stack.insert(_match(1), 5, ACTIONS, now_ms=0.0)
    assert stack.lookup_exact(_match(1)) is entry
    assert stack.lookup_exact(_match(1), priority=5) is entry
    assert stack.lookup_exact(_match(1), priority=6) is None
    assert _match(1) in stack
    assert len(stack) == 1


def test_remove():
    stack = _stack()
    entry = stack.insert(_match(1), 5, ACTIONS, now_ms=0.0)
    stack.remove(entry)
    assert len(stack) == 0
    assert stack.lookup_exact(_match(1)) is None


def test_remove_unknown_rejected():
    stack = _stack()
    entry = stack.insert(_match(1), 5, ACTIONS, now_ms=0.0)
    stack.remove(entry)
    with pytest.raises(KeyError):
        stack.remove(entry)


def test_bounded_stack_rejects_overflow():
    stack = RankedTableStack([TableLayer("only", capacity=2)], FIFO)
    stack.insert(_match(1), 1, ACTIONS, 0.0)
    stack.insert(_match(2), 1, ACTIONS, 1.0)
    with pytest.raises(TableFullError):
        stack.insert(_match(3), 1, ACTIONS, 2.0)


def test_unbounded_last_layer_absorbs_overflow():
    stack = _stack()
    for i in range(10):
        stack.insert(_match(i), 1, ACTIONS, float(i))
    assert len(stack) == 10
    assert stack.layer_occupancy() == [2, 8]


def test_hard_limit_enforced():
    stack = RankedTableStack([TableLayer("u", capacity=None)], FIFO, hard_limit=3)
    for i in range(3):
        stack.insert(_match(i), 1, ACTIONS, float(i))
    with pytest.raises(TableFullError):
        stack.insert(_match(99), 1, ACTIONS, 9.0)


# -- placement by policy -----------------------------------------------------------
def test_fifo_keeps_oldest_in_fast_layer():
    stack = _stack(policy=FIFO)
    entries = [stack.insert(_match(i), 1, ACTIONS, float(i)) for i in range(5)]
    assert stack.layer_of(entries[0]) == 0
    assert stack.layer_of(entries[1]) == 0
    assert all(stack.layer_of(e) == 1 for e in entries[2:])


def test_lifo_keeps_newest_in_fast_layer():
    stack = _stack(policy=LIFO)
    entries = [stack.insert(_match(i), 1, ACTIONS, float(i)) for i in range(5)]
    assert stack.layer_of(entries[4]) == 0
    assert stack.layer_of(entries[3]) == 0
    assert all(stack.layer_of(e) == 1 for e in entries[:3])


def test_lru_promotion_on_touch():
    stack = _stack(policy=LRU)
    entries = [stack.insert(_match(i), 1, ACTIONS, float(i)) for i in range(4)]
    for i, entry in enumerate(entries):
        stack.touch(entry, now_ms=10.0 + i)
    # Most recently used two are cached.
    assert stack.layer_of(entries[3]) == 0
    assert stack.layer_of(entries[2]) == 0
    assert stack.layer_of(entries[0]) == 1
    # Touch an evicted entry: it must displace the least recent cached one.
    stack.touch(entries[0], now_ms=99.0)
    assert stack.layer_of(entries[0]) == 0
    assert stack.layer_of(entries[2]) == 1


def test_lfu_ranks_by_traffic():
    stack = _stack(policy=LFU)
    entries = [stack.insert(_match(i), 1, ACTIONS, 0.0) for i in range(4)]
    stack.touch(entries[1], 1.0, packets=10)
    stack.touch(entries[3], 2.0, packets=5)
    assert stack.layer_of(entries[1]) == 0
    assert stack.layer_of(entries[3]) == 0
    assert stack.layer_of(entries[0]) == 1


def test_priority_cache_ranks_by_priority():
    stack = _stack(policy=PRIORITY_CACHE)
    low = stack.insert(_match(1), 1, ACTIONS, 0.0)
    mid = stack.insert(_match(2), 5, ACTIONS, 1.0)
    high = stack.insert(_match(3), 9, ACTIONS, 2.0)
    assert stack.layer_of(high) == 0
    assert stack.layer_of(mid) == 0
    assert stack.layer_of(low) == 1


def test_update_priority_reranks():
    stack = _stack(policy=PRIORITY_CACHE)
    entries = [stack.insert(_match(i), i, ACTIONS, 0.0) for i in range(4)]
    assert stack.layer_of(entries[0]) == 1
    stack.update_priority(entries[0], 100)
    assert stack.layer_of(entries[0]) == 0


# -- TCAM geometry layers -------------------------------------------------------
def test_geometry_layer_narrow_capacity():
    geometry = TcamGeometry(slot_units=4, mode=TcamMode.ADAPTIVE, wide_cost=2.0)
    stack = RankedTableStack(
        [TableLayer("tcam", geometry=geometry), TableLayer("sw", capacity=None)], FIFO
    )
    for i in range(6):
        stack.insert(_match(i), 1, ACTIONS, float(i))
    assert stack.layer_occupancy() == [4, 2]


def test_geometry_layer_wide_entries_cost_double():
    geometry = TcamGeometry(slot_units=4, mode=TcamMode.ADAPTIVE, wide_cost=2.0)
    stack = RankedTableStack(
        [TableLayer("tcam", geometry=geometry), TableLayer("sw", capacity=None)], FIFO
    )
    for i in range(4):
        stack.insert(_match(i, wide=True), 1, ACTIONS, float(i))
    assert stack.layer_occupancy() == [2, 2]


def test_geometry_mixed_widths_walk():
    geometry = TcamGeometry(slot_units=3, mode=TcamMode.ADAPTIVE, wide_cost=2.0)
    stack = RankedTableStack(
        [TableLayer("tcam", geometry=geometry), TableLayer("sw", capacity=None)], FIFO
    )
    first = stack.insert(_match(0, wide=True), 1, ACTIONS, 0.0)  # cost 2
    second = stack.insert(_match(1), 1, ACTIONS, 1.0)  # cost 1 -> fits (3 units)
    third = stack.insert(_match(2), 1, ACTIONS, 2.0)  # overflow
    assert stack.layer_of(first) == 0
    assert stack.layer_of(second) == 0
    assert stack.layer_of(third) == 1


def test_geometry_bounded_rejects_when_full():
    geometry = TcamGeometry(slot_units=2, mode=TcamMode.DOUBLE_WIDE)
    stack = RankedTableStack([TableLayer("tcam", geometry=geometry)], FIFO)
    stack.insert(_match(0), 1, ACTIONS, 0.0)
    with pytest.raises(TableFullError):
        stack.insert(_match(1), 1, ACTIONS, 1.0)


# -- packet matching ----------------------------------------------------------------
def test_match_packet_picks_highest_priority():
    stack = _stack()
    low = stack.insert(Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 8)), 1, ACTIONS, 0.0)
    high = stack.insert(Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000005, 32)), 9, ACTIONS, 1.0)
    best = stack.match_packet(PacketFields(ip_dst=0x0A000005))
    assert best is high
    other = stack.match_packet(PacketFields(ip_dst=0x0A000006))
    assert other is low


def test_match_packet_none_when_no_rule():
    stack = _stack()
    assert stack.match_packet(PacketFields(ip_dst=1)) is None


def test_match_packet_uses_eth_dst_index():
    stack = _stack()
    rule = stack.insert(Match(eth_dst=42), 1, ACTIONS, 0.0)
    assert stack.match_packet(PacketFields(eth_dst=42)) is rule
    assert stack.match_packet(PacketFields(eth_dst=43)) is None


def test_entries_by_rank_order():
    stack = _stack(policy=FIFO)
    entries = [stack.insert(_match(i), 1, ACTIONS, float(i)) for i in range(4)]
    assert stack.entries_by_rank() == entries


def test_clear_resets_everything():
    stack = _stack()
    stack.insert(_match(1), 1, ACTIONS, 0.0)
    stack.clear()
    assert len(stack) == 0
    assert stack.layer_occupancy() == [0, 0]
    assert stack.match_packet(PacketFields(ip_dst=1)) is None


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),  # match id
            st.integers(min_value=0, max_value=9),  # priority
            st.sampled_from(["insert", "touch", "delete"]),
        ),
        max_size=60,
    )
)
def test_stack_invariants_under_random_operations(ops):
    """Occupancy always honours capacities; rank bookkeeping stays consistent."""
    stack = RankedTableStack(
        [TableLayer("fast", capacity=3), TableLayer("slow", capacity=None)], LRU
    )
    live = {}
    now = 0.0
    for match_id, priority, op in ops:
        now += 1.0
        if op == "insert" and match_id not in live:
            live[match_id] = stack.insert(_match(match_id), priority, ACTIONS, now)
        elif op == "touch" and match_id in live:
            stack.touch(live[match_id], now)
        elif op == "delete" and match_id in live:
            stack.remove(live.pop(match_id))
        occupancy = stack.layer_occupancy()
        assert occupancy[0] <= 3
        assert sum(occupancy) == len(live)
        for entry in live.values():
            assert 0 <= stack.layer_of(entry) <= 1
