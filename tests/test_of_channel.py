"""Tests for messages, errors, and the control channel."""

import pytest

from repro.openflow.actions import ControllerAction, DropAction, OutputAction
from repro.openflow.channel import ControlChannel
from repro.openflow.errors import TableFullError
from repro.openflow.match import IpPrefix, Match, PacketFields
from repro.openflow.messages import (
    FlowMod,
    FlowModCommand,
    FlowStatsRequest,
    PacketOut,
)
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


def _tiny_switch(capacity=4):
    return SimulatedSwitch(
        name="tiny",
        layers=[TableLayer("tcam", capacity=capacity)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5)],
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=1.0,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=0.5,
            del_ms=0.5,
            jitter_std_frac=0.0,
        ),
        seed=1,
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


# -- message validation -------------------------------------------------------
def test_flow_mod_negative_priority_rejected():
    with pytest.raises(ValueError):
        FlowMod(FlowModCommand.ADD, _match(1), priority=-1)


def test_flow_mod_add_requires_actions():
    with pytest.raises(ValueError):
        FlowMod(FlowModCommand.ADD, _match(1), actions=())


def test_flow_mod_delete_allows_empty_actions():
    FlowMod(FlowModCommand.DELETE, _match(1), actions=())


def test_output_action_validates_port():
    with pytest.raises(ValueError):
        OutputAction(port=-1)


# -- channel timing --------------------------------------------------------------
def test_flow_mod_advances_clock_by_channel_and_switch_time():
    switch = _tiny_switch()
    channel = ControlChannel(switch, rtt=ConstantLatency(0.1))
    record = channel.send_flow_mod(FlowMod(FlowModCommand.ADD, _match(1)))
    # 0.1 down + 1.0 switch + 0.1 up.
    assert record.latency_ms == pytest.approx(1.2)


def test_channel_history_accumulates():
    switch = _tiny_switch()
    channel = ControlChannel(switch, rtt=ConstantLatency(0.0))
    channel.send_flow_mod(FlowMod(FlowModCommand.ADD, _match(1)))
    channel.send_flow_mod(FlowMod(FlowModCommand.MODIFY, _match(1)))
    kinds = [r.kind for r in channel.history]
    assert kinds == ["flow_mod:add", "flow_mod:mod"]
    assert channel.total_control_time_ms() == pytest.approx(1.5)


def test_channel_charges_time_even_on_rejection():
    switch = _tiny_switch(capacity=1)
    channel = ControlChannel(switch, rtt=ConstantLatency(0.1))
    channel.send_flow_mod(FlowMod(FlowModCommand.ADD, _match(1)))
    before = switch.clock.now_ms
    with pytest.raises(TableFullError):
        channel.send_flow_mod(FlowMod(FlowModCommand.ADD, _match(2)))
    assert switch.clock.now_ms > before


def test_packet_out_returns_rtt_with_path_delay():
    switch = _tiny_switch()
    channel = ControlChannel(switch, rtt=ConstantLatency(0.1))
    channel.send_flow_mod(FlowMod(FlowModCommand.ADD, _match(3)))
    rtt = channel.send_packet_out(PacketOut(PacketFields(ip_dst=3)))
    assert rtt == pytest.approx(0.1 + 0.5 + 0.1)


def test_packet_out_miss_takes_control_path():
    switch = _tiny_switch()
    channel = ControlChannel(switch, rtt=ConstantLatency(0.1))
    rtt = channel.send_packet_out(PacketOut(PacketFields(ip_dst=99)))
    assert rtt == pytest.approx(0.1 + 5.0 + 0.1)


def test_barrier_round_trip():
    switch = _tiny_switch()
    channel = ControlChannel(switch, rtt=ConstantLatency(0.2))
    reply = channel.send_barrier()
    assert reply.xid == 1
    assert channel.send_barrier().xid == 2


def test_flow_stats_reports_installed_rules():
    switch = _tiny_switch()
    channel = ControlChannel(switch, rtt=ConstantLatency(0.0))
    channel.send_flow_mod(FlowMod(FlowModCommand.ADD, _match(1), priority=9))
    reply = channel.request_flow_stats(FlowStatsRequest())
    assert len(reply.entries) == 1
    assert reply.entries[0].priority == 9
    assert reply.entries[0].table_name == "tcam"


def test_flow_stats_filtered_by_match():
    switch = _tiny_switch()
    channel = ControlChannel(switch, rtt=ConstantLatency(0.0))
    channel.send_flow_mod(FlowMod(FlowModCommand.ADD, _match(1)))
    channel.send_flow_mod(FlowMod(FlowModCommand.ADD, _match(2)))
    reply = channel.request_flow_stats(FlowStatsRequest(match=_match(2)))
    assert len(reply.entries) == 1


def test_reset_history():
    switch = _tiny_switch()
    channel = ControlChannel(switch, rtt=ConstantLatency(0.0))
    channel.send_flow_mod(FlowMod(FlowModCommand.ADD, _match(1)))
    channel.reset_history()
    assert channel.history == []
    assert channel.total_control_time_ms() == 0.0
