"""Tests for the OVS microflow-caching model (paper Figure 2a behaviour)."""

import pytest

from repro.openflow.actions import ControllerAction, OutputAction
from repro.openflow.match import IpPrefix, Match, PacketFields
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel
from repro.switches.ovs import OvsSwitch
from repro.switches.profiles import OVS_PROFILE


def _ovs(kernel_capacity=100):
    return OvsSwitch(
        name="ovs-test",
        kernel_delay=ConstantLatency(1.0),
        userspace_delay=ConstantLatency(4.0),
        control_path_delay=ConstantLatency(5.0),
        cost_model=ControlCostModel(
            add_base_ms=0.05,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=0.05,
            del_ms=0.05,
            jitter_std_frac=0.0,
        ),
        seed=2,
        kernel_capacity=kernel_capacity,
    )


def _add(switch, match, priority=100):
    switch.apply_flow_mod(FlowMod(FlowModCommand.ADD, match, priority=priority))


def test_first_packet_slow_second_fast():
    """The paper's two-tier per-flow delay: slow then fast (Fig 2a)."""
    ovs = _ovs()
    _add(ovs, Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32)))
    first = ovs.forward_packet(PacketFields(ip_dst=1))
    second = ovs.forward_packet(PacketFields(ip_dst=1))
    assert first == pytest.approx(4.0)
    assert second == pytest.approx(1.0)
    assert ovs.kernel_hits == 1


def test_miss_takes_control_path():
    ovs = _ovs()
    assert ovs.forward_packet(PacketFields(ip_dst=9)) == pytest.approx(5.0)
    assert ovs.stats.packets_to_controller == 1


def test_one_to_n_microflow_mapping():
    """One wildcard rule spawns one kernel microflow per distinct flow."""
    ovs = _ovs()
    _add(ovs, Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 8)))
    for i in range(5):
        ovs.forward_packet(PacketFields(ip_dst=0x0A000000 + i))
    assert ovs.kernel_cache_size == 5
    # Each microflow now serves its own packets from the kernel.
    assert ovs.forward_packet(PacketFields(ip_dst=0x0A000002)) == pytest.approx(1.0)


def test_kernel_capacity_evicts_oldest():
    ovs = _ovs(kernel_capacity=2)
    _add(ovs, Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 8)))
    for i in range(3):
        ovs.forward_packet(PacketFields(ip_dst=0x0A000000 + i))
    assert ovs.kernel_cache_size == 2
    # The first microflow was evicted: slow path again.
    assert ovs.forward_packet(PacketFields(ip_dst=0x0A000000)) == pytest.approx(4.0)


def test_deleting_rule_invalidates_microflow():
    ovs = _ovs()
    match = Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32))
    _add(ovs, match)
    ovs.forward_packet(PacketFields(ip_dst=1))
    ovs.apply_flow_mod(FlowMod(FlowModCommand.DELETE, match, actions=()))
    # The stale kernel entry must not serve the packet.
    assert ovs.forward_packet(PacketFields(ip_dst=1)) == pytest.approx(5.0)


def test_controller_action_rule_punts():
    ovs = _ovs()
    _add_match = Match(eth_type=0x0800, ip_dst=IpPrefix(2, 32))
    ovs.apply_flow_mod(
        FlowMod(FlowModCommand.ADD, _add_match, priority=1, actions=(ControllerAction(),))
    )
    assert ovs.forward_packet(PacketFields(ip_dst=2)) == pytest.approx(5.0)
    assert ovs.kernel_cache_size == 0


def test_install_cost_priority_independent():
    """OVS shows no priority-order effect (paper Fig 3c, flat curves)."""
    ascending = _ovs()
    descending = _ovs()
    for i in range(50):
        _add(ascending, Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32)), priority=i + 1)
    for i in range(50):
        _add(
            descending,
            Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32)),
            priority=50 - i,
        )
    assert ascending.clock.now_ms == pytest.approx(descending.clock.now_ms)


def test_reset_rules_clears_kernel_cache():
    ovs = _ovs()
    _add(ovs, Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32)))
    ovs.forward_packet(PacketFields(ip_dst=1))
    ovs.reset_rules()
    assert ovs.kernel_cache_size == 0
    assert ovs.kernel_hits == 0
    assert ovs.num_flows == 0


def test_profile_builds_ovs_switch():
    switch = OVS_PROFILE.build(seed=3)
    assert isinstance(switch, OvsSwitch)
    assert switch.name == "ovs"
