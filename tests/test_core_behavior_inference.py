"""Tests for control-plane behaviour inference (traffic-driven caching)."""

import pytest

from repro.core.behavior_inference import BehaviorProber
from repro.core.probing import ProbingEngine
from repro.openflow.channel import ControlChannel
from repro.sim.rng import SeededRng
from repro.switches.profiles import OVS_PROFILE, SWITCH_1, SWITCH_2, make_cache_test_profile
from repro.tables.policies import FIFO, LRU


def _probe(profile, seed=3, **kwargs):
    switch = profile.build(seed=seed)
    engine = ProbingEngine(ControlChannel(switch), rng=SeededRng(seed).child("beh"))
    return BehaviorProber(engine, **kwargs).probe()


def test_flow_count_validated(small_engine):
    with pytest.raises(ValueError):
        BehaviorProber(small_engine, flows=2)


def test_ovs_classified_as_traffic_driven():
    """OVS's first-packet-slow signature (Figure 2a) is detected."""
    result = _probe(OVS_PROFILE)
    assert result.traffic_driven_caching
    assert result.first_packet_penalty_ms > 1.0
    assert result.second_packet_ms < result.first_packet_ms


def test_switch1_classified_as_traffic_independent():
    """Switch #1's FIFO placement: first == second packet delay (Fig 2b)."""
    result = _probe(SWITCH_1)
    assert not result.traffic_driven_caching
    assert abs(result.first_packet_penalty_ms) < 0.3


def test_switch2_classified_as_traffic_independent():
    result = _probe(SWITCH_2)
    assert not result.traffic_driven_caching


def test_generic_cache_switch_not_traffic_driven():
    profile = make_cache_test_profile(FIFO, (64, None), layer_means_ms=(0.5, 3.0))
    result = _probe(profile)
    assert not result.traffic_driven_caching


def test_lru_promotion_is_not_mistaken_for_microflow_caching():
    """LRU promotes on use, but a cached flow's first probe is already
    fast -- no first-packet penalty, so no false positive."""
    profile = make_cache_test_profile(LRU, (64, None), layer_means_ms=(0.5, 3.0))
    result = _probe(profile, flows=40)
    assert not result.traffic_driven_caching


def test_control_path_baseline_measured():
    result = _probe(SWITCH_2)
    assert result.control_path_ms > 6.0


def test_result_stored_in_scores():
    switch = OVS_PROFILE.build(seed=4)
    engine = ProbingEngine(ControlChannel(switch), rng=SeededRng(4).child("b"))
    result = BehaviorProber(engine).probe()
    assert engine.scores.get("ovs", "behavior_probe") is result


def test_flows_probed_count():
    result = _probe(OVS_PROFILE, flows=16)
    assert result.flows_probed == 16
