"""Tests for latency models."""

import pytest

from repro.sim.latency import (
    ConstantLatency,
    GaussianLatency,
    ShiftedExponentialLatency,
)
from repro.sim.rng import SeededRng


@pytest.fixture
def rng():
    return SeededRng(123)


def test_constant_returns_value(rng):
    model = ConstantLatency(2.5)
    assert model.sample(rng) == 2.5
    assert model.mean_ms == 2.5


def test_constant_negative_rejected():
    with pytest.raises(ValueError):
        ConstantLatency(-0.1)


def test_gaussian_mean_is_close(rng):
    model = GaussianLatency(mean=5.0, std=0.5)
    samples = [model.sample(rng) for _ in range(2000)]
    assert abs(sum(samples) / len(samples) - 5.0) < 0.1


def test_gaussian_floor_applies(rng):
    model = GaussianLatency(mean=1.0, std=10.0)
    assert all(model.sample(rng) >= 0.1 for _ in range(500))


def test_gaussian_custom_floor(rng):
    model = GaussianLatency(mean=1.0, std=10.0, floor=0.7)
    assert all(model.sample(rng) >= 0.7 for _ in range(500))


def test_gaussian_negative_params_rejected():
    with pytest.raises(ValueError):
        GaussianLatency(mean=-1.0, std=0.1)
    with pytest.raises(ValueError):
        GaussianLatency(mean=1.0, std=-0.1)


def test_shifted_exponential_bounds(rng):
    model = ShiftedExponentialLatency(minimum=3.0, tail_scale=1.0)
    samples = [model.sample(rng) for _ in range(500)]
    assert all(s >= 3.0 for s in samples)
    assert model.mean_ms == 4.0


def test_shifted_exponential_mean(rng):
    model = ShiftedExponentialLatency(minimum=2.0, tail_scale=0.5)
    samples = [model.sample(rng) for _ in range(5000)]
    assert abs(sum(samples) / len(samples) - 2.5) < 0.05


def test_shifted_exponential_negative_rejected():
    with pytest.raises(ValueError):
        ShiftedExponentialLatency(minimum=-1.0, tail_scale=1.0)
