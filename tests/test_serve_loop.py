"""Tests for the long-running serving loop (replay, degradation)."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DriftFeed, SloPolicy, alerts_jsonl_lines, default_slo_targets
from repro.obs.telemetry import TelemetryCollector, telemetry_jsonl_lines
from repro.serve import ServeConfig, ServeLoop, StreamConfig
from repro.serve.loop import policy_from_model
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import LRU


def _profile(fast=256):
    return make_cache_test_profile(
        LRU, layer_sizes=(fast, None), layer_means_ms=(0.5, 4.8), name="loop-ut"
    )


def _config(**overrides):
    stream = StreamConfig(
        arrivals=overrides.pop("arrivals", 2500),
        tenants=8,
        destinations_per_tenant=64,
        rate_per_ms=2.0,
        zipf_skew=1.1,
        tenant_skew=0.6,
        churn_interval_ms=150.0,
        seed=overrides.pop("seed", 7),
    )
    base = dict(
        stream=stream,
        batch_size=16,
        capacity=64,
        admission_threshold=2,
        admission_window_ms=80.0,
        idle_timeout_ms=400.0,
        maintenance_interval_ms=100.0,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _collector():
    collector = TelemetryCollector(interval_ms=5.0, window_ms=50.0)
    collector.add_policy(SloPolicy(default_slo_targets()))
    collector.add_policy(DriftFeed())
    return collector


def _run(config, collector=None):
    loop = ServeLoop(
        config, _profile(), collector=collector, metrics=MetricsRegistry()
    )
    return loop.run()


def test_replay_is_byte_identical():
    """Two same-seed runs: identical telemetry JSONL and table state."""
    first_collector, second_collector = _collector(), _collector()
    first = _run(_config(), first_collector)
    second = _run(_config(), second_collector)
    assert first.to_dict() == second.to_dict()
    assert first.table_signature == second.table_signature
    assert telemetry_jsonl_lines(first_collector.samples) == telemetry_jsonl_lines(
        second_collector.samples
    )
    assert alerts_jsonl_lines(first_collector.alerts) == alerts_jsonl_lines(
        second_collector.alerts
    )


def test_different_seed_diverges():
    assert (
        _run(_config(seed=7)).table_signature != _run(_config(seed=8)).table_signature
    )


def test_loop_exercises_the_whole_cache_surface():
    # A 40-rule budget under churn makes every reclaim path fire in one
    # run: aggregation first, then eviction, plus idle expiry.
    result = _run(
        _config(capacity=40, aggregate_min_rules=6, idle_timeout_ms=250.0)
    )
    cache = result.cache
    assert result.arrivals == 2500
    assert cache.hits > 0 and cache.misses > 0
    assert cache.punts > 0  # FDRC admission actually punting
    assert cache.evictions > 0  # policy-ranked reclaim under pressure
    assert cache.aggregations > 0  # wildcard folding under pressure
    assert cache.expirations > 0  # idle timeout firing via maintenance
    assert result.maintenance_ticks > 0
    assert result.install_p50_ms is not None
    assert result.install_p99_ms >= result.install_p50_ms
    assert result.requests_per_sec > 0
    assert result.occupancy["total"] <= 40
    assert len(result.table_signature) == result.occupancy["total"]


def test_shrinking_tcam_monotonically_increases_evictions():
    """Degradation: the smaller the budget, the harder eviction works."""
    rates = []
    for capacity in (160, 96, 48, 24):
        # Aggregation off and a long idle timeout isolate policy-ranked
        # eviction as the only way the loop reclaims slots.
        result = _run(
            _config(
                capacity=capacity,
                aggregate_min_rules=512,
                idle_timeout_ms=1_000_000.0,
            )
        )
        assert result.occupancy["total"] <= capacity
        rates.append(result.cache.evictions / result.arrivals)
    assert rates == sorted(rates)
    assert rates[-1] > rates[0]  # strictly worse at the extremes


def test_shrinking_tcam_monotonically_degrades_hit_rate():
    hit_rates = []
    for capacity in (160, 48, 12):
        result = _run(
            _config(
                capacity=capacity,
                aggregate_min_rules=512,
                idle_timeout_ms=1_000_000.0,
            )
        )
        hit_rates.append(result.cache.hit_rate)
    assert hit_rates == sorted(hit_rates, reverse=True)


def test_metrics_histogram_records_installs():
    registry = MetricsRegistry()
    loop = ServeLoop(_config(arrivals=600), _profile(), metrics=registry)
    result = loop.run()
    snapshot = registry.snapshot()
    hist = snapshot.get("serve.install_ms")
    # Every scheduled ADD lands in the histogram: exact installs plus
    # the wildcard rules aggregation created.
    expected = result.cache.installs + result.cache.aggregations
    assert hist is not None and hist["count"] == expected


def test_policy_from_model_handles_missing_probe():
    assert policy_from_model(None) is None

    class _NoProbe:
        policy_probe = None

    assert policy_from_model(_NoProbe()) is None

    class _Probe:
        @staticmethod
        def as_policy(name):
            return name

    class _Model:
        name = "ut"
        policy_probe = _Probe()

    assert policy_from_model(_Model()) == "inferred:ut"
