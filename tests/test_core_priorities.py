"""Tests for topological / R priority assignment (Maple-style, Table 2)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.priorities import (
    assign_r_priorities,
    assign_topological_priorities,
    check_priorities,
    distinct_priority_count,
    enforce_topological_priorities,
)
from repro.core.requests import RequestDag
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand


def _chain(n):
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


def test_chain_topological_levels():
    graph = _chain(4)
    priorities = assign_topological_priorities(graph)
    assert priorities == {0: 4, 1: 3, 2: 2, 3: 1}
    assert distinct_priority_count(priorities) == 4


def test_flat_graph_single_priority():
    graph = nx.DiGraph()
    graph.add_nodes_from(range(10))
    priorities = assign_topological_priorities(graph)
    assert distinct_priority_count(priorities) == 1


def test_cycle_rejected():
    graph = nx.DiGraph([(0, 1), (1, 0)])
    with pytest.raises(ValueError):
        assign_topological_priorities(graph)
    with pytest.raises(ValueError):
        assign_r_priorities(graph)


def test_r_priorities_are_unique():
    graph = _chain(5)
    priorities = assign_r_priorities(graph)
    assert distinct_priority_count(priorities) == 5


def test_step_and_base():
    graph = _chain(3)
    priorities = assign_topological_priorities(graph, step=10, base=5)
    assert priorities == {0: 25, 1: 15, 2: 5}


def test_check_priorities_reports_violations():
    graph = _chain(3)
    bad = {0: 1, 1: 2, 2: 3}
    assert len(check_priorities(graph, bad)) == 2
    good = assign_topological_priorities(graph)
    assert check_priorities(graph, good) == []


def _random_dag(edges_spec, n):
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    for a, b in edges_spec:
        u, v = sorted((a % n, b % n))
        if u != v:
            graph.add_edge(u, v)
    return graph


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=2, max_value=30),
    st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=80),
)
def test_both_assignments_always_valid(n, edges_spec):
    """Property: generated priorities never violate a dependency."""
    graph = _random_dag(edges_spec, n)
    topo = assign_topological_priorities(graph)
    r = assign_r_priorities(graph)
    assert check_priorities(graph, topo) == []
    assert check_priorities(graph, r) == []
    assert distinct_priority_count(r) == n
    assert distinct_priority_count(topo) <= distinct_priority_count(r)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=20),
    st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40),
)
def test_topological_count_equals_depth(n, edges_spec):
    graph = _random_dag(edges_spec, n)
    topo = assign_topological_priorities(graph)
    depth = nx.dag_longest_path_length(graph) + 1
    assert distinct_priority_count(topo) == depth


# -- enforcement on request DAGs -------------------------------------------------
def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def test_enforcement_rewrites_priorities():
    dag = RequestDag()
    parent = dag.new_request("s", FlowModCommand.ADD, _match(0), priority=123)
    dag.new_request("s", FlowModCommand.ADD, _match(1), priority=456, after=[parent])
    enforced = enforce_topological_priorities(dag, base=1000)
    requests = {r.match.key(): r for r in enforced.requests}
    assert requests[_match(0).key()].priority > requests[_match(1).key()].priority
    assert requests[_match(1).key()].priority == 1000


def test_enforcement_flat_dag_single_priority():
    dag = RequestDag()
    for i in range(6):
        dag.new_request("s", FlowModCommand.ADD, _match(i), priority=i)
    enforced = enforce_topological_priorities(dag)
    priorities = {r.priority for r in enforced.requests}
    assert len(priorities) == 1


def test_enforcement_preserves_structure():
    dag = RequestDag()
    a = dag.new_request("s", FlowModCommand.ADD, _match(0))
    dag.new_request("s", FlowModCommand.MODIFY, _match(1), after=[a])
    enforced = enforce_topological_priorities(dag)
    assert len(enforced) == 2
    ready = enforced.independent_requests()
    assert len(ready) == 1
    assert ready[0].command is FlowModCommand.ADD
