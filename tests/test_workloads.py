"""Tests for the ClassBench-like workload generator (Table 2)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.priorities import (
    assign_r_priorities,
    assign_topological_priorities,
    check_priorities,
    distinct_priority_count,
)
from repro.workloads.classbench import (
    CLASSBENCH_PRESETS,
    ClassbenchLikeGenerator,
    classbench_preset,
)
from repro.workloads.dependencies import build_dependency_graph, dag_depth
from repro.openflow.match import IpPrefix, Match


# -- dependency analysis ----------------------------------------------------------
def test_dependency_graph_edges_point_forward():
    rules = [
        Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 8)),
        Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A010000, 16)),
        Match(eth_type=0x0800, ip_dst=IpPrefix(0x0B000000, 8)),
    ]
    graph = build_dependency_graph(rules)
    assert set(graph.edges()) == {(0, 1)}
    assert nx.is_directed_acyclic_graph(graph)


def test_dag_depth_of_chain():
    rules = [
        Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, length))
        for length in (8, 16, 24)
    ]
    graph = build_dependency_graph(rules)
    assert dag_depth(graph) == 3


def test_dag_depth_empty():
    assert dag_depth(build_dependency_graph([])) == 0


# -- generator ------------------------------------------------------------------------
def test_generator_validation():
    with pytest.raises(ValueError):
        ClassbenchLikeGenerator(n_rules=10, depth=20)
    with pytest.raises(ValueError):
        ClassbenchLikeGenerator(n_rules=100, depth=0)
    with pytest.raises(ValueError):
        ClassbenchLikeGenerator(n_rules=100, depth=67)


def test_generator_hits_requested_shape():
    ruleset = ClassbenchLikeGenerator(n_rules=200, depth=25, seed=3).generate()
    assert len(ruleset) == 200
    assert ruleset.depth == 25


def test_generator_deterministic_per_seed():
    a = ClassbenchLikeGenerator(n_rules=100, depth=10, seed=5).generate()
    b = ClassbenchLikeGenerator(n_rules=100, depth=10, seed=5).generate()
    assert [r.key() for r in a.rules] == [r.key() for r in b.rules]
    c = ClassbenchLikeGenerator(n_rules=100, depth=10, seed=6).generate()
    assert [r.key() for r in a.rules] != [r.key() for r in c.rules]


def test_rules_are_unique():
    ruleset = ClassbenchLikeGenerator(n_rules=300, depth=20, seed=1).generate()
    keys = [r.key() for r in ruleset.rules]
    assert len(set(keys)) == len(keys)


@pytest.mark.parametrize("index", [1, 2, 3])
def test_presets_match_table2(index):
    """Table 2: (829, 64), (989, 38), (972, 33); R priorities = rule count."""
    expected_rules, expected_depth = CLASSBENCH_PRESETS[index]
    ruleset = classbench_preset(index)
    assert len(ruleset) == expected_rules
    assert ruleset.depth == expected_depth
    topo = assign_topological_priorities(ruleset.dependencies)
    r = assign_r_priorities(ruleset.dependencies)
    assert distinct_priority_count(topo) == expected_depth
    assert distinct_priority_count(r) == expected_rules
    assert check_priorities(ruleset.dependencies, topo) == []
    assert check_priorities(ruleset.dependencies, r) == []


def test_preset_index_validated():
    with pytest.raises(ValueError):
        classbench_preset(4)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=20, max_value=120),
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=0, max_value=1000),
)
def test_generator_shape_properties(n_rules, depth, seed):
    """Property: requested size exact, depth exact, DAG acyclic."""
    if n_rules < depth:
        n_rules = depth
    ruleset = ClassbenchLikeGenerator(n_rules=n_rules, depth=depth, seed=seed).generate()
    assert len(ruleset) == n_rules
    assert ruleset.depth == depth
    assert nx.is_directed_acyclic_graph(ruleset.dependencies)
