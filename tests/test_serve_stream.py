"""Tests for the deterministic serving workload stream."""

import pytest

from repro.serve.stream import (
    TENANT_SHIFT,
    FlowRequestStream,
    StreamConfig,
    flow_address,
    flow_match,
)


def _config(**overrides):
    base = dict(
        arrivals=400,
        tenants=8,
        destinations_per_tenant=32,
        rate_per_ms=2.0,
        zipf_skew=1.1,
        tenant_skew=0.6,
        churn_interval_ms=0.0,
        seed=3,
    )
    base.update(overrides)
    return StreamConfig(**base)


def test_stream_replays_byte_identically():
    stream = FlowRequestStream(_config(churn_interval_ms=40.0))
    first = list(stream)
    second = list(stream)  # __iter__ restarts from the seed
    assert first == second
    assert list(FlowRequestStream(_config(churn_interval_ms=40.0))) == first


def test_arrivals_are_ordered_and_indexed():
    arrivals = list(FlowRequestStream(_config()))
    assert len(arrivals) == 400
    assert [a.index for a in arrivals] == list(range(400))
    times = [a.t_ms for a in arrivals]
    assert times == sorted(times)
    assert all(t > 0 for t in times)


def test_priority_derived_from_tenant():
    config = _config(priority_levels=4)
    for arrival in FlowRequestStream(config):
        assert arrival.priority == 1 + arrival.tenant % 4


def test_match_encodes_tenant_and_destination():
    for arrival in FlowRequestStream(_config(arrivals=50)):
        assert arrival.match == flow_match(arrival.tenant, arrival.destination)
        address = arrival.match.ip_dst.value
        assert address >> TENANT_SHIFT == arrival.tenant
        assert address & ((1 << TENANT_SHIFT) - 1) == arrival.destination
        assert arrival.match.ip_dst.length == 32
        assert arrival.flow_key == (arrival.tenant, arrival.destination)


def test_flow_address_masks_to_ipv4():
    assert flow_address(3, 5) == (3 << TENANT_SHIFT) | 5
    assert flow_address(2**25, 0) <= 0xFFFFFFFF


def test_zipf_skew_concentrates_destinations():
    skewed = list(FlowRequestStream(_config(arrivals=2000, zipf_skew=1.4)))
    counts = {}
    for arrival in skewed:
        counts[arrival.destination] = counts.get(arrival.destination, 0) + 1
    top_share = max(counts.values()) / len(skewed)
    # The hottest destination dominates under heavy skew; a uniform mix
    # over 32 destinations would put ~3% on each.
    assert top_share > 0.15


def test_churn_rotates_the_working_set():
    still = list(FlowRequestStream(_config(arrivals=2000, churn_interval_ms=0.0)))
    churned = list(FlowRequestStream(_config(arrivals=2000, churn_interval_ms=25.0)))

    def hot_destination(arrivals, lo, hi):
        counts = {}
        for a in arrivals:
            if lo <= a.t_ms < hi:
                counts[a.destination] = counts.get(a.destination, 0) + 1
        return max(counts, key=lambda d: (counts[d], -d))

    horizon = churned[-1].t_ms
    early = hot_destination(churned, 0.0, 25.0)
    late = hot_destination(churned, horizon - 25.0, horizon + 1.0)
    assert early != late  # the stride rotated the rank->destination map
    # Without churn the hot destination never moves.
    assert hot_destination(still, 0.0, horizon) == hot_destination(
        still, horizon / 2, horizon + 1.0
    )


def test_stream_config_validation():
    with pytest.raises(ValueError):
        _config(arrivals=-1)
    with pytest.raises(ValueError):
        _config(tenants=0)
    with pytest.raises(ValueError):
        _config(destinations_per_tenant=0)
    with pytest.raises(ValueError):
        _config(destinations_per_tenant=(1 << TENANT_SHIFT) + 1)
    with pytest.raises(ValueError):
        _config(rate_per_ms=0.0)
    with pytest.raises(ValueError):
        _config(priority_levels=0)
    with pytest.raises(ValueError):
        _config(churn_interval_ms=-1.0)
