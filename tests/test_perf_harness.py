"""Tests for the tango-bench perf harness (repro.perf)."""

import json

import pytest

from repro.perf.cli import main as _bench_cli_main
from repro.perf.harness import (
    REGRESSION_THRESHOLD,
    baseline_from_records,
    compare_to_baseline,
    records_to_report,
    run_suite,
)
from repro.perf.harness import bench_chain_schedule as _chain_case
from repro.perf.harness import bench_descending_shifts as _shifts_case
from repro.perf.harness import bench_prefix_lookahead as _lookahead_case
from repro.perf.reference import ReferenceBasicTangoScheduler
from repro.perf.workloads import chain_dag, fast_executor, layered_dag, unlock_groups_dag
from repro.core.scheduler import BasicTangoScheduler

import io


# -- workloads ----------------------------------------------------------------
def test_chain_dag_shape():
    dag = chain_dag(10)
    assert len(dag) == 10
    assert dag.depth() == 10


def test_layered_dag_shape():
    dag = layered_dag(100, width=10)
    assert len(dag) == 100
    assert dag.depth() == 10


def test_unlock_groups_dag_shape():
    dag = unlock_groups_dag(40, group=20)
    assert len(dag) == 40
    assert dag.depth() == 2
    locations = {r.location for r in dag.requests}
    assert sorted(locations) == ["a", "b"]


def test_workloads_are_deterministic():
    a, b = layered_dag(60), layered_dag(60)
    assert [r.priority for r in a.requests] == [r.priority for r in b.requests]
    assert a.edge_ids() == b.edge_ids()


# -- reference arm ------------------------------------------------------------
def test_reference_scheduler_matches_optimized_bit_for_bit():
    optimized = BasicTangoScheduler(fast_executor()).schedule(layered_dag(80, width=8))
    reference_scheduler = ReferenceBasicTangoScheduler(fast_executor())
    reference = reference_scheduler.schedule(layered_dag(80, width=8))
    assert reference.makespan_ms == optimized.makespan_ms
    assert reference.rounds == optimized.rounds
    assert reference.pattern_choices == optimized.pattern_choices
    assert [r.request.request_id for r in reference.records] == [
        r.request.request_id for r in optimized.records
    ]
    assert reference_scheduler.scan_ops > 0


# -- bench cases --------------------------------------------------------------
def test_chain_case_verifies_equivalence_and_speedup():
    record = _chain_case(120)
    assert record.identical is True
    assert record.ops > 0
    assert record.ref_ops > record.ops  # rescans do strictly more work
    assert record.speedup_ops > 1.0


def test_shift_case_counts_quadratic_reference_work():
    n = 200
    record = _shifts_case(n)
    assert record.identical is True
    assert record.detail["total_shifts"] == n * (n - 1) // 2
    assert record.ref_ops == n * (n + 1) // 2  # list element moves
    assert record.speedup_ops > 1.0


def test_lookahead_case_verifies_reference_identity():
    record = _lookahead_case(60)
    assert record.identical is True  # full per-record byte identity
    assert record.ops > 0
    assert record.ref_ops > record.ops  # retired planner re-walks the DAG
    planner = record.detail["planner"]
    assert planner["plan_calls"] > 0
    assert {"memo_hits", "memo_misses", "dominance_prunes"} <= set(planner)


def test_lookahead_reference_arm_respects_cap():
    from repro.perf.reference import PREFIX_REFERENCE_CAP

    record = _lookahead_case(PREFIX_REFERENCE_CAP + 1, with_reference=True)
    assert record.ref_ops is None and record.identical is None
    assert record.n == PREFIX_REFERENCE_CAP + 1  # no longer size-capped


def test_run_suite_quick_sizes_and_keys():
    records = run_suite(sizes=[50], with_reference=True)
    keys = [record.key for record in records]
    assert keys == [
        "chain_schedule:50",
        "layered_schedule:50",
        "descending_shifts:50",
        "prefix_lookahead:50",
        "faulted_schedule:50",
        "fleet_infer:12",  # fleet size is capped by the case config
        "sharded_fleet:50",
        "serve_churn:50",
    ]


# -- regression gate ----------------------------------------------------------
def test_compare_to_baseline_flags_only_regressions():
    records = run_suite(sizes=[40], with_reference=False)
    baseline = baseline_from_records(records)
    assert compare_to_baseline(records, baseline) == []
    # Shrink one baseline entry so the same run now "regresses".
    key = records[0].key
    baseline[key] = int(records[0].ops / (REGRESSION_THRESHOLD * 2))
    regressions = compare_to_baseline(records, baseline)
    assert [r["key"] for r in regressions] == [key]
    # Unknown keys in the run (absent from baseline) are not gated.
    assert compare_to_baseline(records, {}) == []


def test_compare_to_baseline_gates_zero_baseline():
    """A baseline of 0 ops is a real entry, not a missing one: any ops at
    all regress against it (with an undefined ratio reported as None)."""
    records = run_suite(sizes=[40], with_reference=False)
    baseline = baseline_from_records(records)
    key = records[0].key
    assert records[0].ops > 0
    baseline[key] = 0
    regressions = compare_to_baseline(records, baseline)
    assert [r["key"] for r in regressions] == [key]
    assert regressions[0]["ratio"] is None
    assert regressions[0]["baseline_ops"] == 0


def test_report_document_shape():
    records = run_suite(sizes=[30], with_reference=True)
    report = records_to_report(records, [], quick=True, baseline_path=None)
    assert report["ok"] is True
    assert report["suite"] == "scheduler-hot-paths"
    assert len(report["results"]) == 8
    assert {"case", "n", "wall_ms", "ops"} <= set(report["results"][0])
    # Wall-clock trajectories ride along but never gate.
    wall = report["wall_clock"]
    assert wall["gated"] is False
    assert wall["total_wall_ms"] > 0
    assert len(wall["per_case"]) == len(records)
    assert {"key", "wall_ms", "ref_wall_ms", "speedup_wall"} <= set(
        wall["per_case"][0]
    )
    # So do the continuous-telemetry counters.
    telemetry = report["telemetry"]
    assert telemetry["gated"] is False
    assert telemetry["stats"]["samples"] > 0


def test_run_suite_cases_filter():
    records = run_suite(sizes=[40], with_reference=False, cases=["prefix_lookahead"])
    assert [record.case for record in records] == ["prefix_lookahead"]
    with pytest.raises(ValueError, match="unknown bench cases"):
        run_suite(sizes=[40], cases=["no_such_case"])


# -- CLI ----------------------------------------------------------------------
def _run_cli(args):
    out = io.StringIO()
    code = _bench_cli_main(args, out=out)
    return code, out.getvalue()


def test_cli_update_baseline_then_gate_passes(tmp_path):
    baseline = tmp_path / "baseline.json"
    output = tmp_path / "BENCH_scheduler.json"
    code, _ = _run_cli(
        ["--sizes", "40", "--baseline", str(baseline), "--output", str(output),
         "--no-reference", "--update-baseline"]
    )
    assert code == 0
    assert json.loads(baseline.read_text())

    code, text = _run_cli(
        ["--sizes", "40", "--baseline", str(baseline), "--output", str(output),
         "--no-reference"]
    )
    assert code == 0
    assert "perf gate ok" in text
    report = json.loads(output.read_text())
    assert report["ok"] is True
    assert report["regressions"] == []


def test_cli_fails_on_regression(tmp_path):
    baseline = tmp_path / "baseline.json"
    output = tmp_path / "BENCH_scheduler.json"
    # A baseline claiming near-zero ops makes any real run a regression.
    baseline.write_text(json.dumps({"chain_schedule:40": 1}))
    code, text = _run_cli(
        ["--sizes", "40", "--baseline", str(baseline), "--output", str(output),
         "--no-reference"]
    )
    assert code == 1
    assert "REGRESSION chain_schedule:40" in text
    report = json.loads(output.read_text())
    assert report["ok"] is False


def test_cli_missing_baseline_skips_gate(tmp_path):
    output = tmp_path / "BENCH_scheduler.json"
    code, text = _run_cli(
        ["--sizes", "30", "--baseline", str(tmp_path / "absent.json"),
         "--output", str(output), "--no-reference"]
    )
    assert code == 0
    assert "regression gate skipped" in text


def test_cli_cases_filter_runs_selected_case_only(tmp_path):
    output = tmp_path / "BENCH_prefix_scaling.json"
    code, text = _run_cli(
        ["--cases", "prefix_lookahead", "--sizes", "40",
         "--baseline", str(tmp_path / "absent.json"),
         "--output", str(output), "--no-reference"]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert [r["case"] for r in report["results"]] == ["prefix_lookahead"]


def test_checked_in_baseline_covers_quick_sizes():
    """CI's --quick run must actually gate: every quick-size key needs a
    checked-in baseline entry."""
    from pathlib import Path

    from repro.perf.harness import QUICK_SIZES

    baseline_path = (
        Path(__file__).resolve().parent.parent / "benchmarks" / "perf_baseline.json"
    )
    baseline = json.loads(baseline_path.read_text())
    records = run_suite(sizes=QUICK_SIZES, with_reference=False)
    for record in records:
        assert record.key in baseline, record.key
        ratio = record.ops / baseline[record.key]
        assert ratio <= REGRESSION_THRESHOLD
        assert ratio >= 1.0 / REGRESSION_THRESHOLD  # baseline not stale-high


def test_tools_cli_mounts_bench_subcommand(tmp_path):
    from repro.tools.cli import main as tools_main

    out = io.StringIO()
    code = tools_main(
        ["bench", "--sizes", "30", "--no-reference",
         "--baseline", str(tmp_path / "absent.json"),
         "--output", str(tmp_path / "BENCH_scheduler.json")],
        out=out,
    )
    assert code == 0
    assert "trajectory written" in out.getvalue()


def test_shift_wall_time_note_is_honest():
    """The gate must use ops, not wall: document-level sanity that the
    record carries both metrics separately."""
    record = _shifts_case(100)
    assert record.wall_ms >= 0.0
    assert record.speedup_ops is not None
    with pytest.raises(AttributeError):
        record.speedup  # no ambiguous single "speedup" field


def test_bench_records_carry_op_attribution():
    record = _chain_case(200, with_reference=False)
    attribution = record.detail["attribution"]
    assert attribution["scheduler.oracle_calls"] == 200
    assert attribution["scheduler.requests{scheduler=BasicTangoScheduler}"] == 200
    shift = _shifts_case(100, with_reference=False)
    shift_attr = shift.detail["attribution"]
    assert shift_attr["tcam.shift_model_queries"] == 100
    assert shift_attr["tcam.shift_accounting_ops"] == shift.ops
    lookahead = _lookahead_case(100)
    assert "scheduler.oracle_calls" in lookahead.detail["attribution"]


def test_verify_noop_instrumentation_passes():
    from repro.perf.harness import verify_noop_instrumentation

    payload = verify_noop_instrumentation(n=200)
    assert payload["bare_ops"] == payload["traced_ops"] > 0
    assert payload["signatures_equal"] is True
    assert payload["trace_events"] > 0
    # The prefix-planner arm: tracing/metrics on the incremental planner
    # must not change a single op or issue record.
    assert payload["prefix_bare_ops"] == payload["prefix_traced_ops"] > 0
    assert payload["prefix_signatures_equal"] is True
    assert payload["prefix_trace_events"] > 0
    # The fleet arm of the check: telemetry must not change fleet probe
    # work either (ops, models, virtual timings).
    assert payload["fleet_bare_ops"] == payload["fleet_traced_ops"] > 0
    assert payload["fleet_signatures_equal"] is True
    assert payload["fleet_trace_events"] > 0
    # The continuous-telemetry collector arm: an attached collector may
    # not change schedules, op counts, or TangoDB contents, and two
    # same-seed collector runs must serialize byte-identically.
    assert payload["collector_ops"] == payload["bare_ops"]
    assert payload["collector_signatures_equal"] is True
    assert payload["collector_samples"] > 0
    assert payload["collector_stream_identical"] is True
    assert payload["fleet_collector_samples"] > 0
    assert payload["fleet_collector_signatures_equal"] is True
    assert payload["fleet_db_identical"] is True


def test_collect_suite_telemetry_block_shape():
    from repro.perf.harness import collect_suite_telemetry

    block = collect_suite_telemetry(n=200)
    assert block["gated"] is False
    assert block["workload"] == "layered_schedule:200"
    assert block["stats"]["samples"] > 0
    assert block["stats"]["ticks"] > 0
    assert "executor.install_ms" in block["series"]
    # Deterministic: two collections agree exactly.
    assert block == collect_suite_telemetry(n=200)


def test_fleet_infer_case_is_trajectory_only_and_deterministic():
    from repro.perf.harness import DEFAULT_CASE_CONFIG, bench_fleet_infer

    cap = DEFAULT_CASE_CONFIG.fleet_member_cap
    assert cap == 12  # the checked-in fleet_infer:12 baseline key
    first = bench_fleet_infer(1000)
    second = bench_fleet_infer(1000)
    assert first.n == second.n == cap  # capped fleet size
    assert first.ref_ops is None and first.identical is None
    assert first.ops == second.ops > 0
    assert first.detail["makespan_ms"] == second.detail["makespan_ms"]
    # 3 distinct profiles -> 3 full probes; the rest coalesce or hit cache.
    assert first.detail["full_probe_runs"] == 3
    assert (
        first.detail["cache_hits"] + first.detail["coalesced_joins"]
        == cap - 3
    )
    assert first.detail["speedup_virtual"] > 1.0


def test_fleet_infer_cap_is_per_case_config_not_module_state():
    from repro.perf.harness import BenchCaseConfig, bench_fleet_infer

    import dataclasses

    import pytest

    small = bench_fleet_infer(1000, config=BenchCaseConfig(fleet_member_cap=5))
    assert small.n == 5
    # The default config is immutable: no bench can leak a cap change
    # into the next run (TNG041's no-module-mutable-state rule).
    with pytest.raises(dataclasses.FrozenInstanceError):
        BenchCaseConfig().fleet_member_cap = 99
    assert bench_fleet_infer(1000).n == 12


def test_sharded_fleet_case_checks_reference_identity():
    from repro.perf.harness import BenchCaseConfig, bench_sharded_fleet

    config = BenchCaseConfig(sharded_member_cap=12, sharded_shards=3)
    first = bench_sharded_fleet(1000, config=config)
    second = bench_sharded_fleet(1000, config=config)
    assert first.n == second.n == 12
    # The reference arm is the single-queue engine; the record asserts
    # byte-identity (summaries, models, full TangoDB contents).
    assert first.identical is True
    assert first.ref_ops == first.ops == second.ops > 0
    stats = first.detail["shards"]
    assert stats["shards"] == 3 and stats["backend"] == "inline"
    assert len(stats["per_shard"]) == 3
    assert stats == second.detail["shards"]
    # Without the reference arm the case is trajectory-only.
    bare = bench_sharded_fleet(1000, with_reference=False, config=config)
    assert bare.identical is None and bare.ops == first.ops


def test_collect_fleet_scaling_block_is_ungated_and_consistent():
    from repro.perf.harness import collect_fleet_scaling

    block = collect_fleet_scaling(
        members=8, shard_counts=(1, 2), backend="inline"
    )
    assert block["gated"] is False
    assert block["members"] == 8 and block["summaries_identical"] is True
    assert [run["shards"] for run in block["runs"]] == [1, 2]
    assert block["runs"][0]["speedup_wall_vs_1shard"] == 1.0
    # Probe work is deterministic, so both arms agree exactly.
    assert block["runs"][0]["probe_ops"] == block["runs"][1]["probe_ops"] > 0


def test_faulted_schedule_case_is_deterministic_and_counts_faults():
    from repro.perf.harness import bench_faulted_schedule

    first = bench_faulted_schedule(300)
    second = bench_faulted_schedule(300)
    assert first.ops == second.ops > 0
    assert first.detail["makespan_ms"] == second.detail["makespan_ms"]
    assert first.detail["fault_retries"] == second.detail["fault_retries"] > 0
    assert first.detail["injected"]["disconnects"] > 0


def test_run_suite_includes_faulted_case():
    from repro.perf.harness import run_suite

    records = run_suite(sizes=[300], with_reference=False)
    assert any(record.case == "faulted_schedule" for record in records)
