"""Tests for max-min fair allocation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netem.flows import NetworkFlow
from repro.netem.temaxmin import max_min_fair_allocation
from repro.netem.topology import Topology, triangle_topology


def _line_topology(capacity=10.0):
    topology = Topology("line")
    for name in ("a", "b", "c"):
        topology.add_switch(name)
    topology.add_link("a", "b", capacity=capacity)
    topology.add_link("b", "c", capacity=capacity)
    return topology


def _flow(fid, path, demand):
    return NetworkFlow(flow_id=fid, src=path[0], dst=path[-1], path=path, demand=demand)


def test_unconstrained_flows_get_their_demand():
    topology = _line_topology(capacity=100.0)
    flows = [_flow(1, ["a", "b"], 3.0), _flow(2, ["b", "c"], 5.0)]
    allocation = max_min_fair_allocation(topology, flows)
    assert allocation[1] == pytest.approx(3.0)
    assert allocation[2] == pytest.approx(5.0)


def test_bottleneck_shared_equally():
    topology = _line_topology(capacity=10.0)
    flows = [_flow(i, ["a", "b"], 100.0) for i in range(4)]
    allocation = max_min_fair_allocation(topology, flows)
    for fid in range(4):
        assert allocation[fid] == pytest.approx(2.5)


def test_small_demand_frees_capacity_for_others():
    topology = _line_topology(capacity=10.0)
    flows = [_flow(1, ["a", "b"], 1.0), _flow(2, ["a", "b"], 100.0)]
    allocation = max_min_fair_allocation(topology, flows)
    assert allocation[1] == pytest.approx(1.0)
    assert allocation[2] == pytest.approx(9.0)


def test_multi_hop_flow_limited_by_worst_link():
    topology = Topology("line2")
    for name in ("a", "b", "c"):
        topology.add_switch(name)
    topology.add_link("a", "b", capacity=10.0)
    topology.add_link("b", "c", capacity=2.0)
    flows = [_flow(1, ["a", "b", "c"], 100.0)]
    allocation = max_min_fair_allocation(topology, flows)
    assert allocation[1] == pytest.approx(2.0)


def test_unknown_link_rejected():
    topology = _line_topology()
    bad = _flow(1, ["a", "c"], 1.0)  # a-c link does not exist
    with pytest.raises(ValueError):
        max_min_fair_allocation(topology, [bad])


def test_empty_flow_list():
    assert max_min_fair_allocation(_line_topology(), []) == {}


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from([("s1", "s2"), ("s2", "s3"), ("s1", "s3")]),
            st.floats(min_value=0.1, max_value=50.0),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_allocation_properties(flow_specs):
    """Properties: no link over capacity, no flow over demand, non-negative."""
    topology = triangle_topology()
    flows = []
    for fid, (pair, demand) in enumerate(flow_specs):
        path = topology.shortest_path(pair[0], pair[1])
        flows.append(_flow(fid, path, demand))
    allocation = max_min_fair_allocation(topology, flows)

    assert set(allocation) == {f.flow_id for f in flows}
    for flow in flows:
        assert -1e-9 <= allocation[flow.flow_id] <= flow.demand + 1e-9

    link_usage = {}
    for flow in flows:
        for link in flow.links():
            link_usage[link] = link_usage.get(link, 0.0) + allocation[flow.flow_id]
    for link, used in link_usage.items():
        assert used <= topology.capacity(*link) + 1e-6


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(min_value=0.5, max_value=30.0), min_size=2, max_size=8)
)
def test_max_min_fairness_property(demands):
    """No flow can gain without hurting an equal-or-smaller allocation.

    On a single shared link this means: every unsatisfied flow receives
    at least as much as any other flow could claim (the classic
    water-filling characterisation).
    """
    topology = _line_topology(capacity=10.0)
    flows = [_flow(i, ["a", "b"], d) for i, d in enumerate(demands)]
    allocation = max_min_fair_allocation(topology, flows)
    unsatisfied = [f for f in flows if allocation[f.flow_id] < f.demand - 1e-9]
    if unsatisfied:
        floor = min(allocation[f.flow_id] for f in unsatisfied)
        assert all(allocation[f.flow_id] <= floor + 1e-6 for f in unsatisfied)
        # Link is saturated.
        assert sum(allocation.values()) == pytest.approx(10.0)
