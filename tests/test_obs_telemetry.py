"""Tests for the continuous flow-telemetry collector."""

import io

import pytest

from repro.obs.telemetry import (
    FlowCache,
    FlowCacheConfig,
    NULL_TELEMETRY,
    NullTelemetryCollector,
    SlidingWindow,
    TelemetryCollector,
    TelemetrySample,
    read_telemetry_jsonl,
    summarize_telemetry,
    telemetry_jsonl_lines,
    timeseries,
    write_telemetry_jsonl,
)


# -- sliding windows ----------------------------------------------------------------
def test_window_trims_samples_older_than_window():
    window = SlidingWindow(window_ms=10.0)
    window.observe(0.0, 1.0)
    window.observe(5.0, 2.0)
    window.observe(20.0, 3.0)  # pushes t=0 and t=5 out of [10, 20]
    assert window.values() == [3.0]
    assert window.count() == 1


def test_window_percentile_nearest_rank():
    window = SlidingWindow(window_ms=1000.0)
    for index in range(1, 101):
        window.observe(float(index), float(index))
    assert window.percentile(50.0) == 50.0
    assert window.percentile(99.0) == 99.0
    assert window.percentile(100.0) == 100.0
    with pytest.raises(ValueError):
        window.percentile(101.0)


def test_window_percentile_and_mean_empty_is_none():
    window = SlidingWindow(window_ms=10.0)
    assert window.percentile(99.0) is None
    assert window.mean() is None
    assert window.last() is None
    assert window.violation_fraction(1.0) is None


def test_window_rate_per_ms_for_cumulative_counters():
    window = SlidingWindow(window_ms=100.0)
    window.observe(0.0, 100.0)
    window.observe(50.0, 200.0)
    assert window.rate_per_ms() == pytest.approx(2.0)
    single = SlidingWindow(window_ms=100.0)
    single.observe(0.0, 5.0)
    assert single.rate_per_ms() == 0.0


def test_window_churn_sums_absolute_deltas():
    window = SlidingWindow(window_ms=100.0)
    for t, value in enumerate([5.0, 7.0, 4.0, 4.0, 9.0]):
        window.observe(float(t), value)
    assert window.churn() == pytest.approx(2.0 + 3.0 + 0.0 + 5.0)


def test_window_violation_fraction_is_strictly_above():
    window = SlidingWindow(window_ms=100.0)
    for t, value in enumerate([1.0, 2.0, 3.0, 4.0]):
        window.observe(float(t), value)
    assert window.violation_fraction(2.0) == pytest.approx(0.5)


def test_window_capacity_bounds_retention():
    window = SlidingWindow(window_ms=1e9, capacity=3)
    for t in range(10):
        window.observe(float(t), float(t))
    assert window.values() == [7.0, 8.0, 9.0]


def test_window_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SlidingWindow(window_ms=0.0)
    with pytest.raises(ValueError):
        SlidingWindow(window_ms=1.0, capacity=0)


# -- flow cache ----------------------------------------------------------------------
def test_flow_cache_inactive_timeout_exports_idle_flows():
    cache = FlowCache(FlowCacheConfig(active_timeout_ms=1000.0, inactive_timeout_ms=50.0))
    cache.record("s1", "f1", 0.0)
    cache.record("s1", "f2", 40.0)
    records = cache.expire(100.0)  # f1 idle 100ms > 50; f2 idle 60ms > 50
    assert [(r.key, r.reason) for r in records] == [("f1", "inactive"), ("f2", "inactive")]
    assert len(cache) == 0


def test_flow_cache_active_timeout_exports_long_lived_flows():
    cache = FlowCache(FlowCacheConfig(active_timeout_ms=100.0, inactive_timeout_ms=1000.0))
    assert cache.record("s1", "f1", 0.0) is None
    assert cache.record("s1", "f1", 50.0) is None
    record = cache.record("s1", "f1", 120.0)
    assert record is not None
    assert record.reason == "active"
    assert record.updates == 3
    assert record.packets == 3
    # Counters reset: the flow starts over on its next update.
    assert len(cache) == 0


def test_flow_cache_flush_exports_everything_sorted():
    cache = FlowCache()
    cache.record("s2", "b", 1.0)
    cache.record("s1", "a", 2.0)
    records = cache.flush(10.0)
    assert [(r.source, r.key, r.reason) for r in records] == [
        ("s1", "a", "flush"),
        ("s2", "b", "flush"),
    ]


def test_flow_cache_deterministic_one_in_n_sampling():
    cache = FlowCache(FlowCacheConfig(sampling_rate=3))
    for index in range(9):
        cache.record("s1", f"f{index}", float(index))
    # Every 3rd update lands: updates 3, 6, 9 (1-indexed arrival order).
    assert len(cache) == 3
    assert cache.sampled_out == 6


def test_flow_cache_config_validation():
    with pytest.raises(ValueError):
        FlowCacheConfig(active_timeout_ms=0.0)
    with pytest.raises(ValueError):
        FlowCacheConfig(sampling_rate=0)


# -- collector cadence and recording ---------------------------------------------------
def test_collector_push_fires_elapsed_cadence_ticks():
    collector = TelemetryCollector(interval_ms=10.0)
    collector.observe_probe("s1", "add", t_ms=0.0, rtt_ms=1.0)  # anchors cadence
    assert collector.ticks == 1
    collector.observe_probe("s1", "add", t_ms=35.0, rtt_ms=1.0)  # crosses 10, 20, 30
    assert collector.ticks == 4


def test_collector_tick_timestamps_are_interval_multiples():
    collector = TelemetryCollector(interval_ms=10.0)
    seen = []
    collector.watch("probe", lambda t_ms: [] if seen.append(t_ms) else [])
    collector.observe_probe("s1", "add", t_ms=7.0, rtt_ms=1.0)
    collector.observe_probe("s1", "add", t_ms=23.0, rtt_ms=1.0)
    assert seen == [0.0, 10.0, 20.0]


def test_collector_emit_feeds_windows_and_series_names():
    collector = TelemetryCollector()
    collector.emit(1.0, "x.y", 5.0, source="s1", layer="t0")
    collector.emit(2.0, "x.y", 7.0, source="s1")
    assert collector.window("x.y", "s1").values() == [5.0, 7.0]
    assert collector.series_names() == ["x.y"]
    (first, _) = collector.samples
    assert first.labels == (("layer", "t0"),)


def test_collector_capacity_drops_oldest_and_counts():
    collector = TelemetryCollector(capacity=2)
    for t in range(4):
        collector.emit(float(t), "s", float(t))
    assert collector.dropped == 2
    assert [sample.value for sample in collector.samples] == [2.0, 3.0]
    assert collector.stats()["dropped"] == 2


def test_collector_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TelemetryCollector(interval_ms=0.0)
    with pytest.raises(ValueError):
        TelemetryCollector(capacity=0)


def test_collector_observe_install_records_latency_and_flow():
    collector = TelemetryCollector(interval_ms=1000.0)
    collector.observe_install("s1", "add", started_ms=1.0, finished_ms=3.5)
    window = collector.window("executor.install_ms", "s1")
    assert window.values() == [2.5]


def test_collector_finish_flushes_flow_cache():
    collector = TelemetryCollector(interval_ms=1000.0)
    collector.observe_flow("s1", "f1", t_ms=1.0)
    collector.finish(5.0)
    exports = [s for s in collector.samples if s.series == "flow.export"]
    assert len(exports) == 1
    assert dict(exports[0].labels)["reason"] == "flush"


def test_collector_bind_simulator_samples_on_cadence_and_drains():
    from repro.sim.events import Simulator

    sim = Simulator()
    collector = TelemetryCollector(interval_ms=10.0)
    hits = []
    collector.watch("probe", lambda t_ms: [] if hits.append(t_ms) else [])
    for delay in (5.0, 15.0, 25.0):
        sim.schedule(delay, lambda: None)
    collector.bind_simulator(sim)
    sim.run()
    assert hits  # the sampler fired
    assert all(t % 10.0 == 0.0 for t in hits)
    assert len(sim.queue) == 0  # the self-rescheduling sampler stopped


def test_watch_switch_emits_occupancy_and_counter_series():
    from repro.sim.latency import ConstantLatency
    from repro.switches import SimulatedSwitch
    from repro.switches.base import ControlCostModel
    from repro.tables import FIFO, TableLayer

    switch = SimulatedSwitch(
        name="sw",
        layers=[TableLayer("tcam", capacity=8), TableLayer("sw", capacity=None)],
        policy=FIFO,
        layer_delays=[ConstantLatency(0.5), ConstantLatency(3.0)],
        control_path_delay=ConstantLatency(8.0),
        cost_model=ControlCostModel(
            add_base_ms=1.0,
            shift_ms=0.1,
            priority_group_ms=0.1,
            mod_ms=0.5,
            del_ms=0.5,
            jitter_std_frac=0.0,
        ),
        seed=3,
    )
    collector = TelemetryCollector()
    collector.watch_switch("sw", switch)
    collector.sample(0.0)
    names = {sample.series for sample in collector.samples}
    assert {"switch.occupancy", "switch.layer_occupancy", "switch.flow_mods",
            "switch.shifts", "switch.packets"} <= names


# -- null collector --------------------------------------------------------------------
def test_null_collector_is_disabled_and_records_nothing():
    assert NULL_TELEMETRY.enabled is False
    assert isinstance(NULL_TELEMETRY, NullTelemetryCollector)
    NULL_TELEMETRY.emit(1.0, "s", 1.0)
    NULL_TELEMETRY.observe_install("s1", "add", 0.0, 1.0)
    NULL_TELEMETRY.observe_batch("sched", "P1", 0.0, 1.0, 5)
    NULL_TELEMETRY.observe_probe("s1", "add", 0.0, 1.0)
    NULL_TELEMETRY.observe_flow("s1", "f", 0.0)
    NULL_TELEMETRY.watch("x", lambda t: [])
    NULL_TELEMETRY.sample(5.0)
    NULL_TELEMETRY.finish(9.0)
    assert NULL_TELEMETRY.samples == []
    assert NULL_TELEMETRY.ticks == 0


# -- serialization ----------------------------------------------------------------------
def _sample_stream():
    collector = TelemetryCollector(interval_ms=10.0)
    collector.observe_install("s1", "add", 0.0, 2.5)
    collector.observe_batch("Basic", "P1", 0.0, 12.0, 4, deadline_misses=1)
    collector.observe_probe("s2", "mod", 15.0, 0.7)
    collector.finish(20.0)
    return collector.samples


def test_jsonl_roundtrip_identity_through_handle_and_path(tmp_path):
    samples = _sample_stream()
    buffer = io.StringIO()
    assert write_telemetry_jsonl(samples, buffer) == len(samples)
    assert read_telemetry_jsonl(io.StringIO(buffer.getvalue())) == samples
    path = str(tmp_path / "telemetry.jsonl")
    write_telemetry_jsonl(samples, path)
    assert read_telemetry_jsonl(path) == samples


def test_jsonl_lines_are_byte_deterministic():
    first = telemetry_jsonl_lines(_sample_stream())
    second = telemetry_jsonl_lines(_sample_stream())
    assert first == second
    assert ": " not in first[0]  # compact separators, sorted keys
    import json

    keys = list(json.loads(first[0]))
    assert keys == sorted(keys)


def test_sample_dict_roundtrip_preserves_labels():
    sample = TelemetrySample(
        t_ms=1.0, series="s", source="sw", value=2.0, labels=(("a", "1"), ("b", "2"))
    )
    assert TelemetrySample.from_dict(sample.to_dict()) == sample


def test_summarize_telemetry_rolls_up_series():
    summary = summarize_telemetry(_sample_stream())
    assert summary["samples"] == len(_sample_stream())
    install = summary["series"]["executor.install_ms"]
    assert install["count"] == 1
    assert install["mean"] == pytest.approx(2.5)
    assert summary["span_ms"] >= 0.0


def test_summarize_telemetry_empty():
    summary = summarize_telemetry([])
    assert summary["samples"] == 0
    assert summary["series"] == {}
    assert summary["span_ms"] == 0.0


def test_timeseries_filters_and_sorts():
    samples = [
        TelemetrySample(t_ms=5.0, series="a", source="x", value=2.0),
        TelemetrySample(t_ms=1.0, series="a", source="y", value=1.0),
        TelemetrySample(t_ms=3.0, series="b", source="x", value=9.0),
    ]
    assert timeseries(samples, "a") == [(1.0, 1.0), (5.0, 2.0)]
    assert timeseries(samples, "a", source="x") == [(5.0, 2.0)]
    assert timeseries(samples, "missing") == []


# -- the collector may not perturb schedules -------------------------------------------
def test_attached_collector_is_a_noop_for_the_scheduler():
    from repro.core.scheduler import BasicTangoScheduler
    from repro.perf.workloads import fast_executor, layered_dag

    def run(collector):
        dag = layered_dag(200)
        executor = fast_executor(telemetry=collector)
        result = BasicTangoScheduler(executor).schedule(dag)
        return (
            result.makespan_ms,
            result.rounds,
            tuple(result.pattern_choices),
            tuple((r.request.request_id, r.started_ms, r.finished_ms) for r in result.records),
        )

    bare = run(None)
    collector = TelemetryCollector(interval_ms=5.0)
    attached = run(collector)
    assert bare == attached
    assert collector.samples  # it did record


def test_two_same_seed_scheduler_runs_serialize_identically():
    from repro.core.scheduler import BasicTangoScheduler
    from repro.perf.workloads import fast_executor, layered_dag

    def stream():
        collector = TelemetryCollector(interval_ms=5.0)
        executor = fast_executor(telemetry=collector)
        BasicTangoScheduler(executor).schedule(layered_dag(200))
        collector.finish(executor.now_ms())
        return telemetry_jsonl_lines(collector.samples)

    assert stream() == stream()
