"""Tests for TCAM geometry (Table 1) and the shift-cost model (Fig 3b/3c)."""

import pytest
from hypothesis import given, strategies as st

from repro.openflow.match import MatchKind
from repro.tables.tcam import PriorityShiftModel, TcamGeometry, TcamMode


# -- geometry / Table 1 -------------------------------------------------------
def test_single_wide_rejects_wide_entries():
    geometry = TcamGeometry(slot_units=100, mode=TcamMode.SINGLE_WIDE)
    with pytest.raises(ValueError):
        geometry.entry_cost(MatchKind.L2_L3)


def test_single_wide_full_capacity_for_narrow():
    geometry = TcamGeometry(slot_units=4096, mode=TcamMode.SINGLE_WIDE)
    assert geometry.capacity_for(MatchKind.L2) == 4096
    assert geometry.capacity_for(MatchKind.L3) == 4096


def test_double_wide_halves_capacity_for_everything():
    """Switch #2: 2560 entries no matter the entry type (Table 1)."""
    geometry = TcamGeometry(slot_units=5120, mode=TcamMode.DOUBLE_WIDE)
    for kind in MatchKind:
        assert geometry.capacity_for(kind) == 2560


def test_adaptive_mode_matches_switch3():
    """Switch #3: 767 narrow entries or 369 wide ones (Table 1)."""
    geometry = TcamGeometry(
        slot_units=767, mode=TcamMode.ADAPTIVE, wide_cost=767.0 / 369.0
    )
    assert geometry.capacity_for(MatchKind.L2) == 767
    assert geometry.capacity_for(MatchKind.L3) == 767
    assert geometry.capacity_for(MatchKind.L2_L3) == 369


def test_adaptive_mode_matches_switch1():
    """Switch #1: 4K L2/L3-only entries, 2K combined (Table 1)."""
    geometry = TcamGeometry(slot_units=4096, mode=TcamMode.ADAPTIVE, wide_cost=2.0)
    assert geometry.capacity_for(MatchKind.L3) == 4096
    assert geometry.capacity_for(MatchKind.L2_L3) == 2048


def test_geometry_validation():
    with pytest.raises(ValueError):
        TcamGeometry(slot_units=0)
    with pytest.raises(ValueError):
        TcamGeometry(slot_units=10, wide_cost=0.5)


# -- shift model --------------------------------------------------------------
def test_ascending_inserts_never_shift():
    model = PriorityShiftModel()
    shifts = [model.record_add(p) for p in range(1, 101)]
    assert shifts == [0] * 100


def test_same_priority_inserts_never_shift():
    model = PriorityShiftModel()
    shifts = [model.record_add(7) for _ in range(100)]
    assert shifts == [0] * 100


def test_descending_inserts_shift_everything():
    model = PriorityShiftModel()
    shifts = [model.record_add(p) for p in range(100, 0, -1)]
    assert shifts == list(range(100))


def test_shifts_for_add_is_pure():
    model = PriorityShiftModel()
    model.record_add(10)
    model.record_add(20)
    assert model.shifts_for_add(5) == 2
    assert model.shifts_for_add(15) == 1
    assert model.shifts_for_add(25) == 0
    assert len(model) == 2  # unchanged


def test_delete_unknown_priority_rejected():
    model = PriorityShiftModel()
    model.record_add(5)
    with pytest.raises(ValueError):
        model.record_delete(6)


def test_delete_reduces_future_shifts():
    model = PriorityShiftModel()
    model.record_add(10)
    model.record_add(20)
    model.record_delete(20)
    assert model.shifts_for_add(5) == 1


def test_clear_resets():
    model = PriorityShiftModel()
    model.record_add(1)
    model.clear()
    assert len(model) == 0
    assert model.shifts_for_add(0) == 0


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
def test_shift_count_equals_strictly_greater_entries(priorities):
    """Invariant: an add shifts exactly the resident higher-priority entries."""
    model = PriorityShiftModel()
    seen = []
    for priority in priorities:
        expected = sum(1 for p in seen if p > priority)
        assert model.record_add(priority) == expected
        seen.append(priority)


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=100))
def test_descending_total_shifts_dominate_ascending(priorities):
    ascending = sorted(priorities)
    descending = sorted(priorities, reverse=True)
    asc_model, desc_model = PriorityShiftModel(), PriorityShiftModel()
    asc_total = sum(asc_model.record_add(p) for p in ascending)
    desc_total = sum(desc_model.record_add(p) for p in descending)
    assert desc_total >= asc_total
