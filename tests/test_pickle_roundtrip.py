"""Pickle round-trip regression tests for shard-crossing state.

The sharded fleet engine (repro.core.shard) ships tasks to worker
processes and journals back score records and inferred models, so every
object on that path must survive ``pickle`` with value equality intact:
a spawn-start worker re-imports everything from scratch, and a model
that pickles into a different repr would silently break the merge
protocol's byte-identity guarantee (TangoDB signatures compare
``repr(value)``).
"""

import pickle

from repro.core.fleet import CachedModel, profile_fingerprint
from repro.core.inference import SwitchInferenceEngine
from repro.core.scores import TangoScoreDatabase
from repro.faults.plan import DisconnectWindow, FaultPlan
from repro.serve import StreamConfig
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import LRU


def _roundtrip(value):
    return pickle.loads(pickle.dumps(value))


def _profile():
    return make_cache_test_profile(
        LRU, layer_sizes=(48, None), layer_means_ms=(0.6, 5.0), name="pkl"
    )


def _model():
    return SwitchInferenceEngine(
        _profile(), seed=3, size_probe_max_rules=48, latency_batch_sizes=(8, 16)
    ).infer(include_policy=False)


def test_inferred_switch_model_roundtrips_by_value():
    model = _model()
    copy = _roundtrip(model)
    assert copy is not model
    assert copy.name == model.name
    assert copy.to_dict() == model.to_dict()
    # The merge protocol compares repr'd record values byte-for-byte.
    assert repr(copy) == repr(model)


def test_switch_profile_fingerprint_survives_pickling():
    profile = _profile()
    copy = _roundtrip(profile)
    # Fingerprints key the cross-shard model cache: a profile that
    # pickles into a different fingerprint would defeat coalescing in
    # every worker process.
    assert profile_fingerprint(copy) == profile_fingerprint(profile)
    assert profile_fingerprint(copy, max_rules=48) == profile_fingerprint(
        profile, max_rules=48
    )


def test_score_record_roundtrips_with_key_equality():
    db = TangoScoreDatabase()
    db.put("sw1", "latency", {"p50": 1.5}, recorded_at_ms=2.0, source="t", batch=4)
    record = db.records()[0]
    copy = _roundtrip(record)
    assert copy.key == record.key
    assert hash(copy.key) == hash(record.key)
    assert copy.value == record.value
    assert copy.recorded_at_ms == record.recorded_at_ms
    assert copy.source == record.source


def test_cached_model_roundtrips_with_fingerprint_stability():
    model = _model()
    entry = CachedModel(
        fingerprint=profile_fingerprint(_profile()),
        model=model,
        origin="pkl",
        recorded_at_ms=9.5,
    )
    copy = _roundtrip(entry)
    assert copy.fingerprint == entry.fingerprint
    assert copy.origin == entry.origin
    assert copy.recorded_at_ms == entry.recorded_at_ms
    assert copy.model.to_dict() == model.to_dict()
    # clone_as on the unpickled model still renames without mutating.
    clone = copy.model.clone_as("other")
    assert clone.name == "other" and copy.model.name == "pkl"


def test_fault_plan_roundtrips_and_stays_frozen():
    plan = FaultPlan(
        seed=5,
        loss_probability=0.05,
        reject_probability=0.01,
        disconnects=(
            DisconnectWindow(start_ms=10.0, reconnect_at_ms=25.0, switch="sw1"),
        ),
    )
    copy = _roundtrip(plan)
    assert copy == plan
    assert copy.is_noop() is plan.is_noop() is False
    assert _roundtrip(FaultPlan(seed=1)).is_noop() is True


def test_stream_config_roundtrips_by_value():
    config = StreamConfig(arrivals=100, tenants=4, churn_interval_ms=50.0, seed=3)
    copy = _roundtrip(config)
    assert copy == config
