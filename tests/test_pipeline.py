"""Tests for multi-table pipeline switches and pipeline inference."""

import pytest

from repro.core.pipeline_inference import PipelineProber
from repro.openflow.actions import DropAction, GotoTableAction, OutputAction
from repro.openflow.channel import ControlChannel
from repro.openflow.errors import BadMatchError, TableFullError
from repro.openflow.match import IpPrefix, Match, PacketFields
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.latency import ConstantLatency, GaussianLatency
from repro.sim.rng import SeededRng
from repro.switches.base import ControlCostModel
from repro.switches.pipeline import PipelineSwitch, PipelineTableSpec
from repro.switches.profiles import SWITCH_2

COST = ControlCostModel(
    add_base_ms=0.5,
    shift_ms=0.05,
    priority_group_ms=0.1,
    mod_ms=0.3,
    del_ms=0.2,
    jitter_std_frac=0.0,
)


def _pipeline(hardware=0, capacities=(64, None, None)):
    """Three-table pipeline: one fast (hardware) table, two slow ones."""
    specs = []
    for index, capacity in enumerate(capacities):
        delay = ConstantLatency(0.4) if index == hardware else ConstantLatency(2.5)
        specs.append(PipelineTableSpec(capacity=capacity, lookup_delay=delay))
    return PipelineSwitch(
        name="pipe",
        tables=specs,
        control_path_delay=ConstantLatency(8.0),
        cost_model=COST,
        hardware_table_id=hardware,
        seed=3,
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


def _add(switch, i, table_id=0, actions=(OutputAction(1),), priority=100):
    switch.apply_flow_mod(
        FlowMod(
            FlowModCommand.ADD, _match(i), priority=priority, actions=actions,
            table_id=table_id,
        )
    )


# -- construction / validation --------------------------------------------------
def test_needs_tables():
    with pytest.raises(ValueError):
        PipelineSwitch(
            "x", [], control_path_delay=ConstantLatency(1), cost_model=COST
        )


def test_hardware_table_id_validated():
    with pytest.raises(ValueError):
        _pipeline(hardware=7)


def test_unknown_table_rejected():
    switch = _pipeline()
    with pytest.raises(BadMatchError):
        _add(switch, 1, table_id=9)


def test_goto_must_point_forward():
    switch = _pipeline()
    with pytest.raises(BadMatchError):
        _add(switch, 1, table_id=1, actions=(GotoTableAction(table_id=0),))
    with pytest.raises(BadMatchError):
        _add(switch, 1, table_id=1, actions=(GotoTableAction(table_id=1),))


def test_goto_out_of_range_rejected():
    switch = _pipeline()
    with pytest.raises(BadMatchError):
        _add(switch, 1, table_id=0, actions=(GotoTableAction(table_id=5),))


def test_single_table_switch_rejects_other_tables():
    switch = SWITCH_2.build(seed=1)
    with pytest.raises(BadMatchError):
        switch.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, _match(1), priority=1, table_id=1)
        )


# -- pipeline forwarding -----------------------------------------------------------
def test_single_table_match_forwards():
    switch = _pipeline()
    _add(switch, 1, table_id=0)
    result = switch.forward_packet_detailed(PacketFields(ip_dst=1))
    assert result.matched and not result.punted
    assert result.delay_ms == pytest.approx(0.4)


def test_goto_chain_accumulates_lookup_delays():
    switch = _pipeline()
    _add(switch, 1, table_id=0, actions=(GotoTableAction(table_id=1),))
    _add(switch, 1, table_id=1, actions=(GotoTableAction(table_id=2),))
    _add(switch, 1, table_id=2, actions=(OutputAction(1),))
    result = switch.forward_packet_detailed(PacketFields(ip_dst=1))
    assert result.matched
    assert result.delay_ms == pytest.approx(0.4 + 2.5 + 2.5)


def test_miss_in_later_table_punts():
    switch = _pipeline()
    _add(switch, 1, table_id=0, actions=(GotoTableAction(table_id=1),))
    result = switch.forward_packet_detailed(PacketFields(ip_dst=1))
    assert result.punted
    assert result.delay_ms == pytest.approx(0.4 + 8.0)
    assert switch.stats.packets_to_controller == 1


def test_miss_in_first_table_punts():
    switch = _pipeline()
    result = switch.forward_packet_detailed(PacketFields(ip_dst=9))
    assert result.punted and not result.matched


def test_tables_are_independent_rule_spaces():
    switch = _pipeline()
    _add(switch, 1, table_id=0, actions=(GotoTableAction(table_id=1),), priority=5)
    _add(switch, 1, table_id=1, actions=(DropAction(),), priority=9)
    assert switch.num_flows == 2
    switch.apply_flow_mod(
        FlowMod(FlowModCommand.DELETE, _match(1), actions=(), table_id=1)
    )
    assert switch.num_flows == 1
    # Table 0's rule survives its namesake's deletion in table 1.
    assert switch.stacks[0].lookup_exact(_match(1)) is not None


def test_capacity_enforced_per_table():
    switch = _pipeline(capacities=(2, None, None))
    _add(switch, 1, table_id=0)
    _add(switch, 2, table_id=0)
    with pytest.raises(TableFullError):
        _add(switch, 3, table_id=0)
    # The software tables still absorb rules.
    _add(switch, 3, table_id=1)


def test_shift_cost_applies_only_to_hardware_table():
    switch = _pipeline()
    start = switch.clock.now_ms
    for i, priority in enumerate((30, 20, 10)):
        _add(switch, i, table_id=1, priority=priority)
    software_time = switch.clock.now_ms - start
    assert switch.stats.total_shifts == 0
    start = switch.clock.now_ms
    for i, priority in enumerate((30, 20, 10)):
        _add(switch, 10 + i, table_id=0, priority=priority)
    hardware_time = switch.clock.now_ms - start
    assert switch.stats.total_shifts == 3
    assert hardware_time > software_time


def test_reset_rules_clears_all_tables():
    switch = _pipeline()
    _add(switch, 1, table_id=0)
    _add(switch, 2, table_id=1)
    switch.reset_rules()
    assert switch.num_flows == 0


def test_flow_stats_report_table_names():
    switch = _pipeline()
    _add(switch, 1, table_id=2)
    from repro.openflow.messages import FlowStatsRequest

    reply = switch.collect_flow_stats(FlowStatsRequest())
    assert reply.entries[0].table_name == "table2"


# -- inference -----------------------------------------------------------------------
def _prober(hardware=0, capacities=(64, None, None), size_cap=256):
    switch = _pipeline(hardware=hardware, capacities=capacities)
    channel = ControlChannel(switch, rng=SeededRng(5).child("pc"))
    return PipelineProber(channel, rng=SeededRng(5).child("pp"), size_cap=size_cap)


def test_count_tables():
    assert _prober().count_tables() == 3


def test_count_tables_single_table_switch():
    switch = SWITCH_2.build(seed=1)
    prober = PipelineProber(ControlChannel(switch), rng=SeededRng(1).child("x"))
    assert prober.count_tables() == 1


def test_lookup_latencies_isolated_per_table():
    prober = _prober(hardware=1)
    lookups = prober.measure_lookups(3)
    # Table 1 is the fast one; increments isolate it.
    assert lookups[1] < lookups[2]
    assert lookups[1] < 1.0
    assert lookups[2] > 2.0


@pytest.mark.parametrize("hardware", [0, 1, 2])
def test_full_probe_finds_hardware_table(hardware):
    result = _prober(hardware=hardware).probe(measure_sizes=False)
    assert result.num_tables == 3
    assert result.hardware_table_id == hardware


def test_full_probe_measures_sizes():
    result = _prober(capacities=(64, 32, None), size_cap=128).probe()
    assert result.table_sizes == [64, 32, None]


def test_probe_leaves_switch_clean():
    prober = _prober(size_cap=128)
    prober.probe()
    assert prober.channel.switch.num_flows == 0
