"""Tests for fleet-scale concurrent inference (repro.core.fleet)."""

import pytest

from repro.core.fleet import (
    FLEET_DB_SWITCH,
    MODEL_CACHE_METRIC,
    FleetInferenceEngine,
    FleetMember,
    ModelCache,
    build_fleet,
    profile_fingerprint,
)
from repro.core.inference import SwitchInferenceEngine
from repro.core.scores import TangoScoreDatabase
from repro.faults import FaultInjector, RetryPolicy
from repro.faults.plan import FaultPlan
from repro.switches.profiles import make_cache_test_profile
from repro.tables.policies import FIFO, LIFO, LRU, PRIORITY_CACHE

#: Small knobs so a full probe run stays fast while hitting every stage.
FAST = {"size_probe_max_rules": 192, "latency_batch_sizes": (20, 60)}


def _profiles(count=4):
    """``count`` behaviourally distinct tiny profiles."""
    specs = [
        (FIFO, (64, None), (0.5, 4.8)),
        (LRU, (48, None), (0.6, 5.0)),
        (LIFO, (96, None), (0.4, 4.2)),
        (PRIORITY_CACHE, (80, None), (0.7, 5.2)),
    ]
    return [
        make_cache_test_profile(
            policy, layer_sizes=sizes, layer_means_ms=means, name=f"prof-{i}"
        )
        for i, (policy, sizes, means) in enumerate(specs[:count])
    ]


# -- fingerprints and membership ------------------------------------------------
def test_fingerprint_ignores_name_but_not_behavior():
    import dataclasses

    base = _profiles(2)[0]
    renamed = dataclasses.replace(base, name="totally-different")
    other = _profiles(2)[1]
    assert profile_fingerprint(base) == profile_fingerprint(renamed)
    assert profile_fingerprint(base) != profile_fingerprint(other)
    # Inference config is part of the key: different knobs never share models.
    assert profile_fingerprint(base, max_rules=192) != profile_fingerprint(
        base, max_rules=8192
    )


def test_build_fleet_names_and_errors():
    profiles = _profiles(2)
    members = build_fleet(profiles, 5)
    assert [m.name for m in members] == [
        "prof-0", "prof-1", "prof-0#2", "prof-1#2", "prof-0#3",
    ]
    assert members[2].profile is profiles[0]
    assert members[2].named_profile().name == "prof-0#2"
    with pytest.raises(ValueError):
        build_fleet([], 3)
    with pytest.raises(ValueError):
        build_fleet(profiles, 0)


def test_fleet_engine_rejects_duplicates_and_bad_knobs():
    profile = _profiles(1)[0]
    members = [FleetMember("a", profile), FleetMember("a", profile)]
    with pytest.raises(ValueError):
        FleetInferenceEngine(members)
    with pytest.raises(ValueError):
        FleetInferenceEngine([FleetMember("a", profile)], max_in_flight=0)


# -- byte identity with the sequential engine ------------------------------------
def test_single_member_fleet_is_byte_identical_to_sequential_infer():
    profile = _profiles(1)[0]

    seq_scores = TangoScoreDatabase()
    sequential = SwitchInferenceEngine(
        profile, scores=seq_scores, seed=11, **FAST
    ).infer(include_policy=False)

    fleet_scores = TangoScoreDatabase()
    engine = FleetInferenceEngine(
        [profile], scores=fleet_scores, seed=11, **FAST
    )
    result = engine.infer_fleet(include_policy=False)

    assert len(result.members) == 1
    member = result.members[0]
    assert member.full_probe
    assert member.model.to_dict() == sequential.to_dict()
    # The member's per-switch TangoDB records match the sequential run's
    # exactly: same keys, timestamps, and provenance.
    seq_records = seq_scores.records_for_switch(profile.name)
    fleet_records = fleet_scores.records_for_switch(profile.name)
    assert [(r.key, r.recorded_at_ms, r.source) for r in seq_records] == [
        (r.key, r.recorded_at_ms, r.source) for r in fleet_records
    ]
    # Virtual makespan equals the member's own probe duration.
    assert result.makespan_ms == pytest.approx(member.duration_ms)


# -- concurrency, caching, coalescing --------------------------------------------
def test_sixteen_switch_fleet_pays_four_probe_runs_and_max_makespan():
    """The acceptance scenario: 16 switches over 4 distinct profiles."""
    members = build_fleet(_profiles(4), 16)
    engine = FleetInferenceEngine(members, seed=2, **FAST)
    result = engine.infer_fleet(include_policy=False)

    assert len(result.members) == 16
    assert result.full_probe_runs == 4  # one per distinct fingerprint
    assert result.cache_hits + result.coalesced_joins == 12
    full = [m for m in result.members if m.full_probe]
    slowest = max(m.duration_ms for m in full)
    # Unbounded admission: the fleet finishes with its slowest member,
    # comfortably under the 1.5x acceptance bound.
    assert result.makespan_ms == pytest.approx(slowest)
    assert result.makespan_ms <= 1.5 * slowest
    assert result.sequential_sum_ms > result.makespan_ms
    assert result.speedup > 1.0
    # Every member got a model named after itself.
    assert sorted(result.models) == sorted(m.name for m in members)
    for member in result.members:
        assert member.model.name == member.name


def test_max_in_flight_one_without_cache_serialises_the_fleet():
    members = build_fleet(_profiles(2), 3)
    engine = FleetInferenceEngine(
        members, seed=4, max_in_flight=1, use_cache=False, **FAST
    )
    result = engine.infer_fleet(include_policy=False)
    assert result.full_probe_runs == 3  # no cache, no coalescing
    assert result.makespan_ms == pytest.approx(result.sequential_sum_ms)
    # Deterministic admission order: members start back to back.
    finishes = [m.finished_ms for m in result.members]
    starts = [m.started_ms for m in result.members]
    assert starts[0] == 0.0
    assert starts[1] == pytest.approx(finishes[0])
    assert starts[2] == pytest.approx(finishes[1])


def test_warm_cache_run_probes_nothing():
    scores = TangoScoreDatabase()
    members = build_fleet(_profiles(2), 4)
    first = FleetInferenceEngine(members, scores=scores, seed=6, **FAST)
    cold = first.infer_fleet(include_policy=False)
    assert cold.full_probe_runs == 2

    second = FleetInferenceEngine(members, scores=scores, seed=6, **FAST)
    warm = second.infer_fleet(include_policy=False)
    assert warm.full_probe_runs == 0
    assert warm.cache_hits == 4
    assert warm.makespan_ms == 0.0  # cached models cost no virtual time
    assert second.cache.hits == 4
    # Cached models still land under each member's own name in TangoDB.
    for member in warm.members:
        record = scores.get_record(member.name, "switch_model")
        assert record is not None
        assert record.source.startswith("fleet_cache:")
    # Models transfer across runs byte for byte.
    assert {n: m.to_dict() for n, m in warm.models.items()} == {
        n: m.to_dict() for n, m in cold.models.items()
    }


def test_fleet_replay_is_deterministic():
    def run():
        members = build_fleet(_profiles(3), 6)
        engine = FleetInferenceEngine(members, seed=13, max_in_flight=2, **FAST)
        result = engine.infer_fleet(include_policy=False)
        return (
            result.makespan_ms,
            result.summary(),
            {n: m.to_dict() for n, m in result.models.items()},
        )

    assert run() == run()


# -- drift-driven invalidation ----------------------------------------------------
def test_drift_invalidation_reprobes_only_the_changed_fingerprint():
    scores = TangoScoreDatabase()
    members = build_fleet(_profiles(4), 8)
    engine = FleetInferenceEngine(members, scores=scores, seed=7, **FAST)
    cold = engine.infer_fleet(include_policy=False)
    assert cold.full_probe_runs == 4

    # One profile's switches drift (say a firmware update halves layer 0):
    # a fresh observation disagrees with the cached model, so the entry
    # for that fingerprint -- and only that one -- is dropped.
    drifted = engine.fingerprint_for(members[1], include_policy=False)
    stale = engine.cache.peek(drifted)
    assert stale is not None
    fresh_summary = stale.model.to_dict()
    fresh_summary["layers"][0]["size"] = fresh_summary["layers"][0]["size"] // 2
    findings = engine.cache.invalidate_if_drifted(drifted, fresh_summary)
    assert findings  # material size change -> drift
    assert engine.cache.peek(drifted) is None

    rerun = FleetInferenceEngine(
        members, scores=scores, seed=7, **FAST
    ).infer_fleet(include_policy=False)
    # Exactly one full probe (the drifted fingerprint's leader); its twin
    # coalesces onto it and the other 6 members stay cache hits.
    assert rerun.full_probe_runs == 1
    assert rerun.by_name(members[1].name).full_probe
    assert rerun.cache_hits == 6
    assert rerun.coalesced_joins == 1


def test_reprobe_member_without_drift_keeps_the_cache():
    scores = TangoScoreDatabase()
    members = build_fleet(_profiles(2), 2)
    engine = FleetInferenceEngine(members, scores=scores, seed=9, **FAST)
    engine.infer_fleet(include_policy=False)
    fingerprint = engine.fingerprint_for(members[0], include_policy=False)
    model, findings = engine.reprobe_member(members[0].name, include_policy=False)
    assert findings == []  # same switch, same seed: no drift
    assert engine.cache.peek(fingerprint) is not None
    assert model.name == members[0].name


def test_invalidate_if_drifted_on_missing_entry_is_empty():
    cache = ModelCache(TangoScoreDatabase())
    assert cache.invalidate_if_drifted("no-such-fingerprint", {"layers": []}) == []
    assert cache.invalidate("no-such-fingerprint") is False


# -- faults --------------------------------------------------------------------
def test_faulted_fleet_disables_coalescing_and_cache_stores():
    plan = FaultPlan(seed=5, loss_probability=0.05)
    members = build_fleet(_profiles(2), 4)

    def run():
        engine = FleetInferenceEngine(
            members,
            seed=21,
            fault_injector=FaultInjector(plan),
            retry_policy=RetryPolicy(),
            **FAST,
        )
        result = engine.infer_fleet(include_policy=False)
        return engine, result

    engine, result = run()
    # Fault decision streams are per switch name, so every member must
    # run its own probes; and a faulted run must never seed the cache.
    assert result.full_probe_runs == 4
    assert result.cache_hits == 0 and result.coalesced_joins == 0
    assert engine.cache.stores == 0
    # A fixed (seed, fleet, fault plan) replays exactly.
    _, replay = run()
    assert replay.summary() == result.summary()
    assert {n: m.to_dict() for n, m in replay.models.items()} == {
        n: m.to_dict() for n, m in result.models.items()
    }


# -- provenance and telemetry -----------------------------------------------------
def test_fleet_run_provenance_lands_in_tangodb():
    scores = TangoScoreDatabase()
    members = build_fleet(_profiles(2), 3)
    result = FleetInferenceEngine(
        members, scores=scores, seed=1, **FAST
    ).infer_fleet(include_policy=False)
    record = scores.get_record(
        FLEET_DB_SWITCH, "fleet_run", members=len(members)
    )
    assert record is not None
    assert record.source == "fleet_engine"
    assert record.value == result.summary()
    # The cache entries live under the fleet pseudo-switch too.
    cached = [
        r
        for r in scores.records_for_switch(FLEET_DB_SWITCH)
        if r.key.metric == MODEL_CACHE_METRIC
    ]
    assert len(cached) == 2


def test_fleet_driver_emits_spans_events_and_metrics():
    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer()
    metrics = MetricsRegistry()
    members = build_fleet(_profiles(2), 4)
    result = FleetInferenceEngine(
        members, seed=3, tracer=tracer, metrics=metrics, **FAST
    ).infer_fleet(include_policy=False)

    spans = [e for e in tracer.events if e.name == "fleet.infer"]
    assert len(spans) == 1
    assert spans[0].attrs["members"] == 4
    assert spans[0].attrs["full_probes"] == 2
    assert spans[0].end_ms == pytest.approx(result.makespan_ms)
    starts = [e for e in tracer.events if e.name == "fleet.member_start"]
    finishes = [e for e in tracer.events if e.name == "fleet.member_finish"]
    assert len(starts) == len(finishes) == 4
    assert {e.attrs["source"] for e in finishes} == {"probe", "coalesced"}
    stages = [e for e in tracer.events if e.name == "fleet.stage"]
    assert {e.attrs["stage"] for e in stages} == {
        "size", "behavior", "latency_curves",
    }

    snapshot = metrics.snapshot()
    assert snapshot["fleet.members"] == 4
    assert snapshot["fleet.full_probes"] == 2
    assert snapshot["fleet.coalesced_joins"] == 2
    # Every member is admitted at t=0, before any store: all four look
    # up the cache and miss (the duplicates then coalesce).
    assert snapshot["fleet.cache_misses"] == 4
    assert snapshot["fleet.makespan_ms"] == pytest.approx(result.makespan_ms)


# -- the TangoDB secondary index ---------------------------------------------------
def test_score_db_index_matches_linear_scan_ordering():
    db = TangoScoreDatabase()
    for i in range(6):
        db.put(f"sw{i % 3}", "rtt", float(i), trial=i)
    db.put("sw0", "size", 42)
    # Overwrite an existing key: its position must not move.
    db.put("sw0", "rtt", 99.0, trial=0)

    def linear_scan(switch):
        return [r for r in db._records.values() if r.key.switch == switch]

    for switch in ("sw0", "sw1", "sw2"):
        indexed = db.records_for_switch(switch)
        assert indexed == linear_scan(switch)
    assert [r.value for r in db.records_for_switch("sw0")] == [99.0, 3.0, 42]
    assert db.metrics_for_switch("sw0") == ["rtt", "size"]
    assert db.switches() == ["sw0", "sw1", "sw2"]
    assert db.records_for_switch("absent") == []
    assert db.metrics_for_switch("absent") == []


def test_score_db_remove_maintains_index():
    db = TangoScoreDatabase()
    db.put("sw", "rtt", 1.0, trial=0)
    db.put("sw", "rtt", 2.0, trial=1)
    assert db.remove("sw", "rtt", trial=0) is True
    assert db.remove("sw", "rtt", trial=0) is False  # already gone
    assert [r.value for r in db.records_for_switch("sw")] == [2.0]
    assert len(db) == 1
    assert db.remove("sw", "rtt", trial=1) is True
    assert db.switches() == []  # empty bucket dropped
    assert db.records_for_switch("sw") == []
