"""Property-based tests for the pipeline switch."""

from hypothesis import given, settings, strategies as st

from repro.openflow.actions import GotoTableAction, OutputAction
from repro.openflow.errors import BadMatchError, TableFullError
from repro.openflow.match import IpPrefix, Match, PacketFields
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel
from repro.switches.pipeline import PipelineSwitch, PipelineTableSpec

COST = ControlCostModel(
    add_base_ms=0.5,
    shift_ms=0.02,
    priority_group_ms=0.0,
    mod_ms=0.3,
    del_ms=0.2,
    jitter_std_frac=0.0,
)


def _switch(n_tables=3, capacity=5):
    return PipelineSwitch(
        name="prop-pipe",
        tables=[
            PipelineTableSpec(capacity=capacity, lookup_delay=ConstantLatency(1.0))
            for _ in range(n_tables)
        ],
        control_path_delay=ConstantLatency(8.0),
        cost_model=COST,
        hardware_table_id=0,
        seed=2,
    )


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "goto", "del", "packet"]),
        st.integers(min_value=0, max_value=12),  # match key
        st.integers(min_value=0, max_value=2),  # table
    ),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(operations)
def test_pipeline_invariants_under_random_operations(ops):
    """Per-table capacities hold; traversal delay is bounded by the
    pipeline length; the clock never regresses."""
    switch = _switch()
    live = {}  # (key, table) -> kind
    last_clock = switch.clock.now_ms
    for op, key, table in ops:
        match = _match(key)
        try:
            if op == "add" and (key, table) not in live:
                switch.apply_flow_mod(
                    FlowMod(FlowModCommand.ADD, match, priority=1, table_id=table)
                )
                live[(key, table)] = "out"
            elif op == "goto" and (key, table) not in live and table < 2:
                switch.apply_flow_mod(
                    FlowMod(
                        FlowModCommand.ADD,
                        match,
                        priority=1,
                        actions=(GotoTableAction(table_id=table + 1),),
                        table_id=table,
                    )
                )
                live[(key, table)] = "goto"
            elif op == "del":
                switch.apply_flow_mod(
                    FlowMod(FlowModCommand.DELETE, match, actions=(), table_id=table)
                )
                live.pop((key, table), None)
            elif op == "packet":
                result = switch.forward_packet_detailed(PacketFields(ip_dst=key))
                # At most 3 lookups (1 ms each) + one control-path punt.
                assert result.delay_ms <= 3 * 1.0 + 8.0 + 1e-9
        except TableFullError:
            # The rejected table must genuinely be at capacity.
            assert len(switch.stacks[table]) == 5
        assert switch.clock.now_ms >= last_clock
        last_clock = switch.clock.now_ms
        assert switch.num_flows == len(live)
        for stack in switch.stacks:
            assert len(stack) <= 5


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=3, unique=True)
)
def test_goto_chain_delay_counts_visited_tables(tables_with_rules):
    """A packet pays one lookup per table it actually traverses."""
    switch = _switch()
    # Chain through the chosen tables in order; last one outputs.
    chain = sorted(tables_with_rules)
    if chain[0] != 0:
        return  # traversal always starts at table 0
    match = _match(1)
    for position, table in enumerate(chain):
        is_last = position == len(chain) - 1
        actions = (
            (OutputAction(1),)
            if is_last
            else (GotoTableAction(table_id=chain[position + 1]),)
        )
        switch.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, match, priority=1, actions=actions, table_id=table)
        )
    result = switch.forward_packet_detailed(PacketFields(ip_dst=1))
    assert result.matched
    assert result.delay_ms == len(chain) * 1.0
