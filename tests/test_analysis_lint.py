"""The AST determinism linter (repro.analysis.lint)."""

import io
from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths, lint_source, main

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _codes(source, relpath="core/example.py"):
    return [d.code for d in lint_source(source, relpath)]


# -- TNG030: wall clock -------------------------------------------------------
def test_wall_clock_call_is_flagged():
    assert _codes("import time\nstart = time.time()\n") == ["TNG030"]
    assert _codes("t = time.perf_counter()\n") == ["TNG030"]
    assert _codes("from datetime import datetime\nd = datetime.now()\n") == ["TNG030"]


def test_wall_clock_allowed_inside_sim():
    assert _codes("import time\nstart = time.time()\n", "sim/clock.py") == []


def test_wall_clock_allowed_inside_perf():
    """tango-bench measures host wall time by design (reported for
    humans; its regression gate uses deterministic op counts)."""
    assert _codes("import time\nt = time.perf_counter()\n", "perf/harness.py") == []


def test_wall_clock_ns_variants_are_flagged():
    assert _codes("import time\nt = time.perf_counter_ns()\n") == ["TNG030"]
    assert _codes("import time\nt = time.monotonic_ns()\n") == ["TNG030"]
    assert _codes("import time\nt = time.time_ns()\n") == ["TNG030"]
    assert _codes("import time\nt = time.process_time_ns()\n") == ["TNG030"]


def test_wall_clock_ns_variants_allowed_inside_perf():
    assert (
        _codes("import time\nt = time.perf_counter_ns()\n", "perf/harness.py") == []
    )


def test_datetime_dotted_now_and_utcnow_are_flagged():
    assert _codes("import datetime\nd = datetime.datetime.now()\n") == ["TNG030"]
    assert _codes("import datetime\nd = datetime.datetime.utcnow()\n") == ["TNG030"]


def test_virtual_clock_reads_are_fine():
    assert _codes("now = clock.now_ms\n") == []


# -- TNG031: unseeded randomness ---------------------------------------------
def test_random_import_is_flagged():
    assert _codes("import random\n") == ["TNG031"]
    assert _codes("from random import shuffle\n") == ["TNG031"]


def test_numpy_module_level_random_is_flagged():
    assert _codes("import numpy as np\nx = np.random.random()\n") == ["TNG031"]
    assert _codes("gen = np.random.default_rng()\n") == ["TNG031"]


def test_random_allowed_in_rng_module():
    assert _codes("import numpy as np\ng = np.random.default_rng(0)\n", "sim/rng.py") == []


def test_seeded_rng_usage_is_fine():
    assert _codes("value = rng.uniform(0, 1)\n") == []


# -- TNG032: unordered iteration ---------------------------------------------
def test_for_over_set_call_is_flagged():
    assert _codes("for item in set(items):\n    use(item)\n") == ["TNG032"]


def test_for_over_set_literal_is_flagged():
    assert _codes("for item in {a, b}:\n    use(item)\n") == ["TNG032"]


def test_comprehension_over_set_is_flagged():
    assert _codes("out = [f(x) for x in frozenset(items)]\n") == ["TNG032"]


def test_sorted_set_iteration_is_fine():
    assert _codes("for item in sorted(set(items)):\n    use(item)\n") == []


def test_set_membership_is_fine():
    assert _codes("if x in {1, 2, 3}:\n    pass\n") == []


# -- TNG033: mutable defaults -------------------------------------------------
def test_mutable_default_list_is_flagged():
    assert _codes("def f(items=[]):\n    return items\n") == ["TNG033"]


def test_mutable_default_constructor_is_flagged():
    assert _codes("def f(cache=dict()):\n    return cache\n") == ["TNG033"]


def test_mutable_kwonly_default_is_flagged():
    assert _codes("def f(*, seen=set()):\n    return seen\n") == ["TNG033"]


def test_none_default_is_fine():
    assert _codes("def f(items=None):\n    return items or []\n") == []


def test_tuple_default_is_fine():
    assert _codes("def f(items=()):\n    return items\n") == []


# -- TNG034: unparseable source -----------------------------------------------
def test_syntax_error_is_reported_not_raised():
    (diag,) = lint_source("def broken(:\n", "core/oops.py").diagnostics
    assert diag.code == "TNG034"
    assert diag.location == "core/oops.py:1"


def test_syntax_error_does_not_abort_sibling_files(tmp_path):
    (tmp_path / "a_bad.py").write_text("def broken(:\n")
    (tmp_path / "b_good.py").write_text("import random\n")
    report = lint_paths([str(tmp_path)])
    assert sorted(d.code for d in report) == ["TNG031", "TNG034"]


def test_main_rejects_missing_target_cleanly():
    with pytest.raises(SystemExit) as excinfo:
        main(["/no/such/dir"], out=io.StringIO())
    assert excinfo.value.code == 2


# -- whole-package self-lint --------------------------------------------------
def test_src_repro_passes_the_determinism_linter():
    report = lint_paths([str(SRC_ROOT)])
    assert report.errors() == []
    assert report.warnings() == []


def test_main_exits_zero_on_clean_tree():
    out = io.StringIO()
    assert main([str(SRC_ROOT)], out=out) == 0
    assert "0 error(s)" in out.getvalue()


def test_main_exits_nonzero_on_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    out = io.StringIO()
    assert main([str(tmp_path)], out=out) == 1
    assert "TNG031" in out.getvalue()


def test_lint_reports_file_and_line_location():
    (code,) = lint_source("x = 1\nimport random\n", "apps/demo.py").diagnostics
    assert code.location == "apps/demo.py:2"


# -- TNG035: swallowed exceptions ---------------------------------------------
def test_bare_except_swallow_is_flagged():
    assert _codes("try:\n    f()\nexcept:\n    pass\n") == ["TNG035"]


def test_broad_except_swallow_is_flagged():
    assert _codes("try:\n    f()\nexcept Exception:\n    log()\n") == ["TNG035"]
    assert _codes("try:\n    f()\nexcept BaseException as e:\n    note(e)\n") == [
        "TNG035"
    ]


def test_broad_except_in_tuple_is_flagged():
    source = "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n"
    assert _codes(source) == ["TNG035"]


def test_broad_except_that_reraises_is_fine():
    source = "try:\n    f()\nexcept Exception:\n    cleanup()\n    raise\n"
    assert _codes(source) == []


def test_broad_except_raising_other_exception_is_fine():
    source = "try:\n    f()\nexcept Exception as e:\n    raise RuntimeError(str(e))\n"
    assert _codes(source) == []


def test_narrow_except_swallow_is_fine():
    source = (
        "try:\n    f()\nexcept RetryGiveUpError:\n    pass\n"
        "try:\n    g()\nexcept (ValueError, KeyError):\n    pass\n"
    )
    assert _codes(source) == []


def test_nested_raise_inside_conditional_counts():
    source = (
        "try:\n    f()\nexcept Exception as e:\n"
        "    if fatal(e):\n        raise\n    else:\n        log(e)\n"
    )
    assert _codes(source) == []


# -- TNG041: module-level mutable state ----------------------------------------
def test_module_level_mutable_state_flagged_in_core():
    assert _codes("registry = {}\n") == ["TNG041"]
    assert _codes("pending = []\n", "sim/driver.py") == ["TNG041"]
    assert _codes("seen = set()\n") == ["TNG041"]
    assert _codes("queues = defaultdict(list)\n") == ["TNG041"]
    assert _codes("cache: dict = {}\n") == ["TNG041"]


def test_constant_convention_and_dunder_bindings_are_exempt():
    assert _codes("VENDOR_TABLE = {}\n") == []
    assert _codes("_PRIVATE_MAP = {'a': 1}\n") == []
    assert _codes("__all__ = ['x']\n") == []


def test_module_level_mutable_state_outside_scope_is_fine():
    assert _codes("registry = {}\n", "tools/cli.py") == []
    assert _codes("registry = {}\n", "analysis/lint.py") == []


def test_immutable_and_class_level_bindings_are_fine():
    assert _codes("origin = (0, 0)\n") == []
    assert _codes("class C:\n    shared = {}\n") == []
    assert _codes("def f():\n    local = {}\n    return local\n") == []


# -- TNG042: generator shared-state mutation -----------------------------------
def test_generator_mutating_global_is_flagged():
    source = (
        "def steps():\n"
        "    global shared\n"
        "    yield 'a'\n"
        "    shared = 1\n"
    )
    assert _codes(source) == ["TNG042"]


def test_generator_calling_mutating_method_on_global_is_flagged():
    source = (
        "def steps():\n"
        "    global shared\n"
        "    yield 'a'\n"
        "    shared.append(1)\n"
    )
    assert _codes(source) == ["TNG042"]


def test_generator_mutating_nonlocal_is_flagged():
    source = (
        "def outer():\n"
        "    count = 0\n"
        "    def steps():\n"
        "        nonlocal count\n"
        "        yield 'a'\n"
        "        count += 1\n"
        "    return steps\n"
    )
    assert _codes(source) == ["TNG042"]


def test_plain_function_mutating_global_is_not_a_generator_finding():
    source = "def f():\n    global shared\n    shared = 1\n"
    assert _codes(source) == []


def test_generator_with_local_state_only_is_fine():
    source = (
        "def steps():\n"
        "    local = []\n"
        "    yield 'a'\n"
        "    local.append(1)\n"
    )
    assert _codes(source) == []


# -- TNG043: object-identity ordering ------------------------------------------
def test_sorted_by_id_is_flagged():
    assert _codes("out = sorted(items, key=id)\n") == ["TNG043"]
    assert _codes("items.sort(key=id)\n") == ["TNG043"]
    assert _codes("best = min(items, key=id)\n") == ["TNG043"]


def test_lambda_id_key_is_flagged():
    assert _codes("out = sorted(items, key=lambda x: id(x))\n") == ["TNG043"]
    assert _codes("out = sorted(items, key=lambda x: (id(x), x.t))\n") == ["TNG043"]


def test_id_ordering_comparison_is_flagged():
    assert _codes("first = id(a) < id(b)\n") == ["TNG043"]
    assert _codes("if id(a) >= threshold:\n    pass\n") == ["TNG043"]


def test_id_equality_and_stable_keys_are_fine():
    assert _codes("same = id(a) == id(b)\n") == []
    assert _codes("out = sorted(items, key=lambda x: x.name)\n") == []
    assert _codes("out = sorted(items)\n") == []


# -- per-line suppression ------------------------------------------------------
def test_suppression_comment_silences_the_named_code():
    assert _codes("registry = {}  # tango-lint: disable=TNG041\n") == []


def test_suppression_comment_with_multiple_codes():
    source = "def f(x=[]):  # tango-lint: disable=TNG033,TNG041\n    return x\n"
    assert _codes(source) == []


def test_suppression_only_applies_to_named_code_and_line():
    # Wrong code named: the finding stays.
    assert _codes("registry = {}  # tango-lint: disable=TNG033\n") == ["TNG041"]
    # Different line: the finding stays.
    source = "# tango-lint: disable=TNG041\nregistry = {}\n"
    assert _codes(source) == ["TNG041"]


# -- --format json and exit codes ----------------------------------------------
def test_main_json_format_emits_machine_readable_report(tmp_path):
    import json

    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    out = io.StringIO()
    assert main([str(tmp_path), "--format", "json"], out=out) == 1
    payload = json.loads(out.getvalue())
    assert payload["errors"] == 1
    assert payload["files"] == 1
    assert payload["diagnostics"][0]["code"] == "TNG031"


def test_main_json_format_on_clean_tree_exits_zero(tmp_path):
    import json

    (tmp_path / "ok.py").write_text("x = 1\n")
    out = io.StringIO()
    assert main([str(tmp_path), "--format", "json"], out=out) == 0
    payload = json.loads(out.getvalue())
    assert payload == {
        "diagnostics": [],
        "errors": 0,
        "files": 1,
        "warnings": 0,
    }


def test_examples_and_benchmarks_pass_the_linter():
    repo_root = SRC_ROOT.parent.parent
    report = lint_paths(
        [str(repo_root / "examples"), str(repo_root / "benchmarks")]
    )
    assert report.errors() == []
