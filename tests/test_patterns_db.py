"""Tests for the Tango pattern database and rewrite-pattern mechanics."""

import pytest

from repro.core.patterns import (
    ProbePattern,
    TangoPatternDatabase,
    default_rewrite_patterns,
    make_del_mod_add_pattern,
    make_type_only_pattern,
)
from repro.openflow.messages import FlowModCommand


def test_database_starts_with_default_rewrites():
    db = TangoPatternDatabase()
    names = {p.name for p in db.rewrite_patterns}
    assert names == {"DEL MOD ASCEND_ADD", "DEL MOD DESCEND_ADD"}


def test_probe_pattern_registration_roundtrip():
    db = TangoPatternDatabase()
    pattern = ProbePattern(name="size-probe", description="doubling fill")
    db.register_probe(pattern)
    assert db.get_probe("size-probe") is pattern
    assert pattern in db.probe_patterns


def test_unknown_probe_pattern_raises():
    with pytest.raises(KeyError):
        TangoPatternDatabase().get_probe("nope")


def test_rewrite_registration_overwrites_by_name():
    db = TangoPatternDatabase()
    replacement = make_del_mod_add_pattern(
        "DEL MOD ASCEND_ADD", add_weight=99.0, ascending_adds=True
    )
    db.register_rewrite(replacement)
    assert db.get_rewrite("DEL MOD ASCEND_ADD") is replacement
    assert len(db.rewrite_patterns) == 2


def test_order_key_groups_commands_del_mod_add():
    pattern = default_rewrite_patterns()[0]
    del_key = pattern.order_key(FlowModCommand.DELETE, 100)
    mod_key = pattern.order_key(FlowModCommand.MODIFY, 1)
    add_key = pattern.order_key(FlowModCommand.ADD, 1)
    assert del_key < mod_key < add_key


def test_ascending_vs_descending_priority_keys():
    ascending, descending = default_rewrite_patterns()
    assert ascending.order_key(FlowModCommand.ADD, 1) < ascending.order_key(
        FlowModCommand.ADD, 9
    )
    assert descending.order_key(FlowModCommand.ADD, 9) < descending.order_key(
        FlowModCommand.ADD, 1
    )


def test_type_only_pattern_ignores_priority():
    pattern = make_type_only_pattern()
    assert pattern.order_key(FlowModCommand.ADD, 1) == pattern.order_key(
        FlowModCommand.ADD, 999
    )


def test_score_is_monotone_in_counts():
    pattern = default_rewrite_patterns()[0]
    fewer = pattern.score_counts({FlowModCommand.ADD: 2})
    more = pattern.score_counts({FlowModCommand.ADD: 5})
    assert more < fewer  # more adds -> worse (more negative) score


def test_quadratic_add_term():
    pattern = make_del_mod_add_pattern("x", add_weight=1.0, del_weight=0, mod_weight=0)
    assert pattern.score_counts({FlowModCommand.ADD: 3}) == -9
    assert pattern.score_counts({FlowModCommand.ADD: 0}) == 0
