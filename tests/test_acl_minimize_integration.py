"""Integration: ACL minimisation reduces hardware install time."""

import pytest

from repro.apps import AclApplication
from repro.core.scheduler import BasicTangoScheduler, NetworkExecutor
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.switches.profiles import SWITCH_1
from repro.sim.rng import SeededRng


def _build_shadow_heavy_acl(n_families=40, leaves=4):
    """An ACL where each family's general rule precedes its (therefore
    unreachable) specific descendants -- a worst-case redundant ACL."""
    rules = []
    rng = SeededRng(11).child("acl")
    for family in range(n_families):
        base = (rng.randint(0, 200) << 24) | (family << 16)
        rules.append(Match(eth_src=family + 1, eth_type=0x0800, ip_dst=IpPrefix(base & 0xFFFF0000, 16)))
        for leaf in range(leaves):
            rules.append(
                Match(
                    eth_src=family + 1,
                    eth_type=0x0800,
                    ip_dst=IpPrefix((base & 0xFFFF0000) | (leaf << 8), 24),
                )
            )
    return rules


def _install_time(rules, minimize):
    app = AclApplication("hw", minimize=minimize)
    dag, requests = app.compile(rules)
    switch = SWITCH_1.build(seed=9)
    switch.name = "hw"
    executor = NetworkExecutor({"hw": ControlChannel(switch)})
    result = BasicTangoScheduler(executor).schedule(dag)
    return result.makespan_ms, len(requests), switch.num_flows


def test_minimisation_removes_unreachable_rules_and_speeds_install():
    rules = _build_shadow_heavy_acl()
    full_time, full_count, full_flows = _install_time(rules, minimize=False)
    min_time, min_count, min_flows = _install_time(rules, minimize=True)

    assert full_count == len(rules)
    # Every leaf rule was shadowed by its family's general rule.
    assert min_count == 40
    assert min_flows == 40
    assert min_time < 0.5 * full_time


def test_minimisation_keeps_exception_rules():
    """Specific-before-general (real exception patterns) must survive."""
    exception = Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A010000, 16))
    default = Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 8))
    app = AclApplication("hw", minimize=True)
    _, requests = app.compile([exception, default])
    assert len(requests) == 2
