"""Tests for the virtual clock."""

import pytest

from repro.sim.clock import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now_ms == 0.0


def test_starts_at_given_time():
    assert VirtualClock(start_ms=5.0).now_ms == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(start_ms=-1.0)


def test_advance_moves_forward():
    clock = VirtualClock()
    assert clock.advance(2.5) == 2.5
    assert clock.now_ms == 2.5


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.0)
    clock.advance(2.0)
    assert clock.now_ms == pytest.approx(3.0)


def test_advance_backwards_rejected():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_advance_zero_is_noop():
    clock = VirtualClock(start_ms=4.0)
    clock.advance(0.0)
    assert clock.now_ms == 4.0


def test_advance_to_future():
    clock = VirtualClock()
    clock.advance_to(10.0)
    assert clock.now_ms == 10.0


def test_advance_to_past_is_noop():
    clock = VirtualClock(start_ms=10.0)
    clock.advance_to(3.0)
    assert clock.now_ms == 10.0


def test_repr_contains_time():
    assert "3.000" in repr(VirtualClock(start_ms=3.0))
