"""Tests for OpenFlow match semantics (overlap, cover, packet matching)."""

import pytest
from hypothesis import given, strategies as st

from repro.openflow.match import IpPrefix, Match, MatchKind, PacketFields


# -- IpPrefix ---------------------------------------------------------------
def test_prefix_mask():
    assert IpPrefix(0, 0).mask == 0
    assert IpPrefix(0x0A000000, 8).mask == 0xFF000000
    assert IpPrefix(0x0A000001, 32).mask == 0xFFFFFFFF


def test_prefix_rejects_host_bits():
    with pytest.raises(ValueError):
        IpPrefix(0x0A000001, 8)


def test_prefix_rejects_bad_length():
    with pytest.raises(ValueError):
        IpPrefix(0, 33)
    with pytest.raises(ValueError):
        IpPrefix(0, -1)


def test_prefix_contains_address():
    prefix = IpPrefix(0x0A000000, 8)
    assert prefix.contains_address(0x0A123456)
    assert not prefix.contains_address(0x0B000000)


def test_prefix_covers_nested():
    wide = IpPrefix(0x0A000000, 8)
    narrow = IpPrefix(0x0A010000, 16)
    assert wide.covers(narrow)
    assert not narrow.covers(wide)


def test_prefix_overlap_iff_nested():
    a = IpPrefix(0x0A000000, 8)
    b = IpPrefix(0x0A010000, 16)
    c = IpPrefix(0x0B000000, 8)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)


def test_prefix_str():
    assert str(IpPrefix(0x0A000000, 8)) == "10.0.0.0/8"


prefix_strategy = st.builds(
    lambda value, length: IpPrefix(value & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0), length),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)


@given(prefix_strategy, prefix_strategy)
def test_prefix_overlap_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(prefix_strategy, prefix_strategy)
def test_prefix_cover_implies_overlap(a, b):
    if a.covers(b):
        assert a.overlaps(b)


@given(prefix_strategy)
def test_prefix_covers_itself(p):
    assert p.covers(p)


# -- Match classification -----------------------------------------------------
def test_empty_match_rejected():
    with pytest.raises(ValueError):
        Match()


def test_l2_kind():
    assert Match(eth_dst=5).kind is MatchKind.L2


def test_eth_type_only_is_l2_width():
    assert Match(eth_type=0x0800).kind is MatchKind.L2


def test_l3_kind_with_eth_type():
    match = Match(eth_type=0x0800, ip_dst=IpPrefix(0, 8))
    assert match.kind is MatchKind.L3


def test_l2_l3_kind():
    match = Match(eth_dst=1, ip_dst=IpPrefix(0, 8))
    assert match.kind is MatchKind.L2_L3


# -- packet matching --------------------------------------------------------------
def test_exact_match_matches_own_packet():
    packet = PacketFields(eth_dst=7, ip_dst=0x0A000001, tp_dst=80)
    assert packet.exact_match().matches_packet(packet)


def test_wildcards_match_anything():
    match = Match(eth_type=0x0800)
    assert match.matches_packet(PacketFields(ip_dst=1))
    assert match.matches_packet(PacketFields(ip_dst=2, tp_src=9))


def test_mismatched_field_rejects():
    match = Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 8))
    assert not match.matches_packet(PacketFields(ip_dst=0x0B000000))


def test_eth_type_mismatch_rejects():
    match = Match(eth_type=0x0806)
    assert not match.matches_packet(PacketFields(eth_type=0x0800))


def test_port_match():
    match = Match(eth_type=0x0800, tp_dst=443)
    assert match.matches_packet(PacketFields(tp_dst=443))
    assert not match.matches_packet(PacketFields(tp_dst=80))


# -- overlap / cover ----------------------------------------------------------------
def test_same_dst_different_src_no_overlap():
    a = Match(ip_src=IpPrefix(0x01000000, 32), ip_dst=IpPrefix(0x0A000000, 8))
    b = Match(ip_src=IpPrefix(0x02000000, 32), ip_dst=IpPrefix(0x0A000000, 8))
    assert not a.overlaps(b)


def test_nested_prefixes_overlap():
    a = Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 8))
    b = Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A010000, 16))
    assert a.overlaps(b)
    assert a.covers(b)
    assert not b.covers(a)


def test_disjoint_eth_src_no_overlap():
    a = Match(eth_src=1, ip_dst=IpPrefix(0, 0))
    b = Match(eth_src=2, ip_dst=IpPrefix(0, 0))
    assert not a.overlaps(b)


def test_wildcard_covers_exact():
    general = Match(eth_type=0x0800)
    specific = Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 32), tp_dst=80)
    assert general.covers(specific)
    assert not specific.covers(general)


def test_cover_requires_prefix_presence():
    specific = Match(eth_type=0x0800, ip_dst=IpPrefix(0x0A000000, 8))
    general = Match(eth_type=0x0800)
    # A match with an ip_dst constraint cannot cover one without it.
    assert not specific.covers(general)


def _match_strategy():
    maybe_port = st.one_of(st.none(), st.integers(min_value=0, max_value=65535))
    return st.builds(
        lambda dst, src, tp: Match(
            eth_type=0x0800,
            ip_dst=dst,
            ip_src=src,
            tp_dst=tp,
        ),
        st.one_of(st.none(), prefix_strategy),
        st.one_of(st.none(), prefix_strategy),
        maybe_port,
    ).filter(lambda m: True)


@given(_match_strategy(), _match_strategy())
def test_match_overlap_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(_match_strategy(), _match_strategy())
def test_match_cover_implies_overlap(a, b):
    if a.covers(b):
        assert a.overlaps(b)


@given(_match_strategy())
def test_match_overlaps_itself(m):
    assert m.overlaps(m) and m.covers(m)


def test_key_is_hashable_and_distinct():
    a = Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32))
    b = Match(eth_type=0x0800, ip_dst=IpPrefix(2, 32))
    assert a.key() == Match(eth_type=0x0800, ip_dst=IpPrefix(1, 32)).key()
    assert a.key() != b.key()
    assert hash(a.key()) is not None
