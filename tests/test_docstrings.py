"""Determinism documentation: fault/probing modules must carry docstrings.

The fault-injection subsystem's headline guarantee (byte-reproducible
runs, zero-cost no-op wrapping) lives in module docstrings; this check
keeps them from silently disappearing in refactors.
"""

import importlib

import pytest

MODULES = [
    "repro.faults",
    "repro.faults.plan",
    "repro.faults.injector",
    "repro.faults.retry",
    "repro.core.scheduler",
    "repro.core.probing",
    "repro.core.size_inference",
    "repro.core.policy_inference",
    "repro.core.inference",
    "repro.core.latency_curves",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_docstring_present(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize(
    "name", ["repro.faults.plan", "repro.faults.injector", "repro.faults.retry"]
)
def test_fault_docstrings_state_determinism(name):
    module = importlib.import_module(name)
    assert "determinis" in module.__doc__.lower() or "byte" in module.__doc__.lower()
