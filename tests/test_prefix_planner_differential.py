"""Differential tests: incremental TailCostPlanner vs the retired planner.

The optimized prefix scheduler must be *indistinguishable* from the
retired recursive planner it replaced -- same ``(cost, cut)`` planning
decisions and byte-identical schedules (issue order, per-request
timings, rounds, pattern choices) -- on random DAGs, under fault
injection, and with tracing attached.  Estimates are kept dyadic
(multiples of 0.25) so incremental float sums are bit-exact against the
reference's from-scratch sums.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import TailCostPlanner
from repro.core.requests import RequestDag
from repro.core.scheduler import PrefixTangoScheduler
from repro.faults import DisconnectWindow, FaultInjector, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.perf.reference import ReferencePrefixTangoScheduler
from repro.perf.workloads import (
    UNLOCK_ESTIMATES,
    chain_dag,
    fast_executor,
    layered_dag,
    unlock_groups_dag,
)

COMMANDS = (FlowModCommand.ADD, FlowModCommand.MODIFY, FlowModCommand.DELETE)
LOCATIONS = ("a", "b", "c")


def _match(i):
    return Match(eth_type=0x0800, ip_dst=IpPrefix(i, 32))


@st.composite
def dag_specs(draw):
    """A random DAG spec: requests, forward-only edges, dyadic estimates."""
    n = draw(st.integers(min_value=1, max_value=32))
    n_switches = draw(st.integers(min_value=1, max_value=3))
    requests = [
        (
            draw(st.integers(0, n_switches - 1)),
            draw(st.sampled_from(COMMANDS)),
            draw(st.integers(1, 8)),
        )
        for _ in range(n)
    ]
    raw_edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=2 * n,
        )
    )
    edges = sorted({(a, b) for a, b in raw_edges if a < b})
    # Per-switch estimates in {0.25, 0.5, ..., 4.0}: dyadic, non-negative.
    estimates = {
        LOCATIONS[i]: draw(st.integers(1, 16)) * 0.25 for i in range(n_switches)
    }
    depth = draw(st.integers(1, 3))
    return requests, edges, estimates, depth


def _build_dag(requests, edges):
    dag = RequestDag()
    built = []
    for i, (loc, command, priority) in enumerate(requests):
        built.append(
            dag.new_request(LOCATIONS[loc], command, _match(i), priority=priority)
        )
    for a, b in edges:
        dag.add_dependency(built[a], built[b], check_cycle=False)
    dag.validate_acyclic()
    return dag


def _schedulers(estimates, depth, scheduler_cls=PrefixTangoScheduler, **kwargs):
    return scheduler_cls(
        fast_executor(*sorted(estimates)),
        estimate=lambda request: estimates[request.location],
        lookahead_depth=depth,
        **kwargs,
    )


def _signature(result):
    return (
        result.makespan_ms,
        result.rounds,
        tuple(result.pattern_choices),
        result.deadline_misses,
        result.fault_retries,
        tuple(sorted(result.faulted_request_ids)),
        tuple(
            (r.request.request_id, r.started_ms, r.finished_ms)
            for r in result.records
        ),
    )


# -- hypothesis differentials -------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(dag_specs())
def test_random_dags_schedule_byte_identical(spec):
    requests, edges, estimates, depth = spec
    new = _schedulers(estimates, depth).schedule(_build_dag(requests, edges))
    ref = _schedulers(
        estimates, depth, scheduler_cls=ReferencePrefixTangoScheduler
    ).schedule(_build_dag(requests, edges))
    assert _signature(new) == _signature(ref)


@settings(max_examples=60, deadline=None)
@given(dag_specs())
def test_random_dags_plan_decisions_identical(spec):
    """(cost, cut) agree at every depth, including the depth-0 estimate."""
    requests, edges, estimates, depth = spec
    dag = _build_dag(requests, edges)
    new_scheduler = _schedulers(estimates, depth)
    ref_scheduler = _schedulers(
        estimates, depth, scheduler_cls=ReferencePrefixTangoScheduler
    )
    for probe_depth in range(depth + 1):
        new_cost, new_cut = new_scheduler._plan(dag.simulation(), probe_depth)
        ref_cost, ref_cut = ref_scheduler._plan(dag.simulation(), probe_depth)
        assert (new_cost, new_cut) == (ref_cost, ref_cut)


@settings(max_examples=25, deadline=None)
@given(dag_specs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_random_dags_identical_under_fault_injection(spec, seed):
    requests, edges, estimates, depth = spec
    plan = FaultPlan(
        seed=seed,
        loss_probability=0.15,
        disconnects=(DisconnectWindow(start_ms=0.5, reconnect_at_ms=2.0),),
    )

    def run(scheduler_cls):
        scheduler = _schedulers(
            {k: v for k, v in estimates.items()},
            depth,
            scheduler_cls=scheduler_cls,
        )
        scheduler.executor = fast_executor(
            *sorted(estimates), fault_injector=FaultInjector(plan)
        )
        return scheduler.schedule(_build_dag(requests, edges))

    assert _signature(run(PrefixTangoScheduler)) == _signature(
        run(ReferencePrefixTangoScheduler)
    )


@settings(max_examples=25, deadline=None)
@given(dag_specs())
def test_random_dags_identical_with_tracing_enabled(spec):
    requests, edges, estimates, depth = spec
    tracer = Tracer()
    traced = _schedulers(
        estimates, depth, tracer=tracer, metrics=MetricsRegistry()
    ).schedule(_build_dag(requests, edges))
    ref = _schedulers(
        estimates, depth, scheduler_cls=ReferencePrefixTangoScheduler
    ).schedule(_build_dag(requests, edges))
    assert _signature(traced) == _signature(ref)
    assert len(tracer) > 0


# -- deterministic workload differentials -------------------------------------


def _unlock_estimate(request):
    return UNLOCK_ESTIMATES[request.location]


def test_bench_workloads_schedule_byte_identical():
    cases = [
        (unlock_groups_dag, 95, ("a", "b"), _unlock_estimate),
        (chain_dag, 120, ("sw",), lambda request: 1.0),
        (layered_dag, 150, ("sw",), lambda request: 1.0),
    ]
    for build, n, locations, estimate in cases:
        new = PrefixTangoScheduler(
            fast_executor(*locations), estimate=estimate, lookahead_depth=2
        ).schedule(build(n))
        ref = ReferencePrefixTangoScheduler(
            fast_executor(*locations), estimate=estimate, lookahead_depth=2
        ).schedule(build(n))
        assert _signature(new) == _signature(ref), build.__name__


def test_planner_restores_cursor_and_reports_stats():
    dag = unlock_groups_dag(60)
    sim = dag.simulation()
    planner = TailCostPlanner(
        sim,
        estimate=_unlock_estimate,
        patterns=PrefixTangoScheduler(
            fast_executor("a", "b"), estimate=_unlock_estimate
        ).oracle.patterns,
    )
    before = sim.ready_ids()
    planner.plan(3)
    assert sim.ready_ids() == before
    stats = planner.stats()
    assert stats["plan_calls"] > 0
    assert stats["memo_misses"] >= 1


# -- the falsy-cut regression -------------------------------------------------


def test_resolve_cut_distinguishes_zero_from_none():
    """The retired expression ``cut if cut else len(ordered)`` promoted a
    cut of 0 to the full batch; the fix must keep 0 meaning zero and map
    only None (no plan) to the full batch."""
    assert PrefixTangoScheduler._resolve_cut(0, 7) == 0
    assert PrefixTangoScheduler._resolve_cut(None, 7) == 7
    assert PrefixTangoScheduler._resolve_cut(3, 7) == 3
