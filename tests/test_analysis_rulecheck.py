"""Static rule-set verification (repro.analysis.rulecheck)."""

import pytest

from repro.analysis import DiagnosticReport, Severity, check_rules
from repro.analysis.diagnostics import CODE_CATALOG, Diagnostic
from repro.openflow.actions import DropAction, OutputAction
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowMod, FlowModCommand


def _add(match, priority, port=1):
    return FlowMod(
        FlowModCommand.ADD, match, priority=priority, actions=(OutputAction(port),)
    )


WIDE = Match(ip_dst=IpPrefix(0x0A000000, 8))  # 10.0.0.0/8
NARROW = Match(ip_dst=IpPrefix(0x0A010000, 16))  # 10.1.0.0/16
OTHER = Match(ip_dst=IpPrefix(0xC0A80000, 16))  # 192.168.0.0/16


def test_clean_batch_has_no_diagnostics():
    report = check_rules([_add(WIDE, 1), _add(OTHER, 2)])
    assert len(report) == 0
    assert not report.has_errors


def test_duplicate_rule_with_conflicting_actions_is_tng001_error():
    mods = [
        _add(NARROW, 5, port=1),
        FlowMod(FlowModCommand.ADD, NARROW, priority=5, actions=(DropAction(),)),
    ]
    report = check_rules(mods, location="s1")
    codes = [d.code for d in report]
    assert codes == ["TNG001"]
    assert report.has_errors
    assert report.diagnostics[0].location == "s1"


def test_identical_duplicate_with_same_actions_is_not_flagged():
    report = check_rules([_add(NARROW, 5), _add(NARROW, 5)])
    assert [d.code for d in report] == []


def test_shadowed_rule_is_tng002_error():
    # Higher-priority /8 fully covers the later /16: the /16 never matches.
    report = check_rules([_add(WIDE, 10), _add(NARROW, 1)])
    assert [d.code for d in report] == ["TNG002"]
    assert report.errors()[0].severity is Severity.ERROR
    assert "shadowed" in report.errors()[0].message


def test_more_specific_rule_at_higher_priority_is_fine():
    report = check_rules([_add(NARROW, 10), _add(WIDE, 1)])
    assert [d.code for d in report] == []


def test_equal_priority_overlap_with_different_actions_is_tng003_warning():
    overlapping = Match(ip_src=IpPrefix(0x0A000000, 8), ip_dst=IpPrefix(0x0A010000, 16))
    partially = Match(ip_dst=IpPrefix(0x0A010000, 16), tp_dst=80)
    mods = [
        _add(overlapping, 5, port=1),
        FlowMod(FlowModCommand.ADD, partially, priority=5, actions=(DropAction(),)),
    ]
    report = check_rules(mods)
    assert [d.code for d in report] == ["TNG003"]
    assert not report.has_errors  # warning only


def test_dangling_delete_is_tng004_warning():
    mods = [FlowMod(FlowModCommand.DELETE, NARROW, priority=5)]
    report = check_rules(mods)
    assert [d.code for d in report] == ["TNG004"]


def test_delete_selecting_batch_add_is_clean():
    mods = [_add(NARROW, 5), FlowMod(FlowModCommand.DELETE, NARROW, priority=5)]
    assert len(check_rules(mods)) == 0


def test_delete_selecting_existing_rule_is_clean():
    mods = [FlowMod(FlowModCommand.DELETE, NARROW, priority=5)]
    assert len(check_rules(mods, existing=[(NARROW, 5)])) == 0


def test_modify_after_delete_of_its_target_dangles():
    mods = [
        _add(NARROW, 5),
        FlowMod(FlowModCommand.DELETE, NARROW, priority=5),
        FlowMod(FlowModCommand.MODIFY, NARROW, priority=5),
    ]
    report = check_rules(mods)
    assert [d.code for d in report] == ["TNG004"]
    assert "MOD #2" in report.diagnostics[0].message


def test_pairwise_limit_skips_quadratic_checks_only():
    mods = [_add(WIDE, 10), _add(NARROW, 1)]
    report = check_rules(mods, pairwise_limit=1)
    assert [d.code for d in report] == []  # TNG002 suppressed above the cap


def test_report_format_orders_errors_first():
    report = check_rules(
        [
            _add(NARROW, 5),
            FlowMod(FlowModCommand.MODIFY, OTHER, priority=9),  # TNG004 warning
            _add(WIDE, 10),
            _add(Match(ip_dst=IpPrefix(0x0A020000, 16)), 1),  # TNG002 error
        ]
    )
    lines = report.format().splitlines()
    assert lines[0].startswith("TNG002 error")
    assert any(line.startswith("TNG004 warning") for line in lines[1:])


def test_diagnostic_codes_are_registered():
    with pytest.raises(ValueError):
        Diagnostic(code="TNG999", severity=Severity.ERROR, message="nope")
    for code in ("TNG001", "TNG002", "TNG003", "TNG004"):
        assert code in CODE_CATALOG


def test_report_to_dicts_round_trip():
    report = DiagnosticReport()
    report.add("TNG001", Severity.ERROR, "msg", location="s1", hint="h")
    (payload,) = report.to_dicts()
    assert payload == {
        "code": "TNG001",
        "severity": "error",
        "message": "msg",
        "location": "s1",
        "hint": "h",
    }
