"""ACL application: declarative rule lists with derived priorities.

The application supplies an ordered access-control list (first match
wins) for one switch; the app derives the overlap dependency DAG,
assigns OpenFlow priorities (topological by default -- the assignment
the paper's Figure 9 shows installing fastest on hardware), and emits an
install DAG whose dependencies guarantee no packet is ever matched by a
shadowed rule before its shadowing rule exists.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Sequence, Tuple

import networkx as nx

from repro.core.priorities import (
    assign_r_priorities,
    assign_topological_priorities,
)
from repro.core.requests import RequestDag, SwitchRequest
from repro.openflow.actions import Action, DropAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowModCommand
from repro.workloads.dependencies import build_dependency_graph


class PriorityMode(enum.Enum):
    """How the app maps ACL order to OpenFlow priorities."""

    TOPOLOGICAL = "topological"  # minimal distinct values (fast installs)
    UNIQUE = "unique"  # one priority per rule (R priorities)


class AclApplication:
    """Installs an ordered ACL on one switch.

    Args:
        location: target switch name.
        priority_mode: topological (default) or unique priorities.
        priority_base: priority of the lowest level; pick it above any
            rules already installed so additions never shift them.
    """

    def __init__(
        self,
        location: str,
        priority_mode: PriorityMode = PriorityMode.TOPOLOGICAL,
        priority_base: int = 10_000,
        minimize: bool = False,
    ) -> None:
        self.location = location
        self.priority_mode = priority_mode
        self.priority_base = priority_base
        self.minimize = minimize

    def compile(
        self,
        rules: Sequence[Match],
        actions: Optional[Sequence[Tuple[Action, ...]]] = None,
        dag: Optional[RequestDag] = None,
    ) -> Tuple[RequestDag, Dict[int, SwitchRequest]]:
        """Build the install DAG for an ACL-ordered rule list.

        Args:
            rules: matches in ACL order (earlier wins on overlap).
            actions: per-rule action tuples (default: drop, the common
                ACL semantics; pass OutputAction tuples for permit rules).
            dag: DAG to append to (a new one if omitted).

        Returns:
            (dag, mapping of *original* rule index to its request; with
            ``minimize=True`` shadowed rules have no entry).
        """
        if actions is not None and len(actions) != len(rules):
            raise ValueError("need exactly one action tuple per rule")
        index_map = list(range(len(rules)))
        if self.minimize:
            from repro.apps.minimize import minimize_acl

            minimized = minimize_acl(rules)
            index_map = minimized.kept_indices
            rules = minimized.rules
            if actions is not None:
                actions = [actions[i] for i in index_map]
        dependencies = build_dependency_graph(rules)
        priorities = self._assign_priorities(dependencies)

        dag = dag if dag is not None else RequestDag()
        local_requests: Dict[int, SwitchRequest] = {}
        for index, rule in enumerate(rules):
            rule_actions = actions[index] if actions is not None else (DropAction(),)
            local_requests[index] = dag.new_request(
                location=self.location,
                command=FlowModCommand.ADD,
                match=rule,
                priority=priorities[index],
                actions=rule_actions,
            )
        # Shadowing rules install first: edge u -> v means u precedes v
        # in the ACL and overlaps it.
        for u, v in dependencies.edges():
            dag.add_dependency(local_requests[u], local_requests[v], check_cycle=False)
        dag.validate_acyclic()
        requests = {
            index_map[local]: request for local, request in local_requests.items()
        }
        return dag, requests

    def _assign_priorities(self, dependencies: nx.DiGraph) -> Dict[int, int]:
        if self.priority_mode is PriorityMode.TOPOLOGICAL:
            return assign_topological_priorities(dependencies, base=self.priority_base)
        return assign_r_priorities(dependencies, base=self.priority_base)
