"""ACL minimisation: shadowed-rule elimination.

TCAM space is the scarce resource Tango's size inference measures; the
cheapest rule to install is the one you never send.  A rule that is
fully covered by an earlier (first-match-wins) rule can never fire --
regardless of either rule's action -- so it can be dropped from the ACL
before priorities are assigned.  Removing it also prunes the dependency
DAG, which can reduce both the number of distinct topological priorities
and the installation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.openflow.match import Match


@dataclass
class MinimizationResult:
    """Outcome of shadowed-rule elimination."""

    rules: List[Match]
    kept_indices: List[int]
    removed_indices: List[int] = field(default_factory=list)
    #: removed index -> the earlier rule index that covers it
    shadowed_by: dict = field(default_factory=dict)

    @property
    def removed_count(self) -> int:
        return len(self.removed_indices)


def minimize_acl(rules: Sequence[Match]) -> MinimizationResult:
    """Remove rules fully covered by an earlier rule.

    First-match semantics: if some earlier rule covers every packet of
    rule ``i``, then no packet ever reaches rule ``i``, so it is
    unreachable and removable whatever the actions are.  (Coverage by a
    *union* of earlier rules is not detected -- single-rule shadowing is
    the sound, cheap case.)

    Returns:
        The surviving rules (in original order) plus bookkeeping about
        what was removed and why.
    """
    kept: List[int] = []
    removed: List[int] = []
    shadowed_by = {}
    for index, rule in enumerate(rules):
        shadow: Optional[int] = None
        for earlier in kept:
            if rules[earlier].covers(rule):
                shadow = earlier
                break
        if shadow is None:
            kept.append(index)
        else:
            removed.append(index)
            shadowed_by[index] = shadow
    return MinimizationResult(
        rules=[rules[i] for i in kept],
        kept_indices=kept,
        removed_indices=removed,
        shadowed_by=shadowed_by,
    )
