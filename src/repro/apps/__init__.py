"""Controller applications on top of the Tango API.

Section 6 of the paper sketches the range of application request styles
Tango accepts: "simple static flow pusher style requests ... where the
whole path is given in each request, to declarative-level requests such
that the match condition is given but the path is not given (e.g., ACL
style spec), to algorithmic policies".  This package implements one
application per style:

* :class:`StaticFlowPusher` -- the whole path is given; emits
  consistently-ordered per-switch requests.
* :class:`AclApplication` -- an ordered rule list; derives the overlap
  dependency DAG and a priority assignment, then emits install requests.
* :class:`RoutingApplication` -- only endpoints and traffic hints are
  given; chooses paths (and, between parallel switch options, the
  cheaper switch per Tango's inferred cost models).
"""

from repro.apps.acl import AclApplication, PriorityMode
from repro.apps.flow_pusher import StaticFlowPusher
from repro.apps.minimize import MinimizationResult, minimize_acl
from repro.apps.routing import RoutingApplication, RouteRequest

__all__ = [
    "StaticFlowPusher",
    "AclApplication",
    "PriorityMode",
    "MinimizationResult",
    "minimize_acl",
    "RoutingApplication",
    "RouteRequest",
]
