"""Static flow pusher: path-given flow installation requests.

The simplest application style the paper mentions (citing the Ryu static
flow pusher): the application provides the complete path for each flow;
the app translates it into per-switch ADD requests chained egress-first
for update consistency, and the mirror-image removal requests chained
ingress-first.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.requests import RequestDag, SwitchRequest
from repro.netem.consistency import (
    add_forward_path_dependencies,
    add_reverse_path_dependencies,
)
from repro.netem.flows import NetworkFlow
from repro.openflow.actions import OutputAction
from repro.openflow.messages import FlowModCommand


class StaticFlowPusher:
    """Translates path-pinned flows into switch-request DAGs.

    Args:
        dag: the request DAG to append to (a new one if omitted).
        port_resolver: maps (path, switch) to the output port the rule
            should use; pass ``network.port_along_path`` for traceable
            forwarding on an :class:`~repro.netem.network.EmulatedNetwork`.
            The default synthesises stable but untraceable port numbers.
    """

    def __init__(
        self,
        dag: Optional[RequestDag] = None,
        port_resolver=None,
    ) -> None:
        self.dag = dag if dag is not None else RequestDag()
        self._resolver = port_resolver

    def _port_towards(self, path: Sequence[str], switch: str) -> int:
        if self._resolver is not None:
            return self._resolver(path, switch)
        index = list(path).index(switch)
        if index == len(path) - 1:
            return 1
        return 2 + hash(path[index + 1]) % 30

    def push_flow(
        self,
        flow: NetworkFlow,
        install_by_ms: Optional[float] = None,
    ) -> List[SwitchRequest]:
        """Emit ADD requests along the flow's path, egress installed first."""
        chain = [
            self.dag.new_request(
                location=switch,
                command=FlowModCommand.ADD,
                match=flow.match(),
                priority=flow.priority,
                actions=(OutputAction(port=self._port_towards(flow.path, switch)),),
                install_by_ms=install_by_ms,
            )
            for switch in flow.path
        ]
        add_reverse_path_dependencies(self.dag, chain)
        return chain

    def remove_flow(self, flow: NetworkFlow) -> List[SwitchRequest]:
        """Emit DELETE requests along the path, ingress drained first."""
        chain = [
            self.dag.new_request(
                location=switch,
                command=FlowModCommand.DELETE,
                match=flow.match(),
                priority=flow.priority,
            )
            for switch in flow.path
        ]
        add_forward_path_dependencies(self.dag, chain)
        return chain

    def reroute_flow(
        self, flow: NetworkFlow, new_path: Sequence[str]
    ) -> List[SwitchRequest]:
        """Move a flow to ``new_path``: install the detour, repoint the
        ingress, then drain rules on abandoned switches.

        The flow object is updated to the new path.
        """
        old_path = list(flow.path)
        new_path = list(new_path)
        if new_path[0] != flow.src or new_path[-1] != flow.dst:
            raise ValueError("new path must keep the flow's endpoints")

        requests: List[SwitchRequest] = []
        chain: List[SwitchRequest] = []
        old_switches = set(old_path)
        for switch in new_path:
            if switch in old_switches and self._next_hop(
                old_path, switch
            ) == self._next_hop(new_path, switch):
                continue
            command = (
                FlowModCommand.MODIFY if switch in old_switches else FlowModCommand.ADD
            )
            chain.append(
                self.dag.new_request(
                    location=switch,
                    command=command,
                    match=flow.match(),
                    priority=flow.priority,
                    actions=(OutputAction(port=self._port_towards(new_path, switch)),),
                )
            )
        add_reverse_path_dependencies(self.dag, chain)
        requests.extend(chain)

        removals = [
            self.dag.new_request(
                location=switch,
                command=FlowModCommand.DELETE,
                match=flow.match(),
                priority=flow.priority,
                after=chain[:1],
            )
            for switch in old_path
            if switch not in set(new_path)
        ]
        add_forward_path_dependencies(self.dag, removals)
        requests.extend(removals)

        flow.path = new_path
        return requests

    @staticmethod
    def _next_hop(path: Sequence[str], switch: str) -> Optional[str]:
        path = list(path)
        if switch not in path:
            return None
        index = path.index(switch)
        return path[index + 1] if index + 1 < len(path) else None
