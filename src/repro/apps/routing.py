"""Routing application: declarative flow requests with Tango-aware paths.

The application gives only endpoints plus traffic hints ("algorithmic
policy" style); the app picks a path.  When several candidate paths tie
on hop count, the app uses Tango's inferred switch models to route
through the cheaper switches -- the paper's intro example of putting a
latency-critical, low-bandwidth flow through the software switch rather
than the hardware one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.flow_pusher import StaticFlowPusher
from repro.core.placement import FlowPlacer, FlowRequirements
from repro.core.requests import RequestDag
from repro.netem.network import EmulatedNetwork


@dataclass(frozen=True)
class RouteRequest:
    """A declarative flow request: endpoints plus traffic hints."""

    src: str
    dst: str
    requirements: FlowRequirements
    priority: int = 100
    install_by_ms: Optional[float] = None


class RoutingApplication:
    """Routes flows over an emulated network using inferred switch costs.

    Args:
        network: the emulated network (provides topology and flows).
        placer: Tango placement engine over inferred models; when absent
            the app falls back to plain shortest-path routing.
        k_paths: candidate paths considered per request.
    """

    def __init__(
        self,
        network: EmulatedNetwork,
        placer: Optional[FlowPlacer] = None,
        k_paths: int = 3,
    ) -> None:
        if k_paths < 1:
            raise ValueError("k_paths must be at least 1")
        self.network = network
        self.placer = placer
        self.k_paths = k_paths

    def _path_cost(self, path: Sequence[str], requirements: FlowRequirements) -> float:
        """Total estimated cost of installing and using a path."""
        if self.placer is None:
            return float(len(path))
        total = 0.0
        for switch in path:
            try:
                score = self.placer.score(switch, requirements)
            except KeyError:
                # Unprobed switch: neutral unit cost.
                total += 1.0 + requirements.expected_packets
                continue
            total += score.total_ms
        return total

    def choose_path(self, request: RouteRequest) -> List[str]:
        """The cheapest of the k shortest candidate paths."""
        candidates = self.network.topology.k_shortest_paths(
            request.src, request.dst, k=self.k_paths
        )
        return min(
            candidates,
            key=lambda path: (self._path_cost(path, request.requirements), len(path), path),
        )

    def route(
        self, requests: Sequence[RouteRequest], dag: Optional[RequestDag] = None
    ) -> RequestDag:
        """Route every request and emit a combined install DAG."""
        pusher = StaticFlowPusher(dag, port_resolver=self.network.port_along_path)
        for request in requests:
            path = self.choose_path(request)
            flow = self.network.new_flow(
                request.src, request.dst, priority=request.priority, path=path
            )
            pusher.push_flow(flow, install_by_ms=request.install_by_ms)
        return pusher.dag
