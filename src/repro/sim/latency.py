"""Latency models for control-plane operations and data-path forwarding.

The paper's measurements (Section 3) show that each forwarding path --
fast (TCAM/kernel), slow (userspace software table), control (punt to
controller) -- has a characteristic delay with a small amount of jitter.
These models capture a deterministic mean plus bounded noise, so that the
RTT clustering in the inference engine has realistic input.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.sim.rng import SeededRng


class LatencyModel(ABC):
    """A distribution of latencies, in milliseconds."""

    @abstractmethod
    def sample(self, rng: SeededRng) -> float:
        """Draw one latency sample (ms).  Always non-negative."""

    @property
    @abstractmethod
    def mean_ms(self) -> float:
        """The model's mean latency (ms)."""


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """A fixed latency with no jitter."""

    value_ms: float

    def __post_init__(self) -> None:
        if self.value_ms < 0:
            raise ValueError(f"latency must be non-negative, got {self.value_ms}")

    def sample(self, rng: SeededRng) -> float:
        return self.value_ms

    @property
    def mean_ms(self) -> float:
        return self.value_ms


@dataclass(frozen=True)
class GaussianLatency(LatencyModel):
    """Gaussian latency truncated at a floor (default: 10% of the mean).

    Suitable for path delays whose variation comes from CPU-load jitter,
    e.g. the OVS slow path in Figure 2(a).
    """

    mean: float
    std: float
    floor: float = -1.0  # sentinel: computed as 0.1 * mean

    def __post_init__(self) -> None:
        if self.mean < 0 or self.std < 0:
            raise ValueError("mean and std must be non-negative")

    def _floor(self) -> float:
        return self.floor if self.floor >= 0 else 0.1 * self.mean

    def sample(self, rng: SeededRng) -> float:
        return max(self._floor(), rng.normal(self.mean, self.std))

    @property
    def mean_ms(self) -> float:
        return self.mean


@dataclass(frozen=True)
class ShiftedExponentialLatency(LatencyModel):
    """Minimum latency plus an exponential tail.

    Models control-path delays, which have a hard lower bound (propagation
    plus processing) and occasional long-tail stalls.
    """

    minimum: float
    tail_scale: float

    def __post_init__(self) -> None:
        if self.minimum < 0 or self.tail_scale < 0:
            raise ValueError("minimum and tail_scale must be non-negative")

    def sample(self, rng: SeededRng) -> float:
        return self.minimum + rng.exponential(self.tail_scale)

    @property
    def mean_ms(self) -> float:
        return self.minimum + self.tail_scale
