"""A small discrete-event engine.

Most of the reproduction runs in "sequential virtual time": the probing
engine issues an operation, the switch model computes its latency, and the
shared clock advances.  The event queue is used where genuine concurrency
matters -- the Tango scheduler extensions that dispatch dependent requests
to different switches concurrently (Section 6, "Extensions"), and the
network-wide experiments where several switches install rules in parallel.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.clock import VirtualClock


@dataclass(order=True)
class Event:
    """A scheduled callback at a point in virtual time."""

    time_ms: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Priority queue of events ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time_ms: float, action: Callable[[], None]) -> Event:
        event = Event(time_ms=time_ms, sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_ms if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0


class Simulator:
    """Runs an event queue against a virtual clock."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.queue = EventQueue()

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be non-negative, got {delay_ms}")
        return self.queue.push(self.clock.now_ms + delay_ms, action)

    def schedule_at(self, time_ms: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute virtual time ``time_ms``."""
        if time_ms < self.clock.now_ms:
            raise ValueError(
                f"cannot schedule in the past: {time_ms} < {self.clock.now_ms}"
            )
        return self.queue.push(time_ms, action)

    def call_soon(self, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at the current instant, after pending peers.

        Zero-delay events still go through the queue, so same-instant
        callbacks fire in deterministic ``(time, insertion order)``
        sequence -- the tie-break the fleet inference driver relies on
        for reproducible member admission and cache-hit completion.
        """
        return self.queue.push(self.clock.now_ms, action)

    def run(self, until_ms: Optional[float] = None) -> float:
        """Run events until the queue drains or ``until_ms`` is reached.

        Returns the clock time when the run stops.
        """
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until_ms is not None and next_time > until_ms:
                self.clock.advance_to(until_ms)
                break
            event = self.queue.pop()
            assert event is not None
            self.clock.advance_to(event.time_ms)
            event.action()
        return self.clock.now_ms
