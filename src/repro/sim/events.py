"""A small discrete-event engine.

Most of the reproduction runs in "sequential virtual time": the probing
engine issues an operation, the switch model computes its latency, and the
shared clock advances.  The event queue is used where genuine concurrency
matters -- the Tango scheduler extensions that dispatch dependent requests
to different switches concurrently (Section 6, "Extensions"), and the
network-wide experiments where several switches install rules in parallel.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.clock import VirtualClock


@dataclass(order=True)
class Event:
    """A scheduled callback at a point in virtual time.

    ``parent_time_ms``/``parent_sequence`` are causal provenance: the
    identity of the event whose action scheduled this one, filled in
    only when the owning :class:`Simulator` runs with a live
    :class:`ProvenanceRecorder` (``None`` otherwise -- including for
    events scheduled outside any event, i.e. from straight-line setup
    code).  Both fields are ``compare=False``, so recording provenance
    can never perturb the queue's ``(time, sequence)`` ordering.
    """

    time_ms: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    parent_time_ms: Optional[float] = field(default=None, compare=False)
    parent_sequence: Optional[int] = field(default=None, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class ProvenanceRecorder:
    """Records which event's action scheduled which other event.

    The recorder keeps a ``sequence -> parent sequence`` map (plus each
    event's virtual time), which is exactly the happens-before skeleton
    :mod:`repro.analysis.racecheck` needs: two events at the *same*
    virtual time are causally ordered only if one is a scheduling
    ancestor of the other; otherwise their relative order is the queue's
    arbitrary sequence tie-break.

    Recording is off by default: plain simulators use
    :data:`NULL_PROVENANCE`, whose hooks do nothing, so un-sanitized
    runs stay byte-identical (see
    :func:`repro.analysis.racecheck.verify_noop_sanitize`).
    """

    enabled = True

    def __init__(self) -> None:
        #: event sequence -> parent event sequence (None = root context).
        self.parents: Dict[int, Optional[int]] = {}
        #: event sequence -> the event's scheduled virtual time.
        self.times: Dict[int, float] = {}

    def record_scheduled(self, event: Event, parent: Optional[Event]) -> None:
        """Note that ``parent`` (or root code, if None) scheduled ``event``."""
        if parent is not None:
            event.parent_time_ms = parent.time_ms
            event.parent_sequence = parent.sequence
        self.parents[event.sequence] = (
            parent.sequence if parent is not None else None
        )
        self.times[event.sequence] = event.time_ms

    def is_ancestor(self, ancestor: int, sequence: int) -> bool:
        """True if event ``ancestor`` (transitively) scheduled ``sequence``."""
        current = self.parents.get(sequence)
        while current is not None:
            if current == ancestor:
                return True
            current = self.parents.get(current)
        return False

    def ordered(self, a: int, b: int) -> bool:
        """True if events ``a`` and ``b`` are causally ordered.

        Same event, or one is a scheduling ancestor of the other.  Two
        same-time events that are *not* ordered depend on the queue's
        sequence tie-break for their relative order -- the hazard
        :mod:`repro.analysis.racecheck` reports as TNG040.
        """
        return a == b or self.is_ancestor(a, b) or self.is_ancestor(b, a)


class _NullProvenanceRecorder(ProvenanceRecorder):
    """Disabled recorder: the default, records nothing."""

    enabled = False

    def record_scheduled(self, event: Event, parent: Optional[Event]) -> None:
        return None


#: Process-wide disabled recorder; plain simulators default to it.
NULL_PROVENANCE = _NullProvenanceRecorder()


class EventQueue:
    """Priority queue of events ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time_ms: float, action: Callable[[], None]) -> Event:
        event = Event(time_ms=time_ms, sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_ms if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0


class Simulator:
    """Runs an event queue against a virtual clock.

    Args:
        clock: the virtual clock to drive (a fresh one by default).
        provenance: optional :class:`ProvenanceRecorder`; when live,
            every ``schedule``/``schedule_at``/``call_soon`` records
            which event's action did the scheduling.  Defaults to the
            disabled :data:`NULL_PROVENANCE`, which records nothing and
            leaves behaviour byte-identical.
    """

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        provenance: Optional[ProvenanceRecorder] = None,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.queue = EventQueue()
        self.provenance = provenance if provenance is not None else NULL_PROVENANCE
        #: The event whose action is currently executing (None between
        #: events and outside :meth:`run`) -- the scheduling parent for
        #: provenance, and the access context for sanitizer proxies.
        self.current_event: Optional[Event] = None
        #: Total events whose actions :meth:`run` has executed.  Pure
        #: bookkeeping (never read by the run loop), exposed so callers
        #: that merge several simulators -- the sharded fleet engine's
        #: per-worker streams -- can report deterministic per-queue
        #: event totals without instrumenting every action.
        self.processed_events: int = 0

    def _push(self, time_ms: float, action: Callable[[], None]) -> Event:
        event = self.queue.push(time_ms, action)
        if self.provenance.enabled:
            self.provenance.record_scheduled(event, self.current_event)
        return event

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be non-negative, got {delay_ms}")
        return self._push(self.clock.now_ms + delay_ms, action)

    def schedule_at(self, time_ms: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute virtual time ``time_ms``."""
        if time_ms < self.clock.now_ms:
            raise ValueError(
                f"cannot schedule in the past: {time_ms} < {self.clock.now_ms}"
            )
        return self._push(time_ms, action)

    def call_soon(self, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at the current instant, after pending peers.

        Zero-delay events still go through the queue, so same-instant
        callbacks fire in deterministic ``(time, insertion order)``
        sequence -- the tie-break the fleet inference driver relies on
        for reproducible member admission and cache-hit completion.
        """
        return self._push(self.clock.now_ms, action)

    def run(self, until_ms: Optional[float] = None) -> float:
        """Run events until the queue drains or ``until_ms`` is reached.

        Returns the clock time when the run stops.
        """
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until_ms is not None and next_time > until_ms:
                self.clock.advance_to(until_ms)
                break
            event = self.queue.pop()
            assert event is not None
            self.clock.advance_to(event.time_ms)
            self.current_event = event
            self.processed_events += 1
            try:
                event.action()
            finally:
                self.current_event = None
        return self.clock.now_ms
