"""Seeded random-number utilities.

Every stochastic component in the reproduction draws from a
:class:`SeededRng` so that experiments are reproducible run-to-run.  Seeds
for sub-components are derived deterministically from a root seed plus a
string label, so adding a new consumer does not perturb existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``root_seed`` and ``label``."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class SeededRng:
    """Thin wrapper around :class:`numpy.random.Generator` with derivation.

    Args:
        seed: root seed for this stream.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._gen = np.random.default_rng(self.seed)

    def child(self, label: str) -> "SeededRng":
        """Return an independent stream derived from this one by ``label``."""
        return SeededRng(derive_seed(self.seed, label))

    # -- forwarding helpers -------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._gen.normal(mean, std))

    def exponential(self, scale: float = 1.0) -> float:
        return float(self._gen.exponential(scale))

    def randint(self, low: int, high: int) -> int:
        """Random integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._gen.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place."""
        self._gen.shuffle(seq)

    def sample(self, seq, k: int) -> list:
        """Sample ``k`` distinct elements from ``seq``."""
        if k > len(seq):
            raise ValueError(f"cannot sample {k} from {len(seq)} elements")
        idx = self._gen.choice(len(seq), size=k, replace=False)
        return [seq[int(i)] for i in idx]

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for vectorised draws."""
        return self._gen
