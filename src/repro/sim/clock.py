"""Virtual time source.

All latencies in the simulator are expressed in milliseconds of virtual
time.  A :class:`VirtualClock` is shared by the control channel, the switch
control plane, and the data path, so that probing measurements reflect a
consistent timeline.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing virtual clock measured in milliseconds."""

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError(f"start_ms must be non-negative, got {start_ms}")
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` and return the new time.

        Raises:
            ValueError: if ``delta_ms`` is negative.
        """
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock backwards by {delta_ms}")
        self._now_ms += delta_ms
        return self._now_ms

    def advance_to(self, t_ms: float) -> float:
        """Advance the clock to absolute time ``t_ms`` (no-op if in the past)."""
        if t_ms > self._now_ms:
            self._now_ms = t_ms
        return self._now_ms

    def __repr__(self) -> str:
        return f"VirtualClock(now_ms={self._now_ms:.3f})"
