"""Discrete-event simulation substrate used by the switch simulator.

The Tango paper measures real hardware; this reproduction replaces the
testbed with a deterministic, seeded simulation.  Everything the inference
and scheduling algorithms observe -- control-plane operation latencies and
data-plane round-trip times -- is produced by models in this package.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import (
    NULL_PROVENANCE,
    Event,
    EventQueue,
    ProvenanceRecorder,
    Simulator,
)
from repro.sim.latency import (
    ConstantLatency,
    GaussianLatency,
    LatencyModel,
    ShiftedExponentialLatency,
)
from repro.sim.rng import SeededRng, derive_seed

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "NULL_PROVENANCE",
    "ProvenanceRecorder",
    "Simulator",
    "LatencyModel",
    "ConstantLatency",
    "GaussianLatency",
    "ShiftedExponentialLatency",
    "SeededRng",
    "derive_seed",
]
