"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a frozen description of *what* can go wrong and
*when*; it draws no randomness and reads no clock itself.  All timing in
a plan is expressed on the simulated clock (``repro.sim.clock``), and
every probabilistic decision made from a plan is taken by the
:class:`~repro.faults.injector.FaultInjector` from per-switch
``SeededRng`` child streams derived from ``plan.seed`` — so the same
plan, seed, and workload replay byte-for-byte, and a plan with
``is_noop() == True`` never draws from any RNG at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


def _check_probability(name: str, value: float, allow_one: bool = False) -> None:
    upper_ok = value <= 1.0 if allow_one else value < 1.0
    if not (0.0 <= value and upper_ok):
        bound = "[0, 1]" if allow_one else "[0, 1)"
        raise ValueError(f"{name} must be in {bound}, got {value!r}")


@dataclass(frozen=True)
class StallWindow:
    """A bounded per-switch slowdown window on the simulated clock.

    Every control-plane operation that *starts* inside
    ``[start_ms, start_ms + duration_ms)`` takes an extra ``extra_ms``
    before it is put on the wire.  ``switch=None`` applies to all
    switches.
    """

    start_ms: float
    duration_ms: float
    extra_ms: float
    switch: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.extra_ms < 0:
            raise ValueError("extra_ms must be non-negative")

    def active_at(self, now_ms: float, switch: str) -> bool:
        if self.switch is not None and self.switch != switch:
            return False
        return self.start_ms <= now_ms < self.start_ms + self.duration_ms


@dataclass(frozen=True)
class DisconnectWindow:
    """A control-connection outage: ``[start_ms, reconnect_at_ms)``.

    While active, every control operation towards the switch fails with
    :class:`~repro.openflow.errors.SwitchDisconnectedError` carrying the
    reconnect time, so callers can hold retries until the window closes
    instead of spinning.  ``switch=None`` applies to all switches.
    """

    start_ms: float
    reconnect_at_ms: float
    switch: Optional[str] = None

    def __post_init__(self) -> None:
        if self.reconnect_at_ms <= self.start_ms:
            raise ValueError("reconnect_at_ms must be after start_ms")

    def active_at(self, now_ms: float, switch: str) -> bool:
        if self.switch is not None and self.switch != switch:
            return False
        return self.start_ms <= now_ms < self.reconnect_at_ms


@dataclass(frozen=True)
class FaultPlan:
    """Everything a :class:`~repro.faults.injector.FaultInjector` may inject.

    Args:
        seed: root seed for the injector's per-switch decision streams
            (independent of every other RNG stream in the run).
        loss_probability: per-flow_mod probability that the message is
            lost in transit; the switch never sees it and the controller
            notices after ``loss_detect_ms``.  Must be ``< 1`` so retried
            operations terminate.
        reject_probability: per-flow_mod probability of a transient
            rejection by the switch agent (the message arrives, costs
            ``reject_detect_ms``, and may be retried).
        probe_loss_probability: per-packet-out probability that the probe
            reply is lost; surfaces as a ``LOSS_TIMEOUT_MS`` RTT exactly
            like the channel's native loss model.
        loss_detect_ms: simulated time the controller spends before
            declaring a control message lost.
        reject_detect_ms: simulated round-trip cost of a rejection.
        stalls: bounded per-switch slowdown windows.
        disconnects: control-connection outage windows.
    """

    seed: int = 0
    loss_probability: float = 0.0
    reject_probability: float = 0.0
    probe_loss_probability: float = 0.0
    loss_detect_ms: float = 5.0
    reject_detect_ms: float = 1.0
    stalls: Tuple[StallWindow, ...] = field(default_factory=tuple)
    disconnects: Tuple[DisconnectWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        _check_probability("loss_probability", self.loss_probability)
        _check_probability("reject_probability", self.reject_probability)
        _check_probability("probe_loss_probability", self.probe_loss_probability)
        if self.loss_detect_ms <= 0 or self.reject_detect_ms <= 0:
            raise ValueError("fault detection delays must be positive")
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "disconnects", tuple(self.disconnects))

    # -- queries ---------------------------------------------------------------
    def is_noop(self) -> bool:
        """True when the plan can never inject anything.

        A no-op plan is the byte-identity guarantee: wrapping a channel
        with it draws no randomness and adds no clock time, so the run is
        bit-identical to the un-wrapped one (see
        :func:`repro.faults.injector.verify_noop_injection`).
        """
        return (
            self.loss_probability == 0.0
            and self.reject_probability == 0.0
            and self.probe_loss_probability == 0.0
            and not self.stalls
            and not self.disconnects
        )

    def uses_randomness(self) -> bool:
        """True when any probabilistic fault is armed (windows are not random)."""
        return (
            self.loss_probability > 0.0
            or self.reject_probability > 0.0
            or self.probe_loss_probability > 0.0
        )

    def stall_extra_ms(self, now_ms: float, switch: str) -> float:
        """Total extra delay for an operation starting now on ``switch``."""
        return sum(w.extra_ms for w in self.stalls if w.active_at(now_ms, switch))

    def disconnected_until(self, now_ms: float, switch: str) -> Optional[float]:
        """Latest reconnect time of any outage covering ``now_ms``, else None."""
        times = [
            w.reconnect_at_ms for w in self.disconnects if w.active_at(now_ms, switch)
        ]
        return max(times) if times else None

    def to_dict(self) -> dict:
        """JSON-friendly description (for trace/run provenance)."""
        return {
            "seed": self.seed,
            "loss_probability": self.loss_probability,
            "reject_probability": self.reject_probability,
            "probe_loss_probability": self.probe_loss_probability,
            "loss_detect_ms": self.loss_detect_ms,
            "reject_detect_ms": self.reject_detect_ms,
            "stalls": [
                {
                    "start_ms": w.start_ms,
                    "duration_ms": w.duration_ms,
                    "extra_ms": w.extra_ms,
                    "switch": w.switch,
                }
                for w in self.stalls
            ],
            "disconnects": [
                {
                    "start_ms": w.start_ms,
                    "reconnect_at_ms": w.reconnect_at_ms,
                    "switch": w.switch,
                }
                for w in self.disconnects
            ],
        }
