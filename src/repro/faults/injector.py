"""Deterministic fault injection over the OpenFlow control channel.

The :class:`FaultInjector` wraps :class:`~repro.openflow.channel.ControlChannel`
objects with :class:`FaultyControlChannel` proxies that consult a
:class:`~repro.faults.plan.FaultPlan` before delegating.  Every decision
is deterministic:

* probabilistic faults draw from a per-switch ``SeededRng`` child stream
  derived from ``plan.seed`` (never from the channel's own stream, which
  therefore advances exactly as it would without the injector);
* window faults (stalls, disconnects) are pure functions of the
  simulated clock;
* a plan with ``is_noop()`` true draws nothing and adds no clock time,
  so a zero-fault injector is bit-identical to no injector — which
  :func:`verify_noop_injection` checks end-to-end.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.openflow.channel import ChannelRecord, ControlChannel
from repro.openflow.errors import (
    ControlMessageLostError,
    FlowModRejectedError,
    SwitchDisconnectedError,
)
from repro.openflow.messages import (
    BarrierReply,
    FlowMod,
    FlowStatsReply,
    FlowStatsRequest,
    PacketOut,
)
from repro.sim.rng import SeededRng


class FaultyControlChannel:
    """A :class:`ControlChannel` proxy that injects the plan's faults.

    Duck-types the channel interface (``send_flow_mod``,
    ``send_packet_out``, ``send_barrier``, ``request_flow_stats``,
    ``clock``, ``switch``, ``history``, ...); anything not intercepted
    delegates to the wrapped channel.  Per-channel injection counters
    are exposed for tests and reports.

    Fault order per control message is fixed (disconnect -> stall ->
    loss -> reject) and each probabilistic stage draws at most one
    uniform variate, only when its probability is non-zero — so the
    decision stream is reproducible and a zero-fault plan consumes no
    randomness at all.
    """

    def __init__(self, inner: ControlChannel, plan: FaultPlan, rng: SeededRng) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = rng
        self.injected_losses = 0
        self.injected_rejects = 0
        self.injected_probe_losses = 0
        self.stall_hits = 0
        self.disconnect_hits = 0

    # -- delegation ------------------------------------------------------------
    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    @property
    def switch(self):
        return self.inner.switch

    @property
    def clock(self):
        return self.inner.clock

    @property
    def history(self) -> List[ChannelRecord]:
        return self.inner.history

    # -- fault gates -----------------------------------------------------------
    def _switch_name(self) -> str:
        return self.inner.switch.name

    def _gate_connection(self) -> None:
        """Raise (fail-fast, no clock cost) while inside an outage window."""
        now = self.inner.clock.now_ms
        until = self.plan.disconnected_until(now, self._switch_name())
        if until is not None:
            self.disconnect_hits += 1
            raise SwitchDisconnectedError(self._switch_name(), until)

    def _apply_stall(self) -> None:
        extra = self.plan.stall_extra_ms(self.inner.clock.now_ms, self._switch_name())
        if extra > 0.0:
            self.stall_hits += 1
            self.inner.clock.advance(extra)

    # -- intercepted channel API -----------------------------------------------
    def send_flow_mod(self, flow_mod: FlowMod) -> ChannelRecord:
        self._gate_connection()
        self._apply_stall()
        if (
            self.plan.loss_probability > 0.0
            and self._rng.uniform() < self.plan.loss_probability
        ):
            self.injected_losses += 1
            self.inner.clock.advance(self.plan.loss_detect_ms)
            raise ControlMessageLostError("flow_mod")
        if (
            self.plan.reject_probability > 0.0
            and self._rng.uniform() < self.plan.reject_probability
        ):
            self.injected_rejects += 1
            self.inner.clock.advance(self.plan.reject_detect_ms)
            raise FlowModRejectedError()
        return self.inner.send_flow_mod(flow_mod)

    def send_packet_out(self, packet_out: PacketOut) -> float:
        """Probe packets: outages and injected reply loss surface as timeouts.

        Mirrors the native channel's loss model: the packet still
        traverses the data path (switch counters update), only the reply
        is lost, reported as a ``LOSS_TIMEOUT_MS`` RTT that clustering
        and retry logic already handle.
        """
        now = self.inner.clock.now_ms
        if self.plan.disconnected_until(now, self._switch_name()) is not None:
            self.disconnect_hits += 1
            self.inner.clock.advance(self.plan.loss_detect_ms)
            return self.inner.LOSS_TIMEOUT_MS
        self._apply_stall()
        rtt = self.inner.send_packet_out(packet_out)
        if (
            self.plan.probe_loss_probability > 0.0
            and self._rng.uniform() < self.plan.probe_loss_probability
        ):
            self.injected_probe_losses += 1
            return self.inner.LOSS_TIMEOUT_MS
        return rtt

    def send_barrier(self) -> BarrierReply:
        self._gate_connection()
        self._apply_stall()
        return self.inner.send_barrier()

    def request_flow_stats(self, request: FlowStatsRequest) -> FlowStatsReply:
        self._gate_connection()
        self._apply_stall()
        return self.inner.request_flow_stats(request)

    # -- introspection ---------------------------------------------------------
    def injection_counts(self) -> Dict[str, int]:
        return {
            "losses": self.injected_losses,
            "rejects": self.injected_rejects,
            "probe_losses": self.injected_probe_losses,
            "stalls": self.stall_hits,
            "disconnects": self.disconnect_hits,
        }


class FaultInjector:
    """Wraps control channels so a :class:`FaultPlan` acts on them.

    Decision streams are derived per switch *name* (lazily, via
    ``SeededRng(plan.seed).child("faults:<switch>")``), so wrap order
    does not matter and two runs with the same plan and workload replay
    byte-for-byte.  Wrapping with a no-op plan is free: the proxies
    never draw randomness and never touch the clock.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._streams: Dict[str, SeededRng] = {}
        self.channels: List[FaultyControlChannel] = []

    def rng_for(self, switch_name: str) -> SeededRng:
        """The per-switch decision stream (created on first use)."""
        stream = self._streams.get(switch_name)
        if stream is None:
            stream = SeededRng(self.plan.seed).child(f"faults:{switch_name}")
            self._streams[switch_name] = stream
        return stream

    def wrap_channel(self, channel: ControlChannel) -> FaultyControlChannel:
        wrapped = FaultyControlChannel(
            channel, self.plan, self.rng_for(channel.switch.name)
        )
        self.channels.append(wrapped)
        return wrapped

    def wrap_channels(
        self, channels: Dict[str, ControlChannel]
    ) -> Dict[str, "ControlChannel"]:
        """Wrap a location->channel map (sorted for deterministic order)."""
        return {
            location: self.wrap_channel(channels[location])
            for location in sorted(channels)
        }

    def injection_counts(self) -> Dict[str, int]:
        """Aggregate injection counters over every wrapped channel."""
        totals = {
            "losses": 0,
            "rejects": 0,
            "probe_losses": 0,
            "stalls": 0,
            "disconnects": 0,
        }
        for channel in self.channels:
            for key, value in channel.injection_counts().items():
                totals[key] += value
        return totals


def verify_noop_injection(n: int = 200) -> None:
    """Assert a zero-fault injector is bit-identical to no injector.

    Mirrors ``repro.perf.harness.verify_noop_instrumentation``: schedules
    the same layered DAG twice — once on a bare executor, once on an
    executor whose channels are wrapped with ``FaultPlan()`` (a no-op
    plan) — and requires identical makespan, rounds, pattern choices,
    per-request start/finish times, and zero injected faults.

    Raises:
        AssertionError: on any divergence.
    """
    from repro.core.scheduler import BasicTangoScheduler
    from repro.perf.workloads import fast_executor, layered_dag

    def run(with_injector: bool):
        injector = FaultInjector(FaultPlan()) if with_injector else None
        executor = fast_executor("sw", seed=7, fault_injector=injector)
        result = BasicTangoScheduler(executor).schedule(layered_dag(n))
        timeline = tuple(
            (r.request.request_id, r.started_ms, r.finished_ms)
            for r in result.records
        )
        signature = (
            result.makespan_ms,
            result.rounds,
            tuple(result.pattern_choices),
            timeline,
        )
        counts = injector.injection_counts() if injector is not None else None
        return signature, result.fault_retries, counts

    bare_sig, _, _ = run(with_injector=False)
    faulty_sig, retries, counts = run(with_injector=True)
    assert bare_sig == faulty_sig, (
        "zero-fault injection changed the schedule: "
        f"bare={bare_sig[:3]} injected={faulty_sig[:3]}"
    )
    assert retries == 0, f"zero-fault plan caused {retries} scheduler retries"
    assert counts is not None and all(v == 0 for v in counts.values()), (
        f"zero-fault plan injected faults: {counts}"
    )
