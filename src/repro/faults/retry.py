"""Retry policies for transient control-plane faults.

Backoff delays are computed deterministically: the exponential schedule
is pure arithmetic and the jitter term is drawn from a caller-supplied
``SeededRng`` stream, so a retried run replays byte-for-byte.  All
delays are spent on the simulated clock by the caller — this module
never touches wall time.

Only :class:`~repro.openflow.errors.TransientFaultError` subclasses are
retryable; real switch answers such as ``TableFullError`` (Algorithm 1's
stopping signal) must propagate immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.openflow.errors import TransientFaultError
from repro.sim.rng import SeededRng

#: The exception family a :class:`RetryPolicy` is allowed to retry.
TRANSIENT_FAULTS = (TransientFaultError,)


class RetryGiveUpError(Exception):
    """Raised when a retried operation failed ``attempts`` times in a row.

    Degraded-mode consumers (e.g. the size prober) catch this to resume
    the round with one probe fewer instead of crashing; the original
    transient fault is preserved as ``last_fault`` (and ``__cause__``).
    """

    def __init__(self, operation: str, attempts: int, last_fault: TransientFaultError) -> None:
        super().__init__(
            f"{operation} failed after {attempts} attempt(s): {last_fault}"
        )
        self.operation = operation
        self.attempts = attempts
        self.last_fault = last_fault


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    Args:
        max_attempts: total attempts including the first (>= 1).
        backoff_base_ms: delay before the first retry.
        backoff_factor: multiplier applied per further retry.
        backoff_max_ms: cap on the exponential term.
        jitter_fraction: uniform jitter amplitude as a fraction of the
            computed delay; drawn from the seeded RNG handed to
            :meth:`backoff_ms` (0 disables jitter and draws nothing).
        timeout_ms: per-operation budget on the simulated clock; once an
            operation has been failing longer than this, remaining
            attempts are forfeited and the caller gives up early.
    """

    max_attempts: int = 4
    backoff_base_ms: float = 1.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 50.0
    jitter_fraction: float = 0.1
    timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ms < 0 or self.backoff_max_ms < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive when set")

    def backoff_ms(self, attempt: int, rng: Optional[SeededRng] = None) -> float:
        """Delay before retry number ``attempt`` (1 = first retry).

        Deterministic given the RNG stream state; with ``rng=None`` or
        ``jitter_fraction=0`` no randomness is consumed at all.
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        delay = min(
            self.backoff_base_ms * self.backoff_factor ** (attempt - 1),
            self.backoff_max_ms,
        )
        if rng is not None and self.jitter_fraction > 0.0 and delay > 0.0:
            delay += delay * self.jitter_fraction * float(rng.uniform())
        return delay

    def exhausted(self, attempts_made: int, elapsed_ms: float) -> bool:
        """True when no further attempt is allowed."""
        if attempts_made >= self.max_attempts:
            return True
        return self.timeout_ms is not None and elapsed_ms >= self.timeout_ms


#: A sensible default for probing under injected faults.
DEFAULT_RETRY_POLICY = RetryPolicy()
