"""Deterministic fault injection for the Tango reproduction.

Everything here is seeded and clock-driven: a :class:`FaultPlan`
describes control-message loss, transient flow_mod rejections, bounded
per-switch stalls, and disconnect/reconnect windows; a
:class:`FaultInjector` applies the plan to OpenFlow control channels
using per-switch ``SeededRng`` child streams and the simulated clock,
so faulted runs replay byte-for-byte and zero-fault plans are
bit-identical to running without the injector
(:func:`verify_noop_injection`).  :class:`RetryPolicy` gives probing a
deterministic exponential-backoff retry loop over exactly the
:class:`~repro.openflow.errors.TransientFaultError` family.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultyControlChannel,
    verify_noop_injection,
)
from repro.faults.plan import DisconnectWindow, FaultPlan, StallWindow
from repro.faults.retry import (
    DEFAULT_RETRY_POLICY,
    RetryGiveUpError,
    RetryPolicy,
    TRANSIENT_FAULTS,
)

__all__ = [
    "FaultPlan",
    "StallWindow",
    "DisconnectWindow",
    "FaultInjector",
    "FaultyControlChannel",
    "verify_noop_injection",
    "RetryPolicy",
    "RetryGiveUpError",
    "DEFAULT_RETRY_POLICY",
    "TRANSIENT_FAULTS",
]
