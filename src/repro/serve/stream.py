"""Deterministic sustained flow-request workload for the serving loop.

:class:`FlowRequestStream` generates the request mix a long-running SDN
controller sees: thousands of tenants whose flows arrive as a Poisson
process in virtual time, with destination popularity following a Zipf
law (heavy hitters dominate, which is what makes rule caching pay) and
a configurable *churn* process that rotates each tenant's hot
destination set every ``churn_interval_ms`` so the cached working set
decays instead of converging.

Everything is a pure function of :class:`StreamConfig`: arrival times,
tenant choices, destinations, and churn rotations all come from labeled
child streams of one :class:`~repro.sim.rng.SeededRng`, so two streams
built from equal configs yield byte-identical arrival sequences — the
property the serve replay test and ``tango-serve --verify-determinism``
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

from repro.openflow.match import IpPrefix, Match
from repro.sim.rng import SeededRng
from repro.workloads.traffic import ZipfSampler

#: Bits reserved for the per-tenant destination index inside an IPv4
#: destination address: address = (tenant << 12) | destination.
TENANT_SHIFT = 12


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the synthetic serving workload.

    Args:
        arrivals: total flow requests to generate.
        tenants: number of tenants; each owns a private destination block.
        destinations_per_tenant: addresses per tenant block (≤ 4096).
        rate_per_ms: mean flow-arrival rate (Poisson, virtual time).
        zipf_skew: destination popularity skew within a tenant (0 = uniform).
        tenant_skew: tenant-mix skew (0 = uniform tenant load).
        priority_levels: flows get priority ``1 + tenant % priority_levels``.
        churn_interval_ms: rotate each tenant's hot destination set this
            often; ``0`` disables churn (a fixed working set).
        seed: root seed for every stream.
    """

    arrivals: int
    tenants: int = 32
    destinations_per_tenant: int = 256
    rate_per_ms: float = 2.0
    zipf_skew: float = 1.1
    tenant_skew: float = 0.6
    priority_levels: int = 4
    churn_interval_ms: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrivals < 0:
            raise ValueError("arrivals must be non-negative")
        if self.tenants < 1:
            raise ValueError("need at least one tenant")
        if not 1 <= self.destinations_per_tenant <= (1 << TENANT_SHIFT):
            raise ValueError(
                f"destinations_per_tenant must be in [1, {1 << TENANT_SHIFT}]"
            )
        if self.rate_per_ms <= 0:
            raise ValueError("rate_per_ms must be positive")
        if self.priority_levels < 1:
            raise ValueError("priority_levels must be at least 1")
        if self.churn_interval_ms < 0:
            raise ValueError("churn_interval_ms must be non-negative")


@dataclass(frozen=True)
class FlowArrival:
    """One flow request: a packet-in the controller must cover with a rule."""

    index: int
    t_ms: float
    tenant: int
    destination: int
    priority: int
    match: Match = field(compare=False)

    @property
    def flow_key(self) -> Tuple[int, int]:
        return (self.tenant, self.destination)


def flow_address(tenant: int, destination: int) -> int:
    """The IPv4 address encoding a (tenant, destination) pair."""
    return ((tenant << TENANT_SHIFT) | destination) & 0xFFFFFFFF


def flow_match(tenant: int, destination: int) -> Match:
    """The exact-match (/32) rule match covering one flow."""
    return Match(
        eth_type=0x0800, ip_dst=IpPrefix(flow_address(tenant, destination), 32)
    )


class FlowRequestStream:
    """Iterable over the configured arrival sequence.

    Iterating yields :class:`FlowArrival` objects in non-decreasing
    ``t_ms`` order.  Each ``__iter__`` call restarts the stream from the
    seed, so one stream object can drive a run and its replay.
    """

    def __init__(self, config: StreamConfig) -> None:
        self.config = config

    def __iter__(self) -> Iterator[FlowArrival]:
        config = self.config
        root = SeededRng(config.seed)
        arrival_rng = root.child("serve:interarrival")
        tenant_sampler = ZipfSampler(
            config.tenants, config.tenant_skew, root.child("serve:tenant")
        )
        dest_sampler = ZipfSampler(
            config.destinations_per_tenant,
            config.zipf_skew,
            root.child("serve:dest"),
        )
        churn_rng = root.child("serve:churn")
        scale = 1.0 / config.rate_per_ms
        destinations = config.destinations_per_tenant
        # Per-epoch rotation of the rank -> destination mapping.  The
        # stride is drawn once when the epoch is first entered; arrival
        # times are monotone, so the draw order is deterministic.
        epoch = 0
        stride = 0
        t_ms = 0.0
        for index in range(config.arrivals):
            t_ms += arrival_rng.exponential(scale)
            if config.churn_interval_ms > 0:
                current_epoch = int(t_ms // config.churn_interval_ms)
                while epoch < current_epoch:
                    epoch += 1
                    if destinations > 1:
                        stride = (
                            stride + churn_rng.randint(1, destinations - 1)
                        ) % destinations
            tenant = tenant_sampler.sample()
            rank = dest_sampler.sample()
            destination = (rank + stride) % destinations
            priority = 1 + tenant % config.priority_levels
            yield FlowArrival(
                index=index,
                t_ms=t_ms,
                tenant=tenant,
                destination=destination,
                priority=priority,
                match=flow_match(tenant, destination),
            )
