"""The long-running controller serving loop.

:class:`ServeLoop` is the piece the paper motivates but never builds:
the inferred switch model put to work in a *continuous* control loop.
A sustained :class:`~repro.serve.stream.FlowRequestStream` arrives in
virtual time; each flow is looked up in the switch's finite tables, and
misses flow through FDRC admission into batched rule installs scheduled
over the existing Tango schedulers, with the
:class:`~repro.serve.cache.RuleCacheManager` deciding evictions and
wildcard aggregations when the TCAM fills.

Everything runs on one shared :class:`~repro.sim.clock.VirtualClock`:

* the :class:`~repro.sim.events.Simulator` drives periodic maintenance
  (idle-timeout expiry, admission-state pruning);
* the control channel and switch advance the clock with every
  modelled flow-mod, so install latency back-pressures the loop — if
  installs outpace inter-arrival gaps the clock runs ahead of the
  stream and the sustained requests/sec reflects saturation;
* the optional :class:`~repro.obs.telemetry.TelemetryCollector`
  samples table occupancy on its cadence and receives every install
  and every flow update (NetFlow-style), so the occupancy trajectory
  and SLO burn rates come out of the same pipeline every other tool
  uses.

The loop is deterministic end to end: same config, same bytes — the
replay test and ``tango-serve --verify-determinism`` hold it to that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.requests import RequestDag
from repro.core.scheduler import BasicTangoScheduler, NetworkExecutor
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import SlidingWindow, TelemetryCollector
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.serve.cache import CacheStats, RuleCacheManager
from repro.serve.stream import FlowArrival, FlowRequestStream, StreamConfig
from repro.sim.clock import VirtualClock
from repro.sim.events import Simulator
from repro.sim.rng import SeededRng
from repro.switches.profiles import SwitchProfile
from repro.tables.policies import CachePolicy

#: Unbounded-window latency collector size: enough for one serve run's
#: install records without resampling (matches the telemetry default).
LATENCY_CAPACITY = 262_144


def policy_from_model(model) -> Optional[CachePolicy]:
    """The cache policy an inference run discovered, or None.

    This is the Algorithm 2 → serving plumbing: hand the returned
    policy to :class:`ServeLoop` (or ``tango-serve --infer``) and
    eviction ranks rules exactly as the switch's own hierarchy does.
    """
    if model is None or model.policy_probe is None:
        return None
    return model.policy_probe.as_policy(name=f"inferred:{model.name}")


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving run.

    Args:
        stream: the workload (see :class:`~repro.serve.stream.StreamConfig`).
        batch_size: flow misses accumulated before one scheduled install
            batch (amortises scheduler rounds, exactly like real
            controllers coalesce flow-mods).
        capacity: rule-budget override; default derives the bounded
            capacity of the switch's table stack (None = unbounded).
        admission_threshold: packet-ins before a rule is installed (FDRC).
        admission_window_ms: admission-counting window.
        aggregate_prefix_len: wildcard aggregate prefix length.
        aggregate_min_rules: minimum siblings before aggregation.
        idle_timeout_ms: rules idle this long are expired by maintenance.
        maintenance_interval_ms: cadence of the simulator maintenance tick.
    """

    stream: StreamConfig
    batch_size: int = 32
    capacity: Optional[int] = None
    admission_threshold: int = 1
    admission_window_ms: float = 50.0
    aggregate_prefix_len: int = 28
    aggregate_min_rules: int = 4
    idle_timeout_ms: float = 500.0
    maintenance_interval_ms: float = 100.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.idle_timeout_ms <= 0:
            raise ValueError("idle_timeout_ms must be positive")
        if self.maintenance_interval_ms <= 0:
            raise ValueError("maintenance_interval_ms must be positive")


def _round(value: Optional[float], digits: int = 4) -> Optional[float]:
    return None if value is None else round(value, digits)


@dataclass
class ServeResult:
    """Deterministic outcome of one serving run."""

    arrivals: int
    duration_ms: float
    batches: int
    rounds: int
    maintenance_ticks: int
    op_count: int
    cache: CacheStats
    install_p50_ms: Optional[float]
    install_p99_ms: Optional[float]
    install_mean_ms: Optional[float]
    occupancy: Dict[str, object] = field(default_factory=dict)
    table_signature: Tuple[Tuple[str, int], ...] = ()

    @property
    def requests_per_sec(self) -> float:
        """Sustained virtual-time throughput (requests per simulated s)."""
        if self.duration_ms <= 0:
            return 0.0
        return self.arrivals / (self.duration_ms / 1000.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "arrivals": self.arrivals,
            "duration_ms": round(self.duration_ms, 3),
            "requests_per_sec": round(self.requests_per_sec, 3),
            "batches": self.batches,
            "rounds": self.rounds,
            "maintenance_ticks": self.maintenance_ticks,
            "op_count": self.op_count,
            "install_p50_ms": _round(self.install_p50_ms),
            "install_p99_ms": _round(self.install_p99_ms),
            "install_mean_ms": _round(self.install_mean_ms),
            "cache": self.cache.to_dict(),
            "occupancy": self.occupancy,
        }


class ServeLoop:
    """Drives one switch through a sustained flow-request stream.

    Args:
        config: run configuration.
        profile: switch recipe; built fresh on a shared virtual clock.
        policy: eviction-ranking policy (pass the inferred Algorithm 2
            policy via :func:`policy_from_model`; defaults to the
            switch's ground-truth policy).
        collector: optional telemetry collector; receives installs,
            per-flow updates, and cadence occupancy samples.
        metrics: optional metrics registry for executor/scheduler
            counters and the ``serve.install_ms`` histogram.
        sanitizer: optional race sanitizer; the maintenance simulator is
            built through it so expiry events carry provenance.
    """

    def __init__(
        self,
        config: ServeConfig,
        profile: SwitchProfile,
        policy: Optional[CachePolicy] = None,
        collector: Optional[TelemetryCollector] = None,
        metrics: Optional[MetricsRegistry] = None,
        sanitizer=None,
    ) -> None:
        self.config = config
        self.clock = VirtualClock()
        if sanitizer is not None:
            self.sim = sanitizer.make_simulator(self.clock)
        else:
            self.sim = Simulator(self.clock)
        seed = config.stream.seed
        self.switch = profile.build(clock=self.clock, seed=seed)
        channel = ControlChannel(
            self.switch,
            clock=self.clock,
            rng=SeededRng(seed).child("serve:channel"),
        )
        self.executor = NetworkExecutor(
            {self.switch.name: channel},
            metrics=metrics,
            telemetry=collector,
        )
        self.scheduler = BasicTangoScheduler(self.executor, metrics=metrics)
        self.cache = RuleCacheManager(
            self.switch,
            policy=policy,
            capacity=config.capacity,
            admission_threshold=config.admission_threshold,
            admission_window_ms=config.admission_window_ms,
            aggregate_prefix_len=config.aggregate_prefix_len,
            aggregate_min_rules=config.aggregate_min_rules,
        )
        self.collector = collector
        if collector is not None and collector.enabled:
            collector.watch_switch(self.switch.name, self.switch)
        self._install_window = SlidingWindow(
            float("inf"), capacity=LATENCY_CAPACITY
        )
        self._install_hist = (
            metrics.histogram("serve.install_ms") if metrics is not None else None
        )
        self.stream = FlowRequestStream(config.stream)
        self._pending: List[FlowArrival] = []
        self._running = False
        self._batches = 0
        self._rounds = 0
        self._maintenance_ticks = 0
        self._op_count = 0

    # -- internals ---------------------------------------------------------------
    def _flush(self) -> None:
        """Plan and schedule one install batch through the Tango stack."""
        if not self._pending:
            return
        ops = self.cache.plan_installs(self._pending, self.clock.now_ms)
        self._pending.clear()
        if not ops:
            return
        dag = RequestDag()
        deletes = []
        adds = []
        for op in ops:
            if op.command is FlowModCommand.DELETE:
                deletes.append(
                    dag.new_request(
                        self.switch.name,
                        op.command,
                        op.match,
                        priority=op.priority,
                        actions=op.actions,
                    )
                )
            else:
                adds.append(op)
        for op in adds:
            # Adds wait for every planned delete: the slots an eviction
            # or aggregation frees must exist before any install lands.
            dag.new_request(
                self.switch.name,
                op.command,
                op.match,
                priority=op.priority,
                actions=op.actions,
                after=deletes,
            )
        result = self.scheduler.schedule(dag)
        self._batches += 1
        self._rounds += result.rounds
        self._op_count += dag.ops.total() + len(result.records)
        for record in result.records:
            if record.request.command is FlowModCommand.ADD:
                latency = record.finished_ms - record.started_ms
                self._install_window.observe(record.finished_ms, latency)
                if self._install_hist is not None:
                    self._install_hist.observe(latency)

    def _maintenance(self) -> None:
        """Expire idle rules and prune admission state (simulator tick)."""
        self._maintenance_ticks += 1
        now = self.clock.now_ms
        for entry in self.cache.expired_entries(now, self.config.idle_timeout_ms):
            # Idle timeout is switch-local (OpenFlow idle_timeout), so
            # expiry bypasses the control channel but still pays the
            # modelled delete cost on the shared clock.
            self.switch.apply_flow_mod(
                FlowMod(
                    command=FlowModCommand.DELETE,
                    match=entry.match,
                    priority=entry.priority,
                    actions=(),
                )
            )
            self.cache.stats.expirations += 1
        self.cache.prune_admission(now)
        if self._running:
            self.sim.schedule(self.config.maintenance_interval_ms, self._maintenance)

    # -- driving -----------------------------------------------------------------
    def run(self) -> ServeResult:
        """Serve the whole configured stream; returns the run summary."""
        config = self.config
        self._running = True
        self.sim.schedule(config.maintenance_interval_ms, self._maintenance)
        arrivals = 0
        for arrival in self.stream:
            arrivals += 1
            # Run maintenance due before this arrival, then move to its
            # instant.  advance_to no-ops when installs already pushed
            # the clock past t_ms — that is the saturation regime, and
            # the reported requests/sec reflects it; the run horizon
            # tracks the clock frontier so maintenance keeps firing
            # even when the stream lags the clock.
            self.sim.run(until_ms=max(arrival.t_ms, self.clock.now_ms))
            self.clock.advance_to(arrival.t_ms)
            now = self.clock.now_ms
            if self.collector is not None and self.collector.enabled:
                self.collector.observe_flow(
                    self.switch.name,
                    f"t{arrival.tenant}:d{arrival.destination}",
                    now,
                )
            self._op_count += 1  # one table lookup
            if self.cache.lookup(arrival.match, arrival.priority, now) is not None:
                continue
            if not self.cache.admit(arrival.flow_key, now):
                continue
            self._pending.append(arrival)
            if len(self._pending) >= config.batch_size:
                self._flush()
        self._flush()
        self._running = False
        self.sim.run()  # drain the last scheduled maintenance tick
        now = self.clock.now_ms
        if self.collector is not None and self.collector.enabled:
            self.collector.finish(now)
        return ServeResult(
            arrivals=arrivals,
            duration_ms=now,
            batches=self._batches,
            rounds=self._rounds,
            maintenance_ticks=self._maintenance_ticks,
            op_count=self._op_count,
            cache=self.cache.stats,
            install_p50_ms=self._install_window.percentile(50.0),
            install_p99_ms=self._install_window.percentile(99.0),
            install_mean_ms=self._install_window.mean(),
            occupancy=self.switch.tables.occupancy_snapshot(),
            table_signature=self.table_signature(),
        )

    def table_signature(self) -> Tuple[Tuple[str, int], ...]:
        """A deterministic fingerprint of the final table contents."""
        return tuple(
            sorted(
                (repr(entry.match.key()), entry.priority)
                for entry in self.switch.tables.entries
            )
        )
