"""Long-running controller serving: sustained flow churn against finite TCAM.

The serve subsystem closes the loop the paper opens: switch properties
inferred offline (table sizes, cache policy, flow-mod costs) drive an
*ongoing* control service.  :mod:`repro.serve.stream` generates the
deterministic tenant/Zipf/churn workload, :mod:`repro.serve.cache`
implements FDRC-style flow-driven rule caching with policy-ranked
eviction and wildcard aggregation, and :mod:`repro.serve.loop` runs the
whole thing on the virtual-time simulator with the existing schedulers
and telemetry.  ``tango-serve`` (:mod:`repro.serve.cli`) is the
operator entry point.
"""

from repro.serve.cache import CacheStats, PlannedOp, RuleCacheManager, derive_capacity
from repro.serve.loop import (
    ServeConfig,
    ServeLoop,
    ServeResult,
    policy_from_model,
)
from repro.serve.stream import (
    FlowArrival,
    FlowRequestStream,
    StreamConfig,
    flow_address,
    flow_match,
)

__all__ = [
    "CacheStats",
    "FlowArrival",
    "FlowRequestStream",
    "PlannedOp",
    "RuleCacheManager",
    "ServeConfig",
    "ServeLoop",
    "ServeResult",
    "StreamConfig",
    "derive_capacity",
    "flow_address",
    "flow_match",
    "policy_from_model",
]
