"""FDRC-style rule caching against a finite flow table.

:class:`RuleCacheManager` is the serving loop's policy brain.  It owns
no table state of its own — the switch's
:class:`~repro.tables.stack.RankedTableStack` is the single source of
truth — and makes three kinds of decisions:

* **Flow-driven admission** (FDRC): a flow earns a rule only after
  ``admission_threshold`` packet-ins inside ``admission_window_ms``;
  colder flows are *punted* to the controller instead of burning a
  table slot on a one-packet flow.
* **Policy-driven eviction**: when the table budget is exhausted, the
  victims are the entries ranked worst by the manager's
  :class:`~repro.tables.policies.CachePolicy` — by construction the
  *inferred* per-switch policy (Algorithm 2 output), so eviction keeps
  exactly the rules the switch's own cache hierarchy would keep in its
  fast layer.  When the inferred policy matches the switch's actual
  policy the stack's ranking is reused directly
  (:meth:`~repro.tables.stack.RankedTableStack.worst_entries`); an
  inferred policy that *differs* still works, at an O(n) scan per
  victim.
* **Wildcard aggregation**: when the table fills, compatible sibling
  ``/32`` rules (same priority, same actions, addresses sharing a
  ``aggregate_prefix_len`` prefix) are replaced by one wildcard rule,
  trading match precision for ``k - 1`` reclaimed slots — the paper's
  multi-level-cache observation that a shorter prefix can stand in for
  a hot cluster of exact rules.

All planning is expressed as :class:`PlannedOp` lists (DELETEs then
ADDs) that the serving loop turns into a request DAG for the existing
schedulers, so every eviction and aggregation pays modelled
control-plane cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.openflow.actions import Action, OutputAction
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.tables.entry import FlowEntry
from repro.tables.policies import CachePolicy
from repro.tables.tcam import TcamGeometry


@dataclass
class CacheStats:
    """Deterministic counters for one serving run."""

    lookups: int = 0
    hits: int = 0
    wildcard_hits: int = 0
    misses: int = 0
    punts: int = 0
    coalesced: int = 0
    installs: int = 0
    evictions: int = 0
    expirations: int = 0
    aggregations: int = 0
    aggregated_rules: int = 0
    rejected: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "wildcard_hits": self.wildcard_hits,
            "misses": self.misses,
            "punts": self.punts,
            "coalesced": self.coalesced,
            "installs": self.installs,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "aggregations": self.aggregations,
            "aggregated_rules": self.aggregated_rules,
            "rejected": self.rejected,
            "hit_rate": round(self.hit_rate, 6),
        }


@dataclass(frozen=True)
class PlannedOp:
    """One flow-table operation the loop should schedule.

    ``reason`` labels why the op exists (``install`` / ``evict`` /
    ``aggregate`` / ``aggregate-member``) for telemetry and reports.
    """

    command: FlowModCommand
    match: Match
    priority: int
    reason: str
    actions: Tuple[Action, ...] = (OutputAction(port=1),)


def derive_capacity(tables, kind) -> Optional[int]:
    """Total same-kind rule capacity of a table stack, or None if unbounded."""
    total = 0
    for layer in tables.layers:
        if layer.capacity is not None:
            total += layer.capacity
        elif layer.geometry is not None:
            geometry: TcamGeometry = layer.geometry
            total += geometry.capacity_for(kind)
        else:
            return None
    return total


class RuleCacheManager:
    """Flow-driven rule caching over one switch's table stack.

    Args:
        switch: the simulated switch whose ``tables`` this manager governs.
        policy: victim-ranking policy; defaults to the switch's own table
            policy (pass the inferred Algorithm 2 policy in production —
            see :func:`repro.serve.loop.policy_from_model`).
        capacity: rule budget; defaults to the stack's bounded capacity
            for ``reference_match``'s kind (None = unbounded, no eviction).
        admission_threshold: packet-ins required before a rule is installed.
        admission_window_ms: window over which admission counts accumulate.
        aggregate_prefix_len: prefix length of wildcard aggregate rules.
        aggregate_min_rules: minimum compatible ``/32`` siblings before a
            group is aggregated.
        reference_match: a representative match used to derive TCAM
            capacity (defaults to a narrow L3 match).
    """

    def __init__(
        self,
        switch,
        policy: Optional[CachePolicy] = None,
        capacity: Optional[int] = None,
        admission_threshold: int = 1,
        admission_window_ms: float = 50.0,
        aggregate_prefix_len: int = 28,
        aggregate_min_rules: int = 4,
        reference_match: Optional[Match] = None,
    ) -> None:
        if admission_threshold < 1:
            raise ValueError("admission_threshold must be at least 1")
        if not 0 < aggregate_prefix_len < 32:
            raise ValueError("aggregate_prefix_len must be in (0, 32)")
        if aggregate_min_rules < 2:
            raise ValueError("aggregate_min_rules must be at least 2")
        self.switch = switch
        self.policy = policy if policy is not None else switch.tables.policy
        self._trust_stack_ranking = self.policy.terms == switch.tables.policy.terms
        if reference_match is None:
            reference_match = Match(eth_type=0x0800, ip_dst=IpPrefix(0, 32))
        if capacity is None:
            capacity = derive_capacity(switch.tables, reference_match.kind)
        self.capacity = capacity
        self.admission_threshold = admission_threshold
        self.admission_window_ms = admission_window_ms
        self.aggregate_prefix_len = aggregate_prefix_len
        self.aggregate_min_rules = aggregate_min_rules
        self.stats = CacheStats()
        #: flow key -> (packet-ins seen, last seen ms); pruned on maintenance.
        self._admission: Dict[Tuple[int, int], Tuple[int, float]] = {}

    # -- lookups -----------------------------------------------------------------
    def wildcard_match(self, match: Match) -> Optional[Match]:
        """The aggregate-group wildcard that would cover ``match``."""
        if match.ip_dst is None or match.ip_dst.length != 32:
            return None
        shift = 32 - self.aggregate_prefix_len
        base = (match.ip_dst.value >> shift) << shift
        return Match(
            eth_type=match.eth_type,
            ip_dst=IpPrefix(base, self.aggregate_prefix_len),
        )

    def lookup(self, match: Match, priority: int, now_ms: float) -> Optional[FlowEntry]:
        """Find the entry covering this flow; a hit refreshes its rank.

        Checks the exact rule first, then the flow's aggregate wildcard.
        Touching the entry updates use time and traffic count, which is
        what lets recency/traffic policies keep hot rules resident.
        """
        self.stats.lookups += 1
        entry = self.switch.tables.lookup_exact(match, priority)
        if entry is None:
            wild = self.wildcard_match(match)
            if wild is not None:
                entry = self.switch.tables.lookup_exact(wild, priority)
                if entry is not None:
                    self.stats.wildcard_hits += 1
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.switch.tables.touch(entry, now_ms)
        return entry

    def admit(self, flow_key: Tuple[int, int], now_ms: float) -> bool:
        """FDRC admission: install only flows that keep coming back."""
        if self.admission_threshold <= 1:
            return True
        count, last_ms = self._admission.get(flow_key, (0, now_ms))
        if now_ms - last_ms > self.admission_window_ms:
            count = 0
        count += 1
        self._admission[flow_key] = (count, now_ms)
        if count >= self.admission_threshold:
            del self._admission[flow_key]
            return True
        self.stats.punts += 1
        return False

    # -- planning ----------------------------------------------------------------
    def _victims(self, needed: int, excluded: set) -> List[FlowEntry]:
        """The ``needed`` worst-ranked entries not already spoken for."""
        victims: List[FlowEntry] = []
        if self._trust_stack_ranking:
            # The stack is already sorted by this policy: scan from the
            # worst end, skipping entries another planned op claimed.
            candidates = self.switch.tables.worst_entries(needed + len(excluded))
        else:
            candidates = sorted(
                self.switch.tables.entries,
                key=lambda e: (self.policy.score(e), e.entry_id),
            )
        for entry in candidates:
            if entry.entry_id in excluded:
                continue
            victims.append(entry)
            if len(victims) == needed:
                break
        return victims

    def _aggregation_groups(
        self, excluded: set
    ) -> List[Tuple[Tuple[int, int, Tuple[Action, ...]], List[FlowEntry]]]:
        """Aggregatable groups, largest first (deterministic tie-break)."""
        groups: Dict[Tuple[int, int, Tuple[Action, ...]], List[FlowEntry]] = {}
        shift = 32 - self.aggregate_prefix_len
        for entry in self.switch.tables.entries:
            if entry.entry_id in excluded:
                continue
            match = entry.match
            if match.ip_dst is None or match.ip_dst.length != 32:
                continue
            key = (match.ip_dst.value >> shift, entry.priority, entry.actions)
            groups.setdefault(key, []).append(entry)
        eligible = [
            (key, members)
            for key, members in groups.items()
            if len(members) >= self.aggregate_min_rules
        ]
        eligible.sort(key=lambda item: (-len(item[1]), item[0][0], item[0][1]))
        return eligible

    def plan_aggregation(self, excluded: set) -> Optional[List[PlannedOp]]:
        """Fold the largest compatible ``/32`` group into one wildcard rule.

        Returns the op list (member DELETEs then the wildcard ADD), or
        None when no group is large enough.  ``excluded`` entry ids
        (already-planned victims) never join a group.
        """
        eligible = self._aggregation_groups(excluded)
        if not eligible:
            return None
        (group_base, priority, actions), members = eligible[0]
        shift = 32 - self.aggregate_prefix_len
        wild = Match(
            eth_type=members[0].match.eth_type,
            ip_dst=IpPrefix(group_base << shift, self.aggregate_prefix_len),
        )
        ops = [
            PlannedOp(
                FlowModCommand.DELETE,
                member.match,
                member.priority,
                reason="aggregate-member",
            )
            for member in sorted(members, key=lambda e: e.entry_id)
        ]
        ops.append(
            PlannedOp(
                FlowModCommand.ADD,
                wild,
                priority,
                reason="aggregate",
                actions=actions,
            )
        )
        for member in members:
            excluded.add(member.entry_id)
        self.stats.aggregations += 1
        self.stats.aggregated_rules += len(members)
        return ops

    def plan_installs(
        self, items: Sequence, now_ms: float
    ) -> List[PlannedOp]:
        """Plan one batch of installs against the current table state.

        ``items`` are :class:`~repro.serve.stream.FlowArrival`-like
        objects (``match`` / ``priority`` / ``flow_key``).  The plan
        frees slots by aggregation first, then policy-ranked eviction,
        and never overcommits the budget: an item that cannot be given a
        slot is counted ``rejected`` and dropped.
        """
        del now_ms  # planning is state-only; execution stamps the times
        ops: List[PlannedOp] = []
        planned_keys = set()
        planned_wilds = set()
        claimed: set = set()  # entry ids consumed by planned deletes
        tables = self.switch.tables
        free: Optional[int] = None
        if self.capacity is not None:
            free = self.capacity - len(tables)
        for item in items:
            key = item.match.key()
            if key in planned_keys or tables.lookup_exact(item.match, item.priority):
                self.stats.coalesced += 1
                continue
            wild = self.wildcard_match(item.match)
            if wild is not None and (
                wild.key() in planned_wilds
                or tables.lookup_exact(wild, item.priority) is not None
            ):
                self.stats.coalesced += 1
                continue
            if free is not None and free < 1:
                aggregation = self.plan_aggregation(claimed)
                if aggregation is not None:
                    ops.extend(aggregation)
                    planned_wilds.add(aggregation[-1].match.key())
                    free += len(aggregation) - 2  # k deletes, 1 add
            if free is not None and free < 1:
                victims = self._victims(1, claimed)
                if not victims:
                    self.stats.rejected += 1
                    continue
                victim = victims[0]
                claimed.add(victim.entry_id)
                ops.append(
                    PlannedOp(
                        FlowModCommand.DELETE,
                        victim.match,
                        victim.priority,
                        reason="evict",
                    )
                )
                self.stats.evictions += 1
                free += 1
            ops.append(
                PlannedOp(
                    FlowModCommand.ADD, item.match, item.priority, reason="install"
                )
            )
            planned_keys.add(key)
            self.stats.installs += 1
            if free is not None:
                free -= 1
        return ops

    # -- maintenance --------------------------------------------------------------
    def expired_entries(
        self, now_ms: float, idle_timeout_ms: float
    ) -> List[FlowEntry]:
        """Entries idle longer than ``idle_timeout_ms``, oldest id first."""
        expired = []
        for entry in sorted(self.switch.tables.entries, key=lambda e: e.entry_id):
            last = (
                entry.last_used_at_ms
                if entry.last_used_at_ms >= 0.0
                else entry.inserted_at_ms
            )
            if now_ms - last > idle_timeout_ms:
                expired.append(entry)
        return expired

    def prune_admission(self, now_ms: float) -> int:
        """Drop stale admission counters; returns how many were dropped."""
        stale = [
            key
            for key, (_, last_ms) in self._admission.items()
            if now_ms - last_ms > self.admission_window_ms
        ]
        for key in stale:
            del self._admission[key]
        return len(stale)
