"""``tango-serve``: the long-running controller service CLI.

Examples::

    # 100k flows against switch3's real TCAM budget, with telemetry:
    python -m repro.serve.cli --profile switch3 --arrivals 100000 \\
        --churn-interval 400 --telemetry out/serve

    # Infer the cache policy first (Algorithm 2) and serve with it:
    python -m repro.serve.cli --profile switch1 --arrivals 20000 --infer

    # Replay-check: two same-seed runs must be byte-identical:
    python -m repro.serve.cli --arrivals 5000 --verify-determinism

Exit codes: 0 success, 1 race findings under ``--sanitize``, 2
determinism divergence under ``--verify-determinism``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.loop import ServeConfig, ServeLoop, policy_from_model
from repro.serve.stream import StreamConfig
from repro.switches.profiles import VENDOR_PROFILES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tango-serve",
        description="serve a sustained flow-request stream against finite TCAM",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(VENDOR_PROFILES),
        default="switch3",
        help="switch profile to serve against (default: switch3)",
    )
    parser.add_argument(
        "--arrivals", type=int, default=100_000, help="flow requests to serve"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--tenants", type=int, default=32, help="tenant count")
    parser.add_argument(
        "--destinations",
        type=int,
        default=128,
        help="destinations per tenant (max 4096)",
    )
    parser.add_argument(
        "--rate", type=float, default=2.0, help="mean arrivals per virtual ms"
    )
    parser.add_argument(
        "--zipf", type=float, default=1.1, help="destination popularity skew"
    )
    parser.add_argument(
        "--tenant-skew", type=float, default=0.6, help="tenant mix skew"
    )
    parser.add_argument(
        "--churn-interval",
        type=float,
        default=0.0,
        help="rotate tenant working sets every N virtual ms (0 = no churn)",
    )
    parser.add_argument(
        "--batch", type=int, default=32, help="install batch size"
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="rule-budget override (default: the profile's bounded capacity)",
    )
    parser.add_argument(
        "--admission-threshold",
        type=int,
        default=1,
        help="packet-ins before a rule is installed (FDRC admission)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=2000.0,
        help="expire rules idle this many virtual ms",
    )
    parser.add_argument(
        "--aggregate-min",
        type=int,
        default=4,
        help="minimum compatible /32 siblings before wildcard aggregation",
    )
    parser.add_argument(
        "--infer",
        action="store_true",
        help="run switch inference first and evict with the inferred policy "
        "(Algorithm 2 output) and inferred fast-table budget",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run maintenance events under the race sanitizer (exit 1 on findings)",
    )
    parser.add_argument(
        "--verify-determinism",
        action="store_true",
        help="run twice with the same seed; exit 2 unless results, telemetry, "
        "and final table state are byte-identical",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="collect continuous telemetry; writes PATH.telemetry.jsonl "
        "and PATH.alerts.jsonl",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write a markdown serving report to PATH",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON document instead of text"
    )
    return parser


def _make_collector(args):
    if not args.telemetry:
        return None
    from repro.obs.slo import DriftFeed, SloPolicy, default_slo_targets
    from repro.obs.telemetry import TelemetryCollector

    collector = TelemetryCollector(interval_ms=5.0, window_ms=50.0)
    collector.add_policy(SloPolicy(default_slo_targets()))
    collector.add_policy(DriftFeed())
    return collector


def _run_once(args, profile):
    """One full serving run; returns (result, collector, races)."""
    policy = None
    capacity = args.capacity
    if args.infer:
        from repro.core.inference import SwitchInferenceEngine

        model = SwitchInferenceEngine(profile, seed=args.seed).infer()
        policy = policy_from_model(model)
        if capacity is None:
            capacity = model.fast_table_size
    config = ServeConfig(
        stream=StreamConfig(
            arrivals=args.arrivals,
            tenants=args.tenants,
            destinations_per_tenant=args.destinations,
            rate_per_ms=args.rate,
            zipf_skew=args.zipf,
            tenant_skew=args.tenant_skew,
            churn_interval_ms=args.churn_interval,
            seed=args.seed,
        ),
        batch_size=args.batch,
        capacity=capacity,
        admission_threshold=args.admission_threshold,
        idle_timeout_ms=args.idle_timeout,
        aggregate_min_rules=args.aggregate_min,
    )
    sanitizer = None
    if args.sanitize:
        from repro.analysis.racecheck import RaceSanitizer

        sanitizer = RaceSanitizer()
    collector = _make_collector(args)
    loop = ServeLoop(
        config,
        profile,
        policy=policy,
        collector=collector,
        metrics=MetricsRegistry(),
        sanitizer=sanitizer,
    )
    result = loop.run()
    races = sanitizer.check() if sanitizer is not None else None
    return result, collector, races


def _signature(result, collector):
    """Everything two same-seed runs must agree on, as comparable bytes."""
    parts = [
        json.dumps(result.to_dict(), sort_keys=True),
        repr(result.table_signature),
    ]
    if collector is not None:
        from repro.obs.slo import alerts_jsonl_lines
        from repro.obs.telemetry import telemetry_jsonl_lines

        parts.append("\n".join(telemetry_jsonl_lines(collector.samples)))
        parts.append("\n".join(alerts_jsonl_lines(collector.alerts)))
    return "\x00".join(parts)


def _render_text(args, result, collector, races, out) -> None:
    cache = result.cache
    print(
        f"serve [{args.profile}] seed {args.seed}: "
        f"{result.arrivals} arrivals over {result.duration_ms:.1f} virtual ms",
        file=out,
    )
    print(f"  requests/sec     : {result.requests_per_sec:.1f} (virtual)", file=out)
    summary = result.to_dict()
    print(
        f"  install latency  : p50={summary['install_p50_ms']}"
        f" p99={summary['install_p99_ms']} ms",
        file=out,
    )
    print(
        f"  cache            : {cache.hits} hits / {cache.lookups} lookups "
        f"({100.0 * cache.hit_rate:.1f}%), {cache.wildcard_hits} via wildcards",
        file=out,
    )
    print(
        f"  table churn      : {cache.installs} installs, "
        f"{cache.evictions} evictions, {cache.expirations} expirations, "
        f"{cache.aggregations} aggregations ({cache.aggregated_rules} rules folded)",
        file=out,
    )
    print(
        f"  admission        : {cache.punts} punts, {cache.coalesced} coalesced, "
        f"{cache.rejected} rejected",
        file=out,
    )
    occupancy = result.occupancy
    layers = ", ".join(
        f"{layer['name']}={layer['entries']}"
        + (f" ({100.0 * layer['ratio']:.0f}%)" if layer["ratio"] is not None else "")
        for layer in occupancy.get("layers", [])
    )
    print(f"  final occupancy  : {occupancy.get('total')} rules [{layers}]", file=out)
    print(
        f"  batches          : {result.batches} "
        f"({result.rounds} scheduler rounds, "
        f"{result.maintenance_ticks} maintenance ticks)",
        file=out,
    )
    if collector is not None:
        stats = collector.stats()
        print(
            f"  telemetry        : {stats['samples']} samples, "
            f"{stats['ticks']} ticks, {len(collector.alerts)} alerts",
            file=out,
        )
    if races is not None:
        print(
            f"  race check       : {races.accesses} accesses over "
            f"{races.events} events, {len(races.findings)} finding(s)",
            file=out,
        )


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    profile = VENDOR_PROFILES[args.profile]

    result, collector, races = _run_once(args, profile)

    if args.verify_determinism:
        second, recollector, _ = _run_once(args, profile)
        if _signature(result, collector) != _signature(second, recollector):
            print("determinism FAILED: two same-seed runs diverged", file=out)
            return 2
        if not args.json:
            print(
                "determinism ok: two same-seed runs produced identical "
                "results, telemetry, and final table state",
                file=out,
            )

    if args.json:
        payload = {"serve": result.to_dict()}
        if collector is not None:
            payload["telemetry"] = collector.stats()
        if races is not None:
            payload["races"] = races.summary()
        print(json.dumps(payload, indent=2), file=out)
    else:
        _render_text(args, result, collector, races, out)

    if collector is not None:
        from repro.obs.slo import write_alerts_jsonl
        from repro.obs.telemetry import write_telemetry_jsonl

        telemetry_path = f"{args.telemetry}.telemetry.jsonl"
        alerts_path = f"{args.telemetry}.alerts.jsonl"
        write_telemetry_jsonl(collector.samples, telemetry_path)
        write_alerts_jsonl(collector.alerts, alerts_path)
        if not args.json:
            print(f"telemetry samples written to {telemetry_path}", file=out)
            print(f"telemetry alerts written to {alerts_path}", file=out)

    if args.report:
        from repro.tools.report import render_serve

        lines = ["# Tango serving report", ""]
        lines.extend(render_serve(result.to_dict(), heading="## Sustained serving"))
        lines.append("")
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines))
        if not args.json:
            print(f"serving report written to {args.report}", file=out)

    return 1 if races is not None and races.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
