"""The ``tango-lint`` console entry point.

Thin wrapper so the linter lives alongside the other operator tools
(``tango-probe``, ``tango-report``)::

    tango-lint src/repro examples benchmarks
    tango-lint src/repro --format json
    python -m repro.tools.lint src/repro

CI invokes this installed console script (it is what pyproject maps the
``tango-lint`` entry point to).  Exit codes are stable — 0 clean, 1
findings, 2 usage error — and per-line suppressions use
``# tango-lint: disable=TNG0xx``.  The implementation is
:mod:`repro.analysis.lint`.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.analysis.lint import main as _lint_main


def main(argv: Optional[List[str]] = None, out=None) -> int:
    return _lint_main(argv, out=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
