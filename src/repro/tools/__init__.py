"""Command-line tools built on the Tango library."""
