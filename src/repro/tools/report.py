"""Render a pytest-benchmark JSON file into a markdown experiment report.

The benchmark harness attaches its paper-facing numbers to each bench's
``extra_info``; this tool turns a saved run into a readable report::

    pytest benchmarks/ --benchmark-only --benchmark-json=run.json
    python -m repro.tools.report run.json > report.md
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional


def _format_value(value: Any, indent: int = 0) -> List[str]:
    pad = "  " * indent
    if isinstance(value, dict):
        lines = []
        for key, inner in value.items():
            if isinstance(inner, (dict, list)):
                lines.append(f"{pad}- **{key}**:")
                lines.extend(_format_value(inner, indent + 1))
            else:
                lines.append(f"{pad}- **{key}**: {inner}")
        return lines
    if isinstance(value, list):
        return [f"{pad}- {item}" for item in value]
    return [f"{pad}- {value}"]


def render_diagnostics(diagnostics: List[Any], heading: str = "### Diagnostics") -> List[str]:
    """Markdown lines for a list of static-analysis diagnostics.

    Accepts :class:`~repro.analysis.Diagnostic` objects or their
    ``to_dict()`` payloads (the form benchmarks store in
    ``extra_info["diagnostics"]``).
    """
    lines = [heading, ""]
    for item in diagnostics:
        payload = item.to_dict() if hasattr(item, "to_dict") else dict(item)
        location = f" `{payload['location']}`" if payload.get("location") else ""
        hint = f" — {payload['hint']}" if payload.get("hint") else ""
        lines.append(
            f"- **{payload.get('code', '?')}** "
            f"({payload.get('severity', '?')}){location}: "
            f"{payload.get('message', '')}{hint}"
        )
    lines.append("")
    return lines


def render_races(summary: Dict[str, Any], heading: str = "### Race check") -> List[str]:
    """Markdown lines for a race-check summary.

    Accepts the payload produced by
    :meth:`repro.analysis.racecheck.RaceCheckResult.summary` (the form
    benchmarks and the race-smoke CI job store in
    ``extra_info["races"]``).  Each TNG040 finding is rendered with its
    full ``(time, sequence)`` access trace.
    """
    lines = [heading, ""]
    lines.append(
        f"- accesses: {summary.get('accesses', 0)} over "
        f"{summary.get('events', 0)} events "
        f"({summary.get('locations', 0)} locations)"
    )
    findings = summary.get("findings", 0)
    lines.append(f"- findings: {findings}")
    for payload in summary.get("diagnostics") or ():
        location = f" `{payload['location']}`" if payload.get("location") else ""
        lines.append(
            f"- **{payload.get('code', '?')}** "
            f"({payload.get('severity', '?')}){location}: "
            f"{payload.get('message', '')}"
        )
        for entry in payload.get("trace") or ():
            lines.append(f"  - `{entry}`")
    lines.append("")
    return lines


def render_telemetry(summary: Dict[str, Any], heading: str = "### Telemetry") -> List[str]:
    """Markdown lines for a trace summary.

    Accepts the payload produced by
    :func:`repro.obs.export.summarize_events` (the form benchmarks store
    in ``extra_info["telemetry"]``).
    """
    lines = [heading, ""]
    lines.append(f"- events: {summary.get('events', 0)}")
    spans = summary.get("spans") or {}
    for key in sorted(spans):
        stats = spans[key]
        lines.append(
            f"- span `{key}`: x{stats.get('count', 0)}, "
            f"total {stats.get('total_ms', 0.0):.2f} ms, "
            f"max {stats.get('max_ms', 0.0):.2f} ms"
        )
    instants = summary.get("instants") or {}
    for key in sorted(instants):
        lines.append(f"- event `{key}`: x{instants[key]}")
    patterns = summary.get("patterns") or {}
    if patterns:
        chosen = ", ".join(f"{name} x{count}" for name, count in sorted(patterns.items()))
        lines.append(f"- pattern choices: {chosen}")
    lines.append("")
    return lines


def render_flow_telemetry(
    summary: Dict[str, Any], heading: str = "### Flow telemetry"
) -> List[str]:
    """Markdown lines for a continuous-telemetry summary.

    Accepts the payload produced by
    :func:`repro.obs.telemetry.summarize_telemetry` (the form
    benchmarks and the CLI store in ``extra_info["flow_telemetry"]``),
    optionally carrying an ``alerts`` list of
    :meth:`~repro.obs.slo.TelemetryAlert.to_dict` payloads.
    """
    lines = [heading, ""]
    lines.append(
        f"- samples: {summary.get('samples', 0)} over "
        f"{summary.get('span_ms', 0.0):.2f} ms of virtual time"
    )
    series = summary.get("series") or {}
    for key in sorted(series):
        stats = series[key]
        lines.append(
            f"- series `{key}`: x{stats.get('count', 0)} "
            f"({stats.get('sources', 0)} sources), "
            f"mean {stats.get('mean', 0.0):.3f}, "
            f"max {stats.get('max', 0.0):.3f}, "
            f"last {stats.get('last', 0.0):.3f}"
        )
    alerts = summary.get("alerts") or ()
    if alerts:
        lines.append(f"- alerts: {len(alerts)}")
        for payload in alerts:
            source = f"[{payload['source']}]" if payload.get("source") else ""
            lines.append(
                f"  - **{payload.get('name', '?')}** "
                f"({payload.get('kind', '?')}, {payload.get('severity', '?')}) "
                f"at t={payload.get('t_ms', 0.0):.2f} ms on "
                f"`{payload.get('series', '?')}`{source}: "
                f"value {payload.get('value', 0.0):.3f} vs "
                f"threshold {payload.get('threshold', 0.0):.3f}"
            )
    lines.append("")
    return lines


def render_serve(
    summary: Dict[str, Any], heading: str = "### Sustained serving"
) -> List[str]:
    """Markdown lines for a serving-run summary.

    Accepts the payload produced by
    :meth:`repro.serve.loop.ServeResult.to_dict` (the form
    ``tango-serve --report`` and the ``serve_churn`` bench store in
    ``extra_info["serve"]``).
    """
    lines = [heading, ""]
    lines.append(
        f"- arrivals: {summary.get('arrivals', 0)} over "
        f"{summary.get('duration_ms', 0.0):.1f} ms of virtual time "
        f"({summary.get('requests_per_sec', 0.0):.1f} req/s sustained)"
    )
    p50 = summary.get("install_p50_ms")
    p99 = summary.get("install_p99_ms")
    if p50 is not None or p99 is not None:
        lines.append(f"- install latency: p50 {p50} ms, p99 {p99} ms")
    cache = summary.get("cache") or {}
    if cache:
        lines.append(
            f"- cache: {cache.get('hits', 0)}/{cache.get('lookups', 0)} hits "
            f"({100.0 * cache.get('hit_rate', 0.0):.1f}%), "
            f"{cache.get('wildcard_hits', 0)} via wildcards, "
            f"{cache.get('punts', 0)} punts"
        )
        lines.append(
            f"- churn: {cache.get('installs', 0)} installs, "
            f"{cache.get('evictions', 0)} evictions, "
            f"{cache.get('expirations', 0)} expirations, "
            f"{cache.get('aggregations', 0)} aggregations "
            f"({cache.get('aggregated_rules', 0)} rules folded)"
        )
    occupancy = summary.get("occupancy") or {}
    layers = occupancy.get("layers") or ()
    if layers:
        rendered = ", ".join(
            f"`{layer.get('name', '?')}` {layer.get('entries', 0)}"
            + (
                f" ({100.0 * layer['ratio']:.0f}%)"
                if layer.get("ratio") is not None
                else ""
            )
            for layer in layers
        )
        lines.append(
            f"- final occupancy: {occupancy.get('total', 0)} rules — {rendered}"
        )
    lines.append("")
    return lines


def render_shards(
    summary: Dict[str, Any], heading: str = "### Sharded fleet"
) -> List[str]:
    """Markdown lines for a sharded-fleet run's shard statistics.

    Accepts the payload :attr:`repro.core.shard.ShardedFleetEngine.shard_stats`
    produces (the form the ``sharded_fleet`` bench stores in
    ``extra_info["shards"]``): shard geometry, the cross-shard
    single-flight coalesce count, the merge protocol's deterministic
    cost (events interleaved, records applied), and each shard's
    member count, probe totals, and virtual makespan.
    """
    lines = [heading, ""]
    lines.append(
        f"- geometry: {summary.get('shards', 0)} shards / "
        f"{summary.get('workers', 0)} workers "
        f"({summary.get('partition', '?')} partition, "
        f"{summary.get('backend', '?')} backend) over "
        f"{summary.get('members', 0)} members"
    )
    lines.append(
        f"- cross-shard coalesced: {summary.get('cross_shard_coalesced', 0)} "
        f"duplicate probes dropped at merge "
        f"({summary.get('wasted_probe_ops', 0)} wasted probe ops)"
    )
    lines.append(
        f"- merge cost: {summary.get('merge_events', 0)} events interleaved, "
        f"{summary.get('merge_records', 0)} records applied"
    )
    per_shard = summary.get("per_shard") or ()
    for shard in per_shard:
        lines.append(
            f"- shard {shard.get('shard', '?')}: "
            f"{shard.get('members', 0)} members, "
            f"{shard.get('full_probes', 0)} full probes, "
            f"{shard.get('cache_hits', 0)} cache hits, "
            f"makespan {shard.get('makespan_ms', 0.0):.1f} ms"
        )
    lines.append("")
    return lines


def render_report(data: Dict[str, Any]) -> str:
    """Markdown report from a pytest-benchmark JSON payload."""
    lines = ["# Tango reproduction — benchmark report", ""]
    machine = data.get("machine_info", {})
    if machine:
        lines.append(
            f"_Host: {machine.get('node', '?')} / "
            f"Python {machine.get('python_version', '?')}_"
        )
        lines.append("")

    benches = sorted(data.get("benchmarks", []), key=lambda b: b.get("name", ""))
    for bench in benches:
        name = bench.get("name", "?")
        stats = bench.get("stats", {})
        lines.append(f"## {name}")
        lines.append("")
        mean = stats.get("mean")
        if mean is not None:
            lines.append(f"Harness wall time: {mean:.2f} s")
            lines.append("")
        extra = dict(bench.get("extra_info") or {})
        diagnostics = extra.pop("diagnostics", None)
        telemetry = extra.pop("telemetry", None)
        flow_telemetry = extra.pop("flow_telemetry", None)
        races = extra.pop("races", None)
        serve = extra.pop("serve", None)
        shards = extra.pop("shards", None)
        if extra:
            lines.append("Reported results:")
            for key, value in extra.items():
                if isinstance(value, (dict, list)):
                    lines.append(f"- **{key}**:")
                    lines.extend(_format_value(value, indent=1))
                else:
                    lines.append(f"- **{key}**: {value}")
        elif (
            diagnostics is None
            and telemetry is None
            and flow_telemetry is None
            and races is None
            and serve is None
            and shards is None
        ):
            lines.append("(no extra_info recorded)")
        if diagnostics:
            lines.append("")
            lines.extend(render_diagnostics(diagnostics))
        if races:
            lines.append("")
            lines.extend(render_races(races))
        if serve:
            lines.append("")
            lines.extend(render_serve(serve))
        if shards:
            lines.append("")
            lines.extend(render_shards(shards))
        if telemetry:
            lines.append("")
            lines.extend(render_telemetry(telemetry))
        if flow_telemetry:
            lines.append("")
            lines.extend(render_flow_telemetry(flow_telemetry))
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="tango-report",
        description="Render a pytest-benchmark JSON file as markdown.",
    )
    parser.add_argument("json_file", help="path to the --benchmark-json output")
    args = parser.parse_args(argv)
    try:
        with open(args.json_file) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {args.json_file}: {error}", file=sys.stderr)
        return 1
    print(render_report(data), file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
