"""The ``tango-probe`` command-line tool.

Probes a (simulated) switch profile and prints an inference report:
flow-table layers and sizes, control-plane behaviour classification,
cache policy, and operation latency curves.

Usage::

    python -m repro.tools.cli probe --profile switch2
    python -m repro.tools.cli probe --profile switch1 --policy --seed 7
    python -m repro.tools.cli infer --profile switch2 --fleet 16 --max-in-flight 8
    python -m repro.tools.cli infer --profile switch2 --fleet 64 --shards 4
    python -m repro.tools.cli infer --profile switch2 --fleet 16 --sanitize
    python -m repro.tools.cli infer --profile switch2 --sanitize-fixture racy
    python -m repro.tools.cli profiles

``infer`` is an alias of ``probe``; with ``--fleet N`` the command runs
the event-driven fleet engine (``repro.core.fleet``) over N switches
concurrently in virtual time and reports makespan vs. the one-at-a-time
sum plus model-cache statistics.  ``--shards N`` runs the same fleet
through the sharded engine (``repro.core.shard``) across N worker
processes; the deterministic merge keeps the report — ``--json``
included — byte-identical to the single-queue engine at every shard
count.  ``--sanitize`` runs the fleet under the
:mod:`repro.analysis.racecheck` sanitizer and appends the TNG040
tie-break race report (exit 1 on findings); ``--sanitize-fixture racy``
runs the seeded racy regression fixture instead of a real fleet.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.inference import SwitchInferenceEngine
from repro.core.placement import PARTITION_STRATEGIES
from repro.switches.profiles import VENDOR_PROFILES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tango-probe",
        description="Infer switch properties with Tango probing patterns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    probe = sub.add_parser(
        "probe",
        aliases=["infer"],
        help="probe one vendor profile (or a fleet with --fleet)",
    )
    probe.add_argument(
        "--profile",
        required=True,
        choices=sorted(VENDOR_PROFILES),
        help="vendor profile to probe",
    )
    probe.add_argument("--seed", type=int, default=0, help="probe RNG seed")
    probe.add_argument(
        "--fleet",
        type=int,
        metavar="N",
        help="infer a fleet of N switches concurrently in virtual time "
        "(cycling --fleet-profiles, default just --profile)",
    )
    probe.add_argument(
        "--fleet-profiles",
        metavar="A,B,...",
        help="comma-separated vendor profiles cycled to fill the fleet "
        "(defaults to --profile)",
    )
    probe.add_argument(
        "--max-in-flight",
        type=int,
        metavar="K",
        help="probe at most K fleet members concurrently (default unbounded)",
    )
    probe.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the fleet sharded across N worker processes "
        "(repro.core.shard; merge is byte-identical to the single-queue "
        "engine, so --json output matches at every shard count)",
    )
    probe.add_argument(
        "--partition",
        default="round_robin",
        choices=sorted(PARTITION_STRATEGIES),
        help="shard partition strategy for --shards (default: round_robin)",
    )
    probe.add_argument(
        "--no-fleet-cache",
        action="store_true",
        help="disable the profile-fingerprint model cache for the fleet run",
    )
    probe.add_argument(
        "--sanitize",
        action="store_true",
        help="run the fleet under the race sanitizer "
        "(repro.analysis.racecheck) and print the TNG040 race report; "
        "exits 1 if any race is found (requires --fleet)",
    )
    probe.add_argument(
        "--sanitize-fixture",
        choices=("racy",),
        metavar="NAME",
        help="run a named sanitizer regression fixture instead of a real "
        "fleet ('racy': the deliberately racy two-member fleet TNG040 "
        "must flag); implies --sanitize",
    )
    probe.add_argument(
        "--fault-scenario",
        metavar="NAME",
        help="drive the fleet under a named fault scenario from "
        "repro.netem.scenarios.FAULT_SCENARIOS (fleet mode only)",
    )
    probe.add_argument(
        "--policy",
        action="store_true",
        help="also run the cache-policy probe (Algorithm 2)",
    )
    probe.add_argument(
        "--max-rules",
        type=int,
        default=8192,
        help="size-probe cap for switches that never reject adds",
    )
    probe.add_argument(
        "--json",
        action="store_true",
        help="emit the inferred model as JSON instead of a report",
    )
    probe.add_argument(
        "--trace",
        metavar="PATH",
        help="record a telemetry trace; writes PATH.jsonl, "
        "PATH.chrome.json (load in Perfetto/chrome://tracing), and "
        "PATH.prom (metrics dump)",
    )

    sub.add_parser("profiles", help="list the available vendor profiles")

    schedule = sub.add_parser(
        "schedule",
        help="run a testbed scenario and compare schedulers",
    )
    schedule.add_argument(
        "--scenario",
        choices=("lf", "te1", "te2"),
        default="lf",
        help="link failure or one of the two traffic-engineering mixes",
    )
    schedule.add_argument("--flows", type=int, default=200, help="testbed flow count")
    schedule.add_argument("--requests", type=int, default=400, help="TE request count")
    schedule.add_argument("--seed", type=int, default=0)
    schedule.add_argument(
        "--strict",
        action="store_true",
        help="statically verify the request DAG (repro.analysis) and "
        "abort on ERROR diagnostics before scheduling",
    )
    schedule.add_argument(
        "--trace",
        metavar="PATH",
        help="record a telemetry trace of every arm; writes PATH.jsonl, "
        "PATH.chrome.json, and PATH.prom",
    )

    bench = sub.add_parser(
        "bench",
        help="micro-benchmark the scheduler/TCAM hot paths (tango-bench)",
    )
    from repro.perf.cli import add_bench_arguments

    add_bench_arguments(bench)

    from repro.netem.scenarios import FAULT_SCENARIOS

    faults = sub.add_parser(
        "faults",
        help="run inference + scheduling under a named fault scenario",
    )
    faults.add_argument(
        "--scenario",
        choices=sorted(FAULT_SCENARIOS),
        default="chaos",
        help="fault preset from repro.netem.scenarios.FAULT_SCENARIOS",
    )
    faults.add_argument(
        "--profile",
        choices=sorted(VENDOR_PROFILES),
        default="switch2",
        help="vendor profile for the faulted size probe",
    )
    faults.add_argument("--seed", type=int, default=0, help="fault-plan and probe seed")
    faults.add_argument(
        "--flows", type=int, default=60, help="testbed flow count for the LF schedule"
    )
    faults.add_argument(
        "--verify-determinism",
        action="store_true",
        help="run the whole scenario twice and require identical "
        "size estimates and schedules",
    )
    faults.add_argument(
        "--verify-noop",
        action="store_true",
        help="also assert a zero-fault injector is bit-identical to none",
    )
    faults.add_argument(
        "--trace",
        metavar="PATH",
        help="record a telemetry trace; writes PATH.jsonl, "
        "PATH.chrome.json, and PATH.prom",
    )
    faults.add_argument(
        "--telemetry",
        metavar="PATH",
        help="attach a continuous-telemetry collector with the default "
        "SLO burn-rate policy and drift feed; writes "
        "PATH.telemetry.jsonl and PATH.alerts.jsonl "
        "(with --verify-determinism, both runs' streams must be "
        "byte-identical)",
    )
    return parser


def _print_report(model, out) -> None:
    print(f"switch profile : {model.name}", file=out)
    size = model.size_probe
    print(f"table layers   : {size.num_layers}", file=out)
    for index, layer in enumerate(size.layers):
        shown = "unbounded" if layer.estimated_size is None else layer.estimated_size
        print(
            f"  layer {index}: size {shown}, mean RTT {layer.mean_rtt_ms:.2f} ms",
            file=out,
        )
    behavior = model.behavior_probe
    if behavior is not None:
        kind = (
            "traffic-driven (microflow caching)"
            if behavior.traffic_driven_caching
            else "traffic-independent"
        )
        print(f"rule placement : {kind}", file=out)
        print(
            f"  first-packet penalty {behavior.first_packet_penalty_ms:.2f} ms, "
            f"control path {behavior.control_path_ms:.2f} ms",
            file=out,
        )
    if model.policy_probe is not None:
        terms = " > ".join(
            f"{a.value}({'incr' if d.value > 0 else 'decr'})"
            for a, d in model.policy_probe.terms
        )
        print(f"cache policy   : {terms}", file=out)
    if model.latency_curves:
        print("latency curves : t(n) = a*n + b*n^2  (ms)", file=out)
        for (op, pattern), curve in sorted(
            model.latency_curves.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
        ):
            print(
                f"  {op.value:>3} / {pattern.value:<10} a={curve.linear_ms:8.4f}  "
                f"b={curve.quadratic_ms:10.6f}",
                file=out,
            )


def _make_telemetry(args):
    """(tracer, metrics) for ``--trace``, or the null pair without it."""
    from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer

    if getattr(args, "trace", None):
        return Tracer(), MetricsRegistry()
    return NULL_TRACER, NULL_METRICS


def _write_trace_outputs(args, tracer, metrics, out) -> None:
    """Write the three ``--trace`` artifacts next to the given base path."""
    if not getattr(args, "trace", None):
        return
    from repro.obs import prometheus_text, write_chrome_trace, write_jsonl

    base = args.trace
    events = tracer.events
    write_jsonl(events, base + ".jsonl")
    write_chrome_trace(events, base + ".chrome.json")
    with open(base + ".prom", "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(metrics))
    print(
        f"trace: {len(events)} events -> {base}.jsonl, "
        f"{base}.chrome.json, {base}.prom",
        file=out,
    )


def _render_races_text(races, out) -> None:
    """Human-readable race-check section (traces included)."""
    print(
        f"race check: {races.accesses} accesses over {races.events} events, "
        f"{len(races.findings)} finding(s)",
        file=out,
    )
    for diagnostic in races.report:
        print(f"  {diagnostic.format()}", file=out)
        for line in diagnostic.trace:
            print(f"    {line}", file=out)


def _run_sanitize_fixture(args, out) -> int:
    import json

    from repro.analysis.racecheck import run_racy_fixture

    races = run_racy_fixture(seed=args.seed)
    if args.json:
        print(json.dumps(races.summary(), indent=2), file=out)
    else:
        print(
            f"sanitizer fixture '{args.sanitize_fixture}' (seed {args.seed}):",
            file=out,
        )
        _render_races_text(races, out)
    return 1 if races.findings else 0


def _run_fleet(args, out) -> int:
    import json

    from repro.core.fleet import FleetInferenceEngine, build_fleet

    if args.fleet < 1:
        print(f"--fleet must be positive, got {args.fleet}", file=out)
        return 2
    if args.shards is not None:
        if args.shards < 1:
            print(f"--shards must be positive, got {args.shards}", file=out)
            return 2
        conflicts = []
        if args.max_in_flight is not None:
            conflicts.append("--max-in-flight")
        if args.sanitize or args.sanitize_fixture:
            conflicts.append("--sanitize")
        if args.trace:
            conflicts.append("--trace")
        if conflicts:
            print(
                f"--shards cannot be combined with {', '.join(conflicts)}: "
                "the sharded engine has no admission bound, sanitizer, or "
                "tracer (see repro.core.shard)",
                file=out,
            )
            return 2
    if args.fleet_profiles:
        names = [name.strip() for name in args.fleet_profiles.split(",") if name.strip()]
    else:
        names = [args.profile]
    unknown = sorted(set(names) - set(VENDOR_PROFILES))
    if unknown:
        print(
            f"unknown fleet profile(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(VENDOR_PROFILES))})",
            file=out,
        )
        return 2
    members = build_fleet([VENDOR_PROFILES[name] for name in names], args.fleet)
    tracer, metrics = _make_telemetry(args)
    fault_injector = None
    retry_policy = None
    if args.fault_scenario:
        from repro.faults import FaultInjector, RetryPolicy
        from repro.netem.scenarios import FAULT_SCENARIOS

        if args.fault_scenario not in FAULT_SCENARIOS:
            print(
                f"unknown fault scenario: {args.fault_scenario} "
                f"(choose from {', '.join(sorted(FAULT_SCENARIOS))})",
                file=out,
            )
            return 2
        plan = FAULT_SCENARIOS[args.fault_scenario].plan(args.seed)
        fault_injector = FaultInjector(plan)
        retry_policy = RetryPolicy()
    sanitizer = None
    if args.sanitize:
        from repro.analysis.racecheck import RaceSanitizer

        sanitizer = RaceSanitizer()
    shard_stats = None
    if args.shards is not None:
        from repro.core.shard import ShardedFleetEngine

        engine = ShardedFleetEngine(
            members,
            seed=args.seed,
            shards=args.shards,
            partition=args.partition,
            use_cache=not args.no_fleet_cache,
            fault_injector=fault_injector,
            retry_policy=retry_policy,
            size_probe_max_rules=args.max_rules,
            latency_batch_sizes=(100, 400, 900),
        )
        result = engine.infer_fleet(include_policy=args.policy)
        shard_stats = engine.shard_stats
    else:
        engine = FleetInferenceEngine(
            members,
            seed=args.seed,
            max_in_flight=args.max_in_flight,
            use_cache=not args.no_fleet_cache,
            tracer=tracer,
            metrics=metrics,
            fault_injector=fault_injector,
            retry_policy=retry_policy,
            size_probe_max_rules=args.max_rules,
            latency_batch_sizes=(100, 400, 900),
            sanitizer=sanitizer,
        )
        result = engine.infer_fleet(include_policy=args.policy)
    races = sanitizer.check() if sanitizer is not None else None
    if args.json:
        if races is not None:
            payload = {"fleet": result.summary(), "races": races.summary()}
        else:
            payload = result.summary()
        print(json.dumps(payload, indent=2), file=out)
        _write_trace_outputs(args, tracer, metrics, out)
        return 1 if races is not None and races.findings else 0
    in_flight = (
        "unbounded" if result.max_in_flight is None else str(result.max_in_flight)
    )
    plural = "s" if len(names) != 1 else ""
    print(
        f"fleet inference: {len(result.members)} switches "
        f"({len(names)} profile{plural}), max in flight {in_flight}",
        file=out,
    )
    print(f"  virtual makespan : {result.makespan_ms / 1000.0:9.2f} s", file=out)
    print(
        f"  sequential sum   : {result.sequential_sum_ms / 1000.0:9.2f} s "
        f"({result.speedup:.2f}x speedup)",
        file=out,
    )
    print(
        f"  full probe runs  : {result.full_probe_runs}  "
        f"(cache hits {result.cache_hits}, "
        f"coalesced {result.coalesced_joins})",
        file=out,
    )
    print(f"  probe operations : {result.probe_ops}", file=out)
    print("  per switch:", file=out)
    for member in result.members:
        if member.cache_hit:
            source = f"cache:{member.cache_origin}"
        elif member.coalesced:
            source = f"coalesced:{member.cache_origin}"
        else:
            source = "probe"
        print(
            f"    {member.name:<14s} {member.profile_name:<10s} "
            f"start {member.started_ms / 1000.0:8.2f} s  "
            f"finish {member.finished_ms / 1000.0:8.2f} s  {source}",
            file=out,
        )
    if shard_stats is not None:
        print(
            f"  sharded: {shard_stats['shards']} shards "
            f"({shard_stats['partition']} partition, "
            f"{shard_stats['backend']} backend, "
            f"{shard_stats['workers']} workers)",
            file=out,
        )
        print(
            f"    cross-shard coalesced : {shard_stats['cross_shard_coalesced']}"
            f"  (wasted probe ops {shard_stats['wasted_probe_ops']})",
            file=out,
        )
        print(
            f"    merge                 : {shard_stats['merge_events']} events, "
            f"{shard_stats['merge_records']} records",
            file=out,
        )
        for shard in shard_stats["per_shard"]:
            print(
                f"    shard {shard['shard']}: {shard['members']} members, "
                f"{shard['full_probes']} probes, "
                f"{shard['cache_hits']} cache hits, "
                f"makespan {shard['makespan_ms'] / 1000.0:8.2f} s",
                file=out,
            )
    if races is not None:
        _render_races_text(races, out)
    _write_trace_outputs(args, tracer, metrics, out)
    return 1 if races is not None and races.findings else 0


def _run_schedule(args, out) -> int:
    from repro.baselines import DionysusScheduler
    from repro.core.patterns import make_type_only_pattern
    from repro.core.scheduler import BasicTangoScheduler
    from repro.netem.network import EmulatedNetwork
    from repro.netem.scenarios import LinkFailureScenario, TrafficEngineeringScenario
    from repro.netem.topology import triangle_topology
    from repro.sim.rng import SeededRng

    def build_network():
        network = EmulatedNetwork(
            triangle_topology(),
            default_profile=VENDOR_PROFILES["switch1"],
            profiles={"s3": VENDOR_PROFILES["switch3"]},
            seed=args.seed,
        )
        rng = SeededRng(args.seed).child("cli-flows")
        for _ in range(args.flows):
            network.new_flow("s1", "s2", priority=rng.randint(1, 2000))
        network.preinstall_flow_rules()
        return network

    def build_dag(network):
        if args.scenario == "lf":
            return LinkFailureScenario(network, ("s1", "s2")).build_dag()
        mix = (0.5, 0.25, 0.25) if args.scenario == "te1" else (1 / 3, 1 / 3, 1 / 3)
        scenario = TrafficEngineeringScenario(network, seed=args.seed + 1)
        result = scenario.random_mix(args.requests, mix=mix)
        result.apply_preinstall(network)
        return result

    tracer, metrics = _make_telemetry(args)
    arms = {
        "dionysus": lambda ex: DionysusScheduler(ex, tracer=tracer, metrics=metrics),
        "tango-type": lambda ex: BasicTangoScheduler(
            ex,
            patterns=[make_type_only_pattern()],
            tracer=tracer,
            metrics=metrics,
        ),
        "tango": lambda ex: BasicTangoScheduler(ex, tracer=tracer, metrics=metrics),
    }
    print(
        f"scenario {args.scenario}: {args.flows} flows on the triangle testbed",
        file=out,
    )
    baseline = None
    checked = False
    for label, factory in arms.items():
        network = build_network()
        result = build_dag(network)
        if args.strict and not checked:
            # Same seed => every arm schedules an identical DAG; verify once.
            checked = True
            from repro.analysis import analyze_dag

            resident = [
                (name, entry.match, entry.priority)
                for name, switch in sorted(network.switches.items())
                for entry in switch.tables.entries
            ]
            report = analyze_dag(result.dag, existing=resident)
            if len(report):
                print(report.format(), file=out)
            if report.has_errors:
                print(
                    f"static verification failed with "
                    f"{len(report.errors())} error(s); nothing scheduled",
                    file=out,
                )
                return 2
            print(
                f"static verification ok: {len(result.dag)} requests, "
                f"{len(report.warnings())} warning(s)",
                file=out,
            )
        tracer.event("schedule.arm", category="cli", arm=label)
        executor = network.executor(metrics=metrics, tracer=tracer)
        outcome = factory(executor).schedule(result.dag)
        seconds = outcome.makespan_ms / 1000.0
        if baseline is None:
            baseline = seconds
            note = "(baseline)"
        else:
            note = f"({(baseline - seconds) / baseline * 100:+.0f}% vs Dionysus)"
        print(f"  {label:12s}: {seconds:7.2f} s {note}", file=out)
    _write_trace_outputs(args, tracer, metrics, out)
    return 0


def _run_faults(args, out) -> int:
    from repro.core.scheduler import BasicTangoScheduler
    from repro.faults import FaultInjector, RetryPolicy, verify_noop_injection
    from repro.netem.network import EmulatedNetwork
    from repro.netem.scenarios import FAULT_SCENARIOS, LinkFailureScenario
    from repro.netem.topology import triangle_topology
    from repro.sim.rng import SeededRng

    scenario = FAULT_SCENARIOS[args.scenario]
    plan = scenario.plan(args.seed)
    print(
        f"fault scenario '{scenario.name}' (seed {args.seed}): "
        f"{scenario.description}",
        file=out,
    )

    if args.verify_noop:
        verify_noop_injection()
        print(
            "noop check ok: zero-fault injector is bit-identical to no injector",
            file=out,
        )

    tracer, metrics = _make_telemetry(args)

    def make_collector():
        """A fresh collector + default SLO policy + drift feed, or None."""
        if not getattr(args, "telemetry", None):
            return None
        from repro.obs.slo import DriftFeed, SloPolicy, default_slo_targets
        from repro.obs.telemetry import TelemetryCollector

        collector = TelemetryCollector(interval_ms=5.0, window_ms=50.0)
        collector.add_policy(SloPolicy(default_slo_targets()))
        collector.add_policy(DriftFeed())
        return collector

    def run_once():
        # Faulted size inference (Algorithm 1 in degraded mode).
        probe_injector = FaultInjector(plan)
        engine = SwitchInferenceEngine(
            VENDOR_PROFILES[args.profile],
            seed=args.seed,
            fault_injector=probe_injector,
            retry_policy=RetryPolicy(),
            tracer=tracer,
            metrics=metrics,
        )
        size = engine.infer_sizes()

        # Faulted link-failure schedule on the triangle testbed.
        network = EmulatedNetwork(
            triangle_topology(),
            default_profile=VENDOR_PROFILES["switch1"],
            profiles={"s3": VENDOR_PROFILES["switch3"]},
            seed=args.seed,
        )
        rng = SeededRng(args.seed).child("cli-flows")
        for _ in range(args.flows):
            network.new_flow("s1", "s2", priority=rng.randint(1, 2000))
        network.preinstall_flow_rules()
        dag_result = LinkFailureScenario(network, ("s1", "s2")).build_dag()
        sched_injector = FaultInjector(plan)
        collector = make_collector()
        executor = network.executor(
            metrics=metrics,
            tracer=tracer,
            fault_injector=sched_injector,
            telemetry=collector,
        )
        scheduler = BasicTangoScheduler(executor, tracer=tracer, metrics=metrics)
        outcome = scheduler.schedule(dag_result.dag)
        if collector is not None:
            collector.finish(executor.now_ms())
        timeline = tuple(
            (r.request.request_id, r.started_ms, r.finished_ms)
            for r in outcome.records
        )
        signature = (
            tuple(layer.estimated_size for layer in size.layers),
            outcome.makespan_ms,
            outcome.rounds,
            timeline,
        )
        return size, outcome, probe_injector, sched_injector, signature, collector

    size, outcome, probe_injector, sched_injector, signature, collector = run_once()

    sizes = ", ".join(
        "unbounded" if layer.estimated_size is None else str(layer.estimated_size)
        for layer in size.layers
    )
    print(f"size probe [{args.profile}]:", file=out)
    print(f"  layer sizes      : {sizes}", file=out)
    print(f"  install giveups  : {size.install_giveups}", file=out)
    print(f"  confidence       : {size.confidence:.4f}", file=out)
    probe_counts = probe_injector.injection_counts()
    print(
        "  injected         : "
        + ", ".join(f"{k}={v}" for k, v in sorted(probe_counts.items())),
        file=out,
    )
    print(f"schedule lf ({args.flows} flows):", file=out)
    print(f"  makespan         : {outcome.makespan_ms:.2f} ms", file=out)
    print(f"  rounds           : {outcome.rounds}", file=out)
    print(
        f"  fault retries    : {outcome.fault_retries} "
        f"({len(outcome.faulted_request_ids)} requests deferred)",
        file=out,
    )
    print(
        f"  deadline misses  : {outcome.deadline_misses} "
        f"(fault={outcome.deadline_misses_fault}, "
        f"schedule={outcome.deadline_misses_schedule})",
        file=out,
    )
    sched_counts = sched_injector.injection_counts()
    print(
        "  injected         : "
        + ", ".join(f"{k}={v}" for k, v in sorted(sched_counts.items())),
        file=out,
    )

    if collector is not None:
        stats = collector.stats()
        print("telemetry:", file=out)
        print(f"  samples          : {stats['samples']}", file=out)
        print(f"  ticks            : {stats['ticks']}", file=out)
        print(f"  series           : {len(collector.series_names())}", file=out)
        print(f"  alerts           : {len(collector.alerts)}", file=out)
        for alert in collector.alerts:
            source = f"[{alert.source}]" if alert.source else ""
            print(
                f"    {alert.name} ({alert.kind}, {alert.severity}) "
                f"at t={alert.t_ms:.2f} ms on {alert.series}{source}",
                file=out,
            )

    if args.verify_determinism:
        _, _, _, _, second, recollector = run_once()
        if second != signature:
            print(
                "determinism FAILED: two same-seed runs diverged", file=out
            )
            return 2
        if collector is not None and recollector is not None:
            from repro.obs.slo import alerts_jsonl_lines
            from repro.obs.telemetry import telemetry_jsonl_lines

            first_stream = telemetry_jsonl_lines(collector.samples)
            second_stream = telemetry_jsonl_lines(recollector.samples)
            first_alerts = alerts_jsonl_lines(collector.alerts)
            second_alerts = alerts_jsonl_lines(recollector.alerts)
            if first_stream != second_stream or first_alerts != second_alerts:
                print(
                    "determinism FAILED: two same-seed runs produced "
                    "different telemetry streams",
                    file=out,
                )
                return 2
        print(
            "determinism ok: two same-seed runs produced identical "
            "size estimates and schedules"
            + (" and telemetry streams" if collector is not None else ""),
            file=out,
        )

    if collector is not None:
        from repro.obs.slo import write_alerts_jsonl
        from repro.obs.telemetry import write_telemetry_jsonl

        telemetry_path = f"{args.telemetry}.telemetry.jsonl"
        alerts_path = f"{args.telemetry}.alerts.jsonl"
        write_telemetry_jsonl(collector.samples, telemetry_path)
        write_alerts_jsonl(collector.alerts, alerts_path)
        print(f"telemetry samples written to {telemetry_path}", file=out)
        print(f"telemetry alerts written to {alerts_path}", file=out)

    _write_trace_outputs(args, tracer, metrics, out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)

    if args.command == "schedule":
        return _run_schedule(args, out)

    if args.command == "faults":
        return _run_faults(args, out)

    if args.command == "bench":
        from repro.perf.cli import run_bench

        return run_bench(args, out)

    if args.command == "profiles":
        for name, profile in sorted(VENDOR_PROFILES.items()):
            sizes = [
                "unbounded" if s is None else str(s) for s in profile.true_layer_sizes
            ]
            print(f"{name:10s} layers: {', '.join(sizes)}", file=out)
        return 0

    if args.sanitize_fixture:
        return _run_sanitize_fixture(args, out)

    if args.fleet is not None:
        return _run_fleet(args, out)

    if args.sanitize or args.fault_scenario:
        print(
            "--sanitize/--fault-scenario need a fleet: add --fleet N "
            "(or use --sanitize-fixture racy)",
            file=out,
        )
        return 2

    profile = VENDOR_PROFILES[args.profile]
    tracer, metrics = _make_telemetry(args)
    engine = SwitchInferenceEngine(
        profile,
        seed=args.seed,
        size_probe_max_rules=args.max_rules,
        latency_batch_sizes=(100, 400, 900),
        tracer=tracer,
        metrics=metrics,
    )
    model = engine.infer(include_policy=args.policy)
    if args.json:
        import json

        print(json.dumps(model.to_dict(), indent=2), file=out)
    else:
        _print_report(model, out)
    _write_trace_outputs(args, tracer, metrics, out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
