"""The ``tango-bench`` console entry point.

Thin wrapper so the perf harness lives alongside the other operator
tools (``tango-probe``, ``tango-report``, ``tango-lint``)::

    tango-bench --quick
    python -m repro.tools.bench --quick

The implementation is :mod:`repro.perf.cli`.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.perf.cli import main as _bench_main


def main(argv: Optional[List[str]] = None, out=None) -> int:
    return _bench_main(argv, out=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
