"""Static admission control: does a request batch fit the TCAM?

Flow-table overflow is the failure mode the inference-attack literature
weaponises — an attacker (or an over-eager application) pushes the rule
count past the TCAM and every subsequent install lands in the slow
software path.  This checker answers, *before any flow_mod is issued*,
whether a batch fits the switch's :class:`~repro.tables.tcam.TcamGeometry`
(single-/double-/adaptive-width slot accounting, paper Table 1) or its
inferred layer sizes:

* **TNG021 unstorable entry** — a match kind the geometry's mode cannot
  hold at all (an L2+L3 match on a single-wide TCAM).
* **TNG020 over capacity** — the batch's net slot demand (ADDs minus
  DELETEs) exceeds the geometry's free slot units.
* **TNG022 high water** — the batch fits but drives occupancy above a
  configurable fraction (default 90%), leaving no headroom for microflow
  caching or failure rerouting.
* **TNG023 layer spill** — checked against *inferred* layer sizes: the
  batch overflows the fast table so part of it will serve from slower
  software layers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.tables.tcam import TcamGeometry


def batch_slot_demand(
    flow_mods: Sequence[FlowMod], geometry: TcamGeometry
) -> Tuple[float, List[Tuple[int, FlowMod]]]:
    """Net slot-unit demand of a batch, plus the unstorable operations.

    ADDs consume each entry's width-dependent cost, DELETEs release it,
    MODIFYs are width-neutral.  Returns ``(net_units, unstorable)``
    where ``unstorable`` lists ``(index, flow_mod)`` pairs whose match
    kind the geometry rejects outright.
    """
    net = 0.0
    unstorable: List[Tuple[int, FlowMod]] = []
    for index, flow_mod in enumerate(flow_mods):
        if flow_mod.command is FlowModCommand.MODIFY:
            continue
        try:
            cost = geometry.entry_cost(flow_mod.match.kind)
        except ValueError:
            unstorable.append((index, flow_mod))
            continue
        if flow_mod.command is FlowModCommand.ADD:
            net += cost
        else:
            net -= cost
    return net, unstorable


def check_capacity(
    flow_mods: Sequence[FlowMod],
    geometry: TcamGeometry,
    occupied_units: float = 0.0,
    high_water: float = 0.9,
    report: Optional[DiagnosticReport] = None,
    location: str = "",
) -> DiagnosticReport:
    """Admission-check a batch against a TCAM geometry.

    Args:
        flow_mods: the batch bound for one switch.
        geometry: the switch's TCAM geometry.
        occupied_units: slot units already in use on the switch.
        high_water: occupancy fraction above which TNG022 fires.
        report: optional report to append to.
        location: switch name recorded on every diagnostic.
    """
    report = report if report is not None else DiagnosticReport()
    net, unstorable = batch_slot_demand(flow_mods, geometry)
    for index, flow_mod in unstorable:
        report.add(
            "TNG021",
            Severity.ERROR,
            f"operation #{index} carries an {flow_mod.match.kind.value} "
            f"match, which a {geometry.mode.value} TCAM cannot store",
            location=location,
            hint="split the match into per-layer rules or switch the TCAM "
            "to double-wide/adaptive mode",
        )

    projected = occupied_units + net
    if projected > geometry.slot_units:
        report.add(
            "TNG020",
            Severity.ERROR,
            f"batch needs {net:g} net slot units on top of "
            f"{occupied_units:g} occupied, but the TCAM holds only "
            f"{geometry.slot_units:g} ({geometry.mode.value})",
            location=location,
            hint="shrink the batch, delete stale rules first, or use "
            "rule minimisation (repro.apps.minimize)",
        )
    elif projected > high_water * geometry.slot_units:
        report.add(
            "TNG022",
            Severity.WARNING,
            f"batch drives occupancy to {projected:g} of "
            f"{geometry.slot_units:g} slot units "
            f"({projected / geometry.slot_units:.0%}), above the "
            f"{high_water:.0%} high-water mark",
            location=location,
            hint="leave headroom for microflow caching and rerouting",
        )
    return report


def check_layer_fit(
    flow_mods: Sequence[FlowMod],
    layer_sizes: Sequence[Optional[int]],
    occupied: int = 0,
    report: Optional[DiagnosticReport] = None,
    location: str = "",
) -> DiagnosticReport:
    """Check a batch against *inferred* layer sizes (entry counts).

    Unlike :func:`check_capacity` this works from the Tango size probe's
    per-layer entry counts (``InferredSwitchModel.layer_sizes``), where a
    ``None`` layer is unbounded software.  The batch never "fails" a
    bounded fast layer — rules spill to slower layers — so overflow of
    the fast table is TNG023 (WARNING) and only exhausting *every*
    bounded layer with no unbounded fallback is TNG020 (ERROR).
    """
    report = report if report is not None else DiagnosticReport()
    net_entries = occupied
    for flow_mod in flow_mods:
        if flow_mod.command is FlowModCommand.ADD:
            net_entries += 1
        elif flow_mod.command is FlowModCommand.DELETE:
            net_entries -= 1

    if not layer_sizes:
        return report
    fast = layer_sizes[0]
    unbounded = any(size is None for size in layer_sizes)
    total_bounded = sum(size for size in layer_sizes if size is not None)

    if not unbounded and net_entries > total_bounded:
        report.add(
            "TNG020",
            Severity.ERROR,
            f"batch leaves {net_entries} rules installed but all "
            f"{len(layer_sizes)} inferred layers together hold only "
            f"{total_bounded}",
            location=location,
            hint="the switch will reject adds; shrink the rule set",
        )
    elif fast is not None and net_entries > fast:
        report.add(
            "TNG023",
            Severity.WARNING,
            f"batch leaves {net_entries} rules installed but the inferred "
            f"fast table holds {fast}; {net_entries - fast} rules will "
            "serve from slower layers",
            location=location,
            hint="keep hot rules under the fast-table size or re-rank "
            "with the inferred cache policy",
        )
    return report


def group_by_location(
    requests: Sequence,
) -> Dict[str, List[FlowMod]]:
    """Split a request iterable into per-switch FlowMod batches.

    Accepts :class:`~repro.core.requests.SwitchRequest` objects (or
    anything with ``location`` and ``flow_mod()``), preserving order.
    """
    batches: Dict[str, List[FlowMod]] = {}
    for request in requests:
        batches.setdefault(request.location, []).append(request.flow_mod())
    return batches


def check_dag_capacity(
    dag,
    geometries: Dict[str, TcamGeometry],
    occupied_units: Optional[Dict[str, float]] = None,
    high_water: float = 0.9,
    report: Optional[DiagnosticReport] = None,
) -> DiagnosticReport:
    """Admission-check every switch's share of a request DAG.

    Switches without a geometry in ``geometries`` are skipped (nothing
    is known to check against).
    """
    report = report if report is not None else DiagnosticReport()
    occupied_units = occupied_units or {}
    for location, batch in sorted(group_by_location(dag.requests).items()):
        geometry = geometries.get(location)
        if geometry is None:
            continue
        check_capacity(
            batch,
            geometry,
            occupied_units=occupied_units.get(location, 0.0),
            high_water=high_water,
            report=report,
            location=location,
        )
    return report
