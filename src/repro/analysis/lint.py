"""AST determinism linter for the simulator's own source code.

The reproduction's headline guarantee is that every experiment is
deterministic run-to-run: all randomness flows through seeded
:class:`~repro.sim.rng.SeededRng` streams and all time through virtual
clocks.  That guarantee is only as strong as the code's discipline, so
this linter walks the package's ASTs and enforces it:

* **TNG030 wall clock** — calls to ``time.time``/``time.monotonic``/
  ``time.perf_counter`` (and their ``_ns`` variants)/``datetime.now``/
  ``datetime.utcnow``/
  ``datetime.today`` outside the simulation substrate (``sim/``) and
  the wall-clock bench harness (``perf/``).  Virtual experiments must
  read virtual clocks.
* **TNG031 unseeded randomness** — any use of the stdlib ``random``
  module, or of ``numpy.random``'s module-level functions, outside
  ``sim/rng.py``.  Unseeded draws silently break reproducibility.
* **TNG032 unordered iteration** — ``for`` loops and comprehensions
  iterating directly over a ``set`` display, set comprehension, or
  ``set(...)``/``frozenset(...)`` call without ``sorted(...)``.  Set
  iteration order is salted per process; feeding it into scheduler
  decisions makes runs diverge.
* **TNG033 mutable default argument** — list/dict/set displays (or
  constructor calls) as parameter defaults; shared mutable state across
  calls is a classic heisenbug source.
* **TNG034 unparseable source** — the file is not valid Python; it is
  reported (with the parse error's location) instead of aborting the
  whole lint run.
* **TNG035 swallowed exception** — a bare ``except:`` or broad
  ``except Exception``/``except BaseException`` handler whose body never
  re-raises.  Fault-tolerance code must catch the *specific* transient
  fault types (:data:`repro.faults.retry.TRANSIENT_FAULTS`): a broad
  swallow hides permanent signals such as
  :class:`~repro.openflow.errors.TableFullError` — the size probe's stop
  condition — and turns deterministic failures into silent divergence.

The TNG04x shard-safety rules complement the dynamic race detector
(:mod:`repro.analysis.racecheck`): they flag source patterns that make
state *inherently* unsafe to split across per-shard event queues:

* **TNG041 module-level mutable state** — a module-level ``list``/
  ``dict``/``set`` (display or constructor call) bound to a
  non-constant name inside ``sim/`` or ``core/``.  Module globals are
  process-wide: sharded fleets would silently share them across queues.
  Dunder names (``__all__``) and ``UPPER_CASE`` constant-convention
  bindings are exempt — constants are fine, mutable *state* is not.
* **TNG042 generator shared-state mutation** — a resumable generator
  (the fleet's ``infer_steps`` pattern) assigning to, or calling a
  mutating method on, a ``global``/``nonlocal`` name.  Generator frames
  are suspended and resumed by the event queue; side channels around the
  queue break the happens-before order racecheck certifies.
* **TNG043 object-identity ordering** — ``id(...)`` used as a sort key
  (``sorted``/``min``/``max``/``.sort`` with ``key=id`` or an
  ``id``-calling lambda) or in an ordering comparison.  CPython ids are
  allocation addresses: per-process, per-run values that must never
  decide event or rule order.

Run it over the repository itself::

    python -m repro.analysis.lint src/repro
    tango-lint src/repro examples benchmarks    # console entry point

A finding on a deliberate pattern can be suppressed per line with a
trailing ``# tango-lint: disable=TNG0xx`` comment (comma-separate to
suppress several codes); suppressions apply only to that line.

``--format json`` emits the report as one JSON object for CI and
tooling.  Exit status is stable: 0 when clean, 1 when findings fail the
run (ERRORs, or WARNINGs under ``--warnings-as-errors``), 2 on usage
errors (unknown flag, missing target).
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.diagnostics import DiagnosticReport, Severity

#: Module paths (relative, forward-slash) exempt from a given rule.
#: ``perf/`` measures *host* wall time by design (tango-bench reports
#: it for humans; its regression gate uses deterministic op counts).
WALL_CLOCK_ALLOWED = ("sim/", "perf/")
RANDOM_ALLOWED = ("sim/rng.py",)

#: Module paths where TNG041 (module-level mutable state) applies: the
#: simulation substrate and the core engines — exactly the code the
#: sharding roadmap splits across per-shard event queues.
SHARED_STATE_PATHS = ("sim/", "core/")

#: Per-line suppression: ``# tango-lint: disable=TNG033`` (or a
#: comma-separated list of codes) on the offending line.
_SUPPRESS_RE = re.compile(r"#\s*tango-lint:\s*disable=([A-Z0-9_,\s]+)")

_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

_SET_CONSTRUCTORS = {"set", "frozenset"}
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set"}
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}

#: Collection constructors whose result is mutable state when bound at
#: module level (TNG041); matched on the call's last dotted component.
_MUTABLE_COLLECTION_CALLS = _MUTABLE_CONSTRUCTORS | {
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
}

#: Methods that mutate their receiver in place (TNG042).
_MUTATING_METHODS = {
    "append",
    "add",
    "clear",
    "extend",
    "insert",
    "pop",
    "popleft",
    "remove",
    "setdefault",
    "sort",
    "update",
}

#: Callables whose ``key=`` argument defines an ordering (TNG043).
_ORDERING_CALLS = {"sorted", "min", "max", "sort"}


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """The base name of ``a.b[c].d`` access chains; None otherwise."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _scope_nodes(body: Sequence[ast.stmt]):
    """Every node in a function's own scope, skipping nested scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue  # a nested scope: its yields/assignments are its own
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, relpath: str, report: DiagnosticReport) -> None:
        self.relpath = relpath
        self.report = report

    def _at(self, node: ast.AST) -> str:
        return f"{self.relpath}:{getattr(node, 'lineno', 0)}"

    def _allowed(self, prefixes: Sequence[str]) -> bool:
        return any(self.relpath.startswith(prefix) for prefix in prefixes)

    # -- TNG041: module-level mutable state ---------------------------------
    def _is_mutable_value(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                return dotted.split(".")[-1] in _MUTABLE_COLLECTION_CALLS
        return False

    def visit_Module(self, node: ast.Module) -> None:
        if self._allowed(SHARED_STATE_PATHS):
            for stmt in node.body:
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value = [stmt.target], stmt.value
                if value is None or not self._is_mutable_value(value):
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    name = target.id
                    if name.isupper() or (
                        name.startswith("__") and name.endswith("__")
                    ):
                        continue  # constant convention / dunder metadata
                    self.report.add(
                        "TNG041",
                        Severity.ERROR,
                        f"module-level mutable binding {name!r} in shared "
                        "simulator/core code",
                        location=self._at(stmt),
                        hint="move the state into a class, or rename it "
                        "UPPER_CASE if it is a true constant",
                    )
        self.generic_visit(node)

    # -- TNG042: generator shared-state mutation ----------------------------
    def _check_generator_mutation(self, node) -> None:
        is_generator = False
        declared: Set[str] = set()
        for scoped in _scope_nodes(node.body):
            if isinstance(scoped, (ast.Yield, ast.YieldFrom)):
                is_generator = True
            elif isinstance(scoped, (ast.Global, ast.Nonlocal)):
                declared.update(scoped.names)
        if not is_generator or not declared:
            return
        for scoped in _scope_nodes(node.body):
            flagged: Optional[str] = None
            if isinstance(scoped, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    scoped.targets
                    if isinstance(scoped, ast.Assign)
                    else [scoped.target]
                )
                for target in targets:
                    root = _root_name(target)
                    if root in declared:
                        flagged = f"assignment to {root!r}"
                        break
            elif (
                isinstance(scoped, ast.Call)
                and isinstance(scoped.func, ast.Attribute)
                and scoped.func.attr in _MUTATING_METHODS
            ):
                root = _root_name(scoped.func.value)
                if root in declared:
                    flagged = f"{root}.{scoped.func.attr}(...)"
            if flagged is not None:
                self.report.add(
                    "TNG042",
                    Severity.ERROR,
                    f"generator {node.name}() mutates shared state "
                    f"({flagged}) outside the event queue",
                    location=self._at(scoped),
                    hint="yield the update to the driver (the event queue "
                    "orders it) instead of writing shared state directly",
                )

    # -- TNG043: object-identity ordering ------------------------------------
    def _check_identity_ordering(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        callee = dotted.split(".")[-1] if dotted is not None else None
        if callee not in _ORDERING_CALLS:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            uses_id = (
                isinstance(keyword.value, ast.Name) and keyword.value.id == "id"
            ) or (
                isinstance(keyword.value, ast.Lambda)
                and any(_is_id_call(n) for n in ast.walk(keyword.value.body))
            )
            if uses_id:
                self.report.add(
                    "TNG043",
                    Severity.ERROR,
                    f"id() used as the sort key of {callee}()",
                    location=self._at(keyword.value),
                    hint="order by a stable attribute (name, sequence, "
                    "time) -- object ids change run to run",
                )

    def visit_Compare(self, node: ast.Compare) -> None:
        ordering_ops = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        operands = [node.left] + list(node.comparators)
        if any(isinstance(op, ordering_ops) for op in node.ops) and any(
            _is_id_call(operand) for operand in operands
        ):
            self.report.add(
                "TNG043",
                Severity.ERROR,
                "ordering comparison on id() values",
                location=self._at(node),
                hint="order by a stable attribute (name, sequence, time) "
                "-- object ids change run to run",
            )
        self.generic_visit(node)

    # -- TNG030 / TNG031: calls and imports --------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_identity_ordering(node)
        dotted = _dotted(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if (
                len(parts) >= 2
                and (parts[-2], parts[-1]) in _WALL_CLOCK_CALLS
                and not self._allowed(WALL_CLOCK_ALLOWED)
            ):
                self.report.add(
                    "TNG030",
                    Severity.ERROR,
                    f"wall-clock call {dotted}() in simulator code",
                    location=self._at(node),
                    hint="read a repro.sim.clock.VirtualClock instead",
                )
            if (
                len(parts) >= 2
                and "random" in parts[:-1]
                and not self._allowed(RANDOM_ALLOWED)
            ):
                self.report.add(
                    "TNG031",
                    Severity.ERROR,
                    f"module-level randomness {dotted}() outside sim/rng.py",
                    location=self._at(node),
                    hint="draw from a SeededRng stream (sim/rng.py)",
                )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random" and not self._allowed(RANDOM_ALLOWED):
                self.report.add(
                    "TNG031",
                    Severity.ERROR,
                    "import of the stdlib random module outside sim/rng.py",
                    location=self._at(node),
                    hint="derive a SeededRng child stream instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None:
            root = node.module.split(".")[0]
            if root == "random" and not self._allowed(RANDOM_ALLOWED):
                self.report.add(
                    "TNG031",
                    Severity.ERROR,
                    "from random import ... outside sim/rng.py",
                    location=self._at(node),
                    hint="derive a SeededRng child stream instead",
                )
        self.generic_visit(node)

    # -- TNG032: unordered iteration ----------------------------------------
    def _is_set_expression(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            return name in _SET_CONSTRUCTORS
        return False

    def _flag_unordered(self, iterable: ast.AST) -> None:
        if self._is_set_expression(iterable):
            self.report.add(
                "TNG032",
                Severity.ERROR,
                "iteration directly over a set; ordering is process-salted",
                location=self._at(iterable),
                hint="wrap the set in sorted(...) before iterating",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_unordered(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, generators) -> None:
        for comp in generators:
            self._flag_unordered(comp.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    # -- TNG033: mutable defaults --------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if not mutable and isinstance(default, ast.Call):
                name = _dotted(default.func)
                mutable = name in _MUTABLE_CONSTRUCTORS
            if mutable:
                self.report.add(
                    "TNG033",
                    Severity.ERROR,
                    f"mutable default argument in {node.name}()",
                    location=self._at(default),
                    hint="default to None and create the object inside "
                    "the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_generator_mutation(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_generator_mutation(node)
        self.generic_visit(node)

    # -- TNG035: swallowed exceptions ----------------------------------------
    @staticmethod
    def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:  # bare except:
            return True
        names = []
        if isinstance(handler.type, ast.Tuple):
            names = [_dotted(element) for element in handler.type.elts]
        else:
            names = [_dotted(handler.type)]
        return any(name in _BROAD_EXCEPTIONS for name in names)

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            if not self._is_broad_handler(handler):
                continue
            if any(isinstance(n, ast.Raise) for stmt in handler.body for n in ast.walk(stmt)):
                continue
            caught = "bare except" if handler.type is None else (
                f"except {_dotted(handler.type) or '(...)'}"
            )
            self.report.add(
                "TNG035",
                Severity.ERROR,
                f"{caught} swallows the exception (no raise in handler)",
                location=self._at(handler),
                hint="catch the specific fault types (e.g. "
                "repro.faults.retry.TRANSIENT_FAULTS) or re-raise",
            )
        self.generic_visit(node)


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number -> codes suppressed there via ``tango-lint: disable``."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is not None:
            codes = {code.strip() for code in match.group(1).split(",")}
            table[lineno] = {code for code in codes if code}
    return table


def _finding_line(location: str, relpath: str) -> Optional[int]:
    """The line number of a ``relpath:line`` location; None otherwise."""
    prefix = f"{relpath}:"
    if not location.startswith(prefix):
        return None
    try:
        return int(location[len(prefix):])
    except ValueError:
        return None


def lint_source(
    source: str, relpath: str, report: Optional[DiagnosticReport] = None
) -> DiagnosticReport:
    """Lint one module's source text (``relpath`` is package-relative).

    Findings on lines carrying a ``# tango-lint: disable=TNG0xx``
    comment naming the finding's code are dropped.
    """
    report = report if report is not None else DiagnosticReport()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        line = exc.lineno if exc.lineno is not None else 1
        report.add(
            "TNG034",
            Severity.ERROR,
            f"cannot parse file: {exc.msg}",
            location=f"{relpath}:{line}",
            hint="fix the syntax error; nothing else in this file was checked",
        )
        return report
    relpath = relpath.replace("\\", "/")
    local = DiagnosticReport()
    _DeterminismVisitor(relpath, local).visit(tree)
    suppressed = _suppressions(source)
    for diagnostic in local:
        line = _finding_line(diagnostic.location, relpath)
        if line is not None and diagnostic.code in suppressed.get(line, ()):
            continue
        report.extend([diagnostic])
    return report


def _package_relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(targets: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(
    targets: Sequence[str], report: Optional[DiagnosticReport] = None
) -> DiagnosticReport:
    """Lint every python file under the given files/directories.

    Rule allowlists (``sim/``, ``sim/rng.py``) are matched against paths
    relative to each target directory, so both ``src/repro`` and a
    package checkout root work.
    """
    report = report if report is not None else DiagnosticReport()
    for target in targets:
        root = Path(target) if Path(target).is_dir() else Path(target).parent
        for path in iter_python_files([target]):
            relpath = _package_relative(path, root)
            lint_source(
                path.read_text(encoding="utf-8", errors="replace"),
                relpath,
                report,
            )
    return report


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="tango-lint",
        description="Determinism linter for the Tango reproduction sources.",
    )
    parser.add_argument(
        "targets", nargs="+", help="python files or package directories to lint"
    )
    parser.add_argument(
        "--warnings-as-errors",
        action="store_true",
        help="exit non-zero on WARNING diagnostics too",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: human-readable text (default) or one JSON object",
    )
    args = parser.parse_args(argv)
    for target in args.targets:
        if not Path(target).exists():
            parser.error(f"no such file or directory: {target}")

    report = lint_paths(args.targets)
    errors = report.errors()
    warnings = report.warnings()
    files = len(iter_python_files(args.targets))
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files": files,
                    "errors": len(errors),
                    "warnings": len(warnings),
                    "diagnostics": report.to_dicts(),
                },
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
    else:
        if len(report):
            print(report.format(), file=out)
        print(
            f"tango-lint: {len(errors)} error(s), {len(warnings)} warning(s) in "
            f"{files} file(s)",
            file=out,
        )
    # Stable exit codes: 0 clean, 1 findings, 2 usage (argparse errors
    # exit 2 via parser.error above).
    if errors or (args.warnings_as_errors and warnings):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
