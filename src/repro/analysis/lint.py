"""AST determinism linter for the simulator's own source code.

The reproduction's headline guarantee is that every experiment is
deterministic run-to-run: all randomness flows through seeded
:class:`~repro.sim.rng.SeededRng` streams and all time through virtual
clocks.  That guarantee is only as strong as the code's discipline, so
this linter walks the package's ASTs and enforces it:

* **TNG030 wall clock** — calls to ``time.time``/``time.monotonic``/
  ``time.perf_counter`` (and their ``_ns`` variants)/``datetime.now``/
  ``datetime.utcnow``/
  ``datetime.today`` outside the simulation substrate (``sim/``) and
  the wall-clock bench harness (``perf/``).  Virtual experiments must
  read virtual clocks.
* **TNG031 unseeded randomness** — any use of the stdlib ``random``
  module, or of ``numpy.random``'s module-level functions, outside
  ``sim/rng.py``.  Unseeded draws silently break reproducibility.
* **TNG032 unordered iteration** — ``for`` loops and comprehensions
  iterating directly over a ``set`` display, set comprehension, or
  ``set(...)``/``frozenset(...)`` call without ``sorted(...)``.  Set
  iteration order is salted per process; feeding it into scheduler
  decisions makes runs diverge.
* **TNG033 mutable default argument** — list/dict/set displays (or
  constructor calls) as parameter defaults; shared mutable state across
  calls is a classic heisenbug source.
* **TNG034 unparseable source** — the file is not valid Python; it is
  reported (with the parse error's location) instead of aborting the
  whole lint run.
* **TNG035 swallowed exception** — a bare ``except:`` or broad
  ``except Exception``/``except BaseException`` handler whose body never
  re-raises.  Fault-tolerance code must catch the *specific* transient
  fault types (:data:`repro.faults.retry.TRANSIENT_FAULTS`): a broad
  swallow hides permanent signals such as
  :class:`~repro.openflow.errors.TableFullError` — the size probe's stop
  condition — and turns deterministic failures into silent divergence.

Run it over the repository itself::

    python -m repro.analysis.lint src/repro
    tango-lint src/repro           # console entry point

Exit status is 1 when any ERROR diagnostic is found (0 otherwise), so
the linter slots directly into CI.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.diagnostics import DiagnosticReport, Severity

#: Module paths (relative, forward-slash) exempt from a given rule.
#: ``perf/`` measures *host* wall time by design (tango-bench reports
#: it for humans; its regression gate uses deterministic op counts).
WALL_CLOCK_ALLOWED = ("sim/", "perf/")
RANDOM_ALLOWED = ("sim/rng.py",)

_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

_SET_CONSTRUCTORS = {"set", "frozenset"}
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set"}
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, relpath: str, report: DiagnosticReport) -> None:
        self.relpath = relpath
        self.report = report

    def _at(self, node: ast.AST) -> str:
        return f"{self.relpath}:{getattr(node, 'lineno', 0)}"

    def _allowed(self, prefixes: Sequence[str]) -> bool:
        return any(self.relpath.startswith(prefix) for prefix in prefixes)

    # -- TNG030 / TNG031: calls and imports --------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if (
                len(parts) >= 2
                and (parts[-2], parts[-1]) in _WALL_CLOCK_CALLS
                and not self._allowed(WALL_CLOCK_ALLOWED)
            ):
                self.report.add(
                    "TNG030",
                    Severity.ERROR,
                    f"wall-clock call {dotted}() in simulator code",
                    location=self._at(node),
                    hint="read a repro.sim.clock.VirtualClock instead",
                )
            if (
                len(parts) >= 2
                and "random" in parts[:-1]
                and not self._allowed(RANDOM_ALLOWED)
            ):
                self.report.add(
                    "TNG031",
                    Severity.ERROR,
                    f"module-level randomness {dotted}() outside sim/rng.py",
                    location=self._at(node),
                    hint="draw from a SeededRng stream (sim/rng.py)",
                )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random" and not self._allowed(RANDOM_ALLOWED):
                self.report.add(
                    "TNG031",
                    Severity.ERROR,
                    "import of the stdlib random module outside sim/rng.py",
                    location=self._at(node),
                    hint="derive a SeededRng child stream instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None:
            root = node.module.split(".")[0]
            if root == "random" and not self._allowed(RANDOM_ALLOWED):
                self.report.add(
                    "TNG031",
                    Severity.ERROR,
                    "from random import ... outside sim/rng.py",
                    location=self._at(node),
                    hint="derive a SeededRng child stream instead",
                )
        self.generic_visit(node)

    # -- TNG032: unordered iteration ----------------------------------------
    def _is_set_expression(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            return name in _SET_CONSTRUCTORS
        return False

    def _flag_unordered(self, iterable: ast.AST) -> None:
        if self._is_set_expression(iterable):
            self.report.add(
                "TNG032",
                Severity.ERROR,
                "iteration directly over a set; ordering is process-salted",
                location=self._at(iterable),
                hint="wrap the set in sorted(...) before iterating",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_unordered(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, generators) -> None:
        for comp in generators:
            self._flag_unordered(comp.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    # -- TNG033: mutable defaults --------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if not mutable and isinstance(default, ast.Call):
                name = _dotted(default.func)
                mutable = name in _MUTABLE_CONSTRUCTORS
            if mutable:
                self.report.add(
                    "TNG033",
                    Severity.ERROR,
                    f"mutable default argument in {node.name}()",
                    location=self._at(default),
                    hint="default to None and create the object inside "
                    "the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- TNG035: swallowed exceptions ----------------------------------------
    @staticmethod
    def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:  # bare except:
            return True
        names = []
        if isinstance(handler.type, ast.Tuple):
            names = [_dotted(element) for element in handler.type.elts]
        else:
            names = [_dotted(handler.type)]
        return any(name in _BROAD_EXCEPTIONS for name in names)

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            if not self._is_broad_handler(handler):
                continue
            if any(isinstance(n, ast.Raise) for stmt in handler.body for n in ast.walk(stmt)):
                continue
            caught = "bare except" if handler.type is None else (
                f"except {_dotted(handler.type) or '(...)'}"
            )
            self.report.add(
                "TNG035",
                Severity.ERROR,
                f"{caught} swallows the exception (no raise in handler)",
                location=self._at(handler),
                hint="catch the specific fault types (e.g. "
                "repro.faults.retry.TRANSIENT_FAULTS) or re-raise",
            )
        self.generic_visit(node)


def lint_source(
    source: str, relpath: str, report: Optional[DiagnosticReport] = None
) -> DiagnosticReport:
    """Lint one module's source text (``relpath`` is package-relative)."""
    report = report if report is not None else DiagnosticReport()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        line = exc.lineno if exc.lineno is not None else 1
        report.add(
            "TNG034",
            Severity.ERROR,
            f"cannot parse file: {exc.msg}",
            location=f"{relpath}:{line}",
            hint="fix the syntax error; nothing else in this file was checked",
        )
        return report
    _DeterminismVisitor(relpath.replace("\\", "/"), report).visit(tree)
    return report


def _package_relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(targets: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(
    targets: Sequence[str], report: Optional[DiagnosticReport] = None
) -> DiagnosticReport:
    """Lint every python file under the given files/directories.

    Rule allowlists (``sim/``, ``sim/rng.py``) are matched against paths
    relative to each target directory, so both ``src/repro`` and a
    package checkout root work.
    """
    report = report if report is not None else DiagnosticReport()
    for target in targets:
        root = Path(target) if Path(target).is_dir() else Path(target).parent
        for path in iter_python_files([target]):
            relpath = _package_relative(path, root)
            lint_source(
                path.read_text(encoding="utf-8", errors="replace"),
                relpath,
                report,
            )
    return report


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="tango-lint",
        description="Determinism linter for the Tango reproduction sources.",
    )
    parser.add_argument(
        "targets", nargs="+", help="python files or package directories to lint"
    )
    parser.add_argument(
        "--warnings-as-errors",
        action="store_true",
        help="exit non-zero on WARNING diagnostics too",
    )
    args = parser.parse_args(argv)
    for target in args.targets:
        if not Path(target).exists():
            parser.error(f"no such file or directory: {target}")

    report = lint_paths(args.targets)
    if len(report):
        print(report.format(), file=out)
    errors = report.errors()
    warnings = report.warnings()
    print(
        f"tango-lint: {len(errors)} error(s), {len(warnings)} warning(s) in "
        f"{len(iter_python_files(args.targets))} file(s)",
        file=out,
    )
    if errors or (args.warnings_as_errors and warnings):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
