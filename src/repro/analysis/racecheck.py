"""Virtual-time race detector and determinism sanitizer.

The whole reproduction leans on one ordering rule: same-virtual-time
events fire in the event queue's ``(time, sequence)`` insertion order.
That tie-break is an *artifact of a single queue* — the moment the fleet
is sharded across per-shard queues (ROADMAP), same-time events from
different shards merge in an order no single counter defines.  Any pair
of shared-state accesses whose outcome depends on the tie-break is
therefore latent nondeterminism waiting for the sharding PR to surface
it.

This module certifies which accesses are shard-safe:

* **Access-logging sanitizer proxies** wrap the shared mutable state a
  fleet run touches — :class:`~repro.core.scores.TangoScoreDatabase`
  (:class:`SanitizedScoreDatabase`), the fleet
  :class:`~repro.core.fleet.ModelCache` (:class:`SanitizedModelCache`),
  and the :class:`~repro.obs.metrics.MetricsRegistry`
  (:class:`SanitizedMetricsRegistry`).  Every read/write is tagged with
  the executing event's ``(time_ms, sequence)`` and the owning fleet
  member.
* **Causal provenance** comes from
  :class:`~repro.sim.events.ProvenanceRecorder`: each event knows which
  event scheduled it, giving the happens-before skeleton.
* :func:`check_races` combines the two: two accesses to the same
  location at the same virtual time, from different events with no
  happens-before path between them, where at least one is a
  non-commutative write, are reported as **TNG040** with the full
  access trace.

Commutativity matters: counter increments and histogram observations
from same-time events are order-independent, so they never race with
each other; a gauge ``set`` (last-writer-wins) or a TangoDB ``put`` is
order-dependent and does.

Accesses made outside any event (straight-line setup/teardown around
``sim.run()``) execute in program order on every shard layout, so they
are never part of a race.

Run it end to end with ``tango-probe infer --fleet N --sanitize``; the
deliberately racy regression fixture (:func:`run_racy_fixture`) pins the
detector's positive side, and :func:`verify_noop_sanitize` guarantees a
sanitized run never perturbs the fleet's results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.core.scores import ScoreKey, ScoreRecord, TangoScoreDatabase
from repro.sim.clock import VirtualClock
from repro.sim.events import ProvenanceRecorder, Simulator


class AccessKind(enum.Enum):
    """Whether a logged access observed or mutated shared state."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Access:
    """One logged shared-state access.

    Args:
        kind: READ or WRITE.
        location: canonical name of the state touched, e.g.
            ``db:s1/switch_model`` or ``metric:fleet.cache_hits``.
        time_ms: virtual time of the executing event (0.0 in root code).
        sequence: the executing event's queue sequence, or ``None`` for
            accesses made outside any event (root context).
        owner: the fleet member (or component) on whose behalf the
            access ran, when known.
        op: the concrete operation (``put``, ``get``, ``inc``, ...).
        detail: free-form extra context for the trace line.
        commutative: True for order-independent writes (counter
            increments, histogram observations); same-time commutative
            writes never race with each other.
    """

    kind: AccessKind
    location: str
    time_ms: float
    sequence: Optional[int]
    owner: Optional[str] = None
    op: str = ""
    detail: str = ""
    commutative: bool = False

    def format(self) -> str:
        """One trace line: ``t=5.000ms seq=3 owner=b write put db:... ``."""
        seq = "root" if self.sequence is None else str(self.sequence)
        owner = self.owner if self.owner else "-"
        note = f" ({self.detail})" if self.detail else ""
        flavor = " commutative" if self.commutative else ""
        return (
            f"t={self.time_ms:.3f}ms seq={seq} owner={owner} "
            f"{self.kind.value}{flavor} {self.op} {self.location}{note}"
        )


class AccessLog:
    """An append-only, insertion-ordered log of sanitized accesses."""

    def __init__(self) -> None:
        self.accesses: List[Access] = []

    def record(self, access: Access) -> Access:
        self.accesses.append(access)
        return access

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self):
        return iter(self.accesses)

    def for_location(self, location: str) -> List[Access]:
        return [a for a in self.accesses if a.location == location]


def db_location(switch: str, metric: str, params: Tuple[Tuple[str, Any], ...]) -> str:
    """Canonical location string for one TangoDB record."""
    if not params:
        return f"db:{switch}/{metric}"
    rendered = ",".join(f"{k}={v}" for k, v in params)
    return f"db:{switch}/{metric}?{rendered}"


def metric_location(name: str, labels: Dict[str, Any]) -> str:
    """Canonical location string for one metric handle."""
    if not labels:
        return f"metric:{name}"
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"metric:{name}{{{rendered}}}"


# -- sanitizer proxies ---------------------------------------------------------
class SanitizedScoreDatabase:
    """Access-logging proxy over a :class:`TangoScoreDatabase`.

    Presents the full score-database interface and delegates every call
    to ``inner``, logging each keyed operation against the sanitizer it
    was built by.  ``put``/``remove`` are non-commutative writes; the
    lookups are reads.  Whole-switch scans log a wildcard read
    (``db:<switch>/*``) that conflicts with any write under that switch.
    """

    def __init__(self, inner: TangoScoreDatabase, sanitizer: "RaceSanitizer") -> None:
        self.inner = inner
        self._sanitizer = sanitizer

    def _log(
        self, kind: AccessKind, location: str, op: str, detail: str = ""
    ) -> None:
        self._sanitizer.record(kind, location, op=op, detail=detail)

    def put(
        self,
        switch: str,
        metric: str,
        value: Any,
        recorded_at_ms: float = 0.0,
        source: Optional[str] = None,
        **params: Any,
    ) -> ScoreKey:
        key = ScoreKey.make(switch, metric, **params)
        self._log(
            AccessKind.WRITE,
            db_location(switch, metric, key.params),
            "put",
            detail=source if source else "",
        )
        return self.inner.put(
            switch,
            metric,
            value,
            recorded_at_ms=recorded_at_ms,
            source=source,
            **params,
        )

    def remove(self, switch: str, metric: str, **params: Any) -> bool:
        key = ScoreKey.make(switch, metric, **params)
        self._log(
            AccessKind.WRITE, db_location(switch, metric, key.params), "remove"
        )
        return self.inner.remove(switch, metric, **params)

    def get(self, switch: str, metric: str, default: Any = None, **params: Any) -> Any:
        key = ScoreKey.make(switch, metric, **params)
        value = self.inner.get(switch, metric, default=default, **params)
        self._log(
            AccessKind.READ,
            db_location(switch, metric, key.params),
            "get",
            detail="miss" if value is default else "hit",
        )
        return value

    def get_record(
        self, switch: str, metric: str, **params: Any
    ) -> Optional[ScoreRecord]:
        key = ScoreKey.make(switch, metric, **params)
        self._log(
            AccessKind.READ, db_location(switch, metric, key.params), "get_record"
        )
        return self.inner.get_record(switch, metric, **params)

    def has(self, switch: str, metric: str, **params: Any) -> bool:
        key = ScoreKey.make(switch, metric, **params)
        self._log(AccessKind.READ, db_location(switch, metric, key.params), "has")
        return self.inner.has(switch, metric, **params)

    def records_for_switch(self, switch: str) -> List[ScoreRecord]:
        self._log(AccessKind.READ, f"db:{switch}/*", "records_for_switch")
        return self.inner.records_for_switch(switch)

    def metrics_for_switch(self, switch: str) -> List[str]:
        self._log(AccessKind.READ, f"db:{switch}/*", "metrics_for_switch")
        return self.inner.metrics_for_switch(switch)

    def records(self) -> List[ScoreRecord]:
        return self.inner.records()

    def switches(self) -> List[str]:
        return self.inner.switches()

    def __len__(self) -> int:
        return len(self.inner)


class SanitizedModelCache:
    """Access-logging proxy over a fleet :class:`ModelCache`.

    Logs cache operations against the *database location* of the cached
    entry (``db:__fleet__/model_cache?fingerprint=...``), so a
    cache-level store and a raw TangoDB access to the same entry land on
    the same location and race-check against each other.
    """

    def __init__(self, inner: Any, sanitizer: "RaceSanitizer") -> None:
        from repro.core.fleet import FLEET_DB_SWITCH, MODEL_CACHE_METRIC

        self.inner = inner
        self._sanitizer = sanitizer
        self._switch = FLEET_DB_SWITCH
        self._metric = MODEL_CACHE_METRIC

    def _location(self, fingerprint: str) -> str:
        return db_location(
            self._switch, self._metric, (("fingerprint", fingerprint),)
        )

    def lookup(self, fingerprint: str):
        entry = self.inner.lookup(fingerprint)
        self._sanitizer.record(
            AccessKind.READ,
            self._location(fingerprint),
            op="cache.lookup",
            detail="hit" if entry is not None else "miss",
        )
        return entry

    def peek(self, fingerprint: str):
        entry = self.inner.peek(fingerprint)
        self._sanitizer.record(
            AccessKind.READ, self._location(fingerprint), op="cache.peek"
        )
        return entry

    def store(self, fingerprint: str, model, origin: str, recorded_at_ms: float = 0.0):
        self._sanitizer.record(
            AccessKind.WRITE,
            self._location(fingerprint),
            op="cache.store",
            detail=f"origin={origin}",
        )
        return self.inner.store(
            fingerprint, model, origin, recorded_at_ms=recorded_at_ms
        )

    def invalidate(self, fingerprint: str) -> bool:
        self._sanitizer.record(
            AccessKind.WRITE, self._location(fingerprint), op="cache.invalidate"
        )
        return self.inner.invalidate(fingerprint)

    def invalidate_if_drifted(self, fingerprint: str, fresh, detector=None):
        self._sanitizer.record(
            AccessKind.WRITE,
            self._location(fingerprint),
            op="cache.invalidate_if_drifted",
        )
        return self.inner.invalidate_if_drifted(fingerprint, fresh, detector=detector)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


class _SanitizedCounter:
    """Counter handle logging commutative writes (order-independent)."""

    def __init__(self, inner, location: str, sanitizer: "RaceSanitizer") -> None:
        self._inner = inner
        self._location = location
        self._sanitizer = sanitizer

    def inc(self, amount: float = 1.0) -> None:
        self._sanitizer.record(
            AccessKind.WRITE, self._location, op="inc", commutative=True
        )
        self._inner.inc(amount)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class _SanitizedGauge:
    """Gauge handle: ``set`` is a last-writer-wins (racy) write."""

    def __init__(self, inner, location: str, sanitizer: "RaceSanitizer") -> None:
        self._inner = inner
        self._location = location
        self._sanitizer = sanitizer

    def set(self, value: float) -> None:
        self._sanitizer.record(AccessKind.WRITE, self._location, op="set")
        self._inner.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._sanitizer.record(
            AccessKind.WRITE, self._location, op="inc", commutative=True
        )
        self._inner.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sanitizer.record(
            AccessKind.WRITE, self._location, op="dec", commutative=True
        )
        self._inner.dec(amount)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class _SanitizedHistogram:
    """Histogram handle logging commutative observations."""

    def __init__(self, inner, location: str, sanitizer: "RaceSanitizer") -> None:
        self._inner = inner
        self._location = location
        self._sanitizer = sanitizer

    def observe(self, value: float) -> None:
        self._sanitizer.record(
            AccessKind.WRITE, self._location, op="observe", commutative=True
        )
        self._inner.observe(value)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class SanitizedMetricsRegistry:
    """Access-logging proxy over a :class:`MetricsRegistry`.

    Handles are wrapped once per ``(name, labels)`` so hot paths that
    cache the handle keep working; counter/histogram updates log as
    commutative writes, ``gauge.set`` as a non-commutative one.
    """

    enabled = True

    def __init__(self, inner, sanitizer: "RaceSanitizer") -> None:
        self.inner = inner
        self._sanitizer = sanitizer
        self._handles: Dict[Tuple[str, str, str], Any] = {}

    def _wrap(self, flavor: str, name: str, handle, labels: Dict[str, Any]):
        location = metric_location(name, labels)
        key = (flavor, name, location)
        wrapped = self._handles.get(key)
        if wrapped is None:
            cls = {
                "counter": _SanitizedCounter,
                "gauge": _SanitizedGauge,
                "histogram": _SanitizedHistogram,
            }[flavor]
            wrapped = self._handles[key] = cls(handle, location, self._sanitizer)
        return wrapped

    def counter(self, name: str, **labels: Any):
        return self._wrap("counter", name, self.inner.counter(name, **labels), labels)

    def gauge(self, name: str, **labels: Any):
        return self._wrap("gauge", name, self.inner.gauge(name, **labels), labels)

    def histogram(self, name: str, buckets=None, **labels: Any):
        return self._wrap(
            "histogram",
            name,
            self.inner.histogram(name, buckets=buckets, **labels),
            labels,
        )

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


# -- the sanitizer -------------------------------------------------------------
class RaceSanitizer:
    """Binds the access log, provenance recorder, and owner context.

    Typical use (what ``tango-probe infer --sanitize`` does)::

        sanitizer = RaceSanitizer()
        engine = FleetInferenceEngine(members, seed=0, sanitizer=sanitizer)
        engine.infer_fleet()
        result = sanitizer.check()
        if result.findings:
            print(result.report.format())

    The sanitizer never changes what runs: proxies delegate every call
    unchanged and provenance rides on ``compare=False`` event fields, so
    sanitized output is byte-identical to a bare run
    (:func:`verify_noop_sanitize` asserts exactly that).
    """

    def __init__(self) -> None:
        self.log = AccessLog()
        self.provenance = ProvenanceRecorder()
        self._sim: Optional[Simulator] = None
        self._owner: Optional[str] = None

    # -- wiring ----------------------------------------------------------------
    def make_simulator(self, clock: Optional[VirtualClock] = None) -> Simulator:
        """A simulator whose events carry provenance and access context."""
        self._sim = Simulator(clock=clock, provenance=self.provenance)
        return self._sim

    def set_owner(self, owner: Optional[str]) -> None:
        """Attribute subsequent accesses to a fleet member (or component)."""
        self._owner = owner

    def wrap_scores(self, scores: TangoScoreDatabase) -> SanitizedScoreDatabase:
        return SanitizedScoreDatabase(scores, self)

    def wrap_metrics(self, metrics) -> SanitizedMetricsRegistry:
        return SanitizedMetricsRegistry(metrics, self)

    def wrap_cache(self, cache) -> SanitizedModelCache:
        return SanitizedModelCache(cache, self)

    # -- recording -------------------------------------------------------------
    def record(
        self,
        kind: AccessKind,
        location: str,
        op: str = "",
        detail: str = "",
        commutative: bool = False,
    ) -> Access:
        """Log one access tagged with the current event and owner."""
        event = self._sim.current_event if self._sim is not None else None
        if event is not None:
            time_ms = event.time_ms
            sequence: Optional[int] = event.sequence
        else:
            time_ms = self._sim.clock.now_ms if self._sim is not None else 0.0
            sequence = None
        return self.log.record(
            Access(
                kind=kind,
                location=location,
                time_ms=time_ms,
                sequence=sequence,
                owner=self._owner,
                op=op,
                detail=detail,
                commutative=commutative,
            )
        )

    # -- analysis --------------------------------------------------------------
    def check(self, report: Optional[DiagnosticReport] = None) -> "RaceCheckResult":
        """Build the happens-before graph and report TNG040 findings."""
        return check_races(self.log, self.provenance, report=report)


# -- the detector --------------------------------------------------------------
def _conflicts(a: Access, b: Access) -> bool:
    """True when the pair is order-dependent (ignoring happens-before)."""
    if a.sequence == b.sequence:
        return False  # same event: program order
    if a.kind is not AccessKind.WRITE and b.kind is not AccessKind.WRITE:
        return False  # read/read never conflicts
    if a.commutative and b.commutative:
        return False  # order-independent updates
    return True


@dataclass
class RaceCheckResult:
    """Outcome of one race check: the report plus run statistics."""

    report: DiagnosticReport
    accesses: int = 0
    events: int = 0
    locations: int = 0

    @property
    def findings(self) -> List:
        return self.report.by_code("TNG040")

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready digest (CLI ``--json``, race-smoke artifact)."""
        return {
            "accesses": self.accesses,
            "events": self.events,
            "locations": self.locations,
            "findings": len(self.findings),
            "diagnostics": self.report.to_dicts(),
        }


def check_races(
    log: AccessLog,
    provenance: ProvenanceRecorder,
    report: Optional[DiagnosticReport] = None,
    max_findings: int = 100,
) -> RaceCheckResult:
    """Report every tie-break race in an access log as TNG040.

    Two accesses race when they touch the same location at the same
    virtual time from different events with no happens-before path
    (scheduling ancestry, per ``provenance``) between them, and at least
    one is a non-commutative write.  Root-context accesses (made outside
    any event) run in program order on any shard layout and never race.
    Each finding carries the racy location's full access trace.
    """
    report = report if report is not None else DiagnosticReport()
    # time -> location -> accesses, insertion-ordered at every level.
    buckets: Dict[float, Dict[str, List[Access]]] = {}
    # time -> wildcard (whole-switch) reads in that instant.
    wildcards: Dict[float, List[Access]] = {}
    event_ids: Dict[int, None] = {}
    locations: Dict[str, None] = {}
    for access in log:
        locations[access.location] = None
        if access.sequence is None:
            continue
        event_ids[access.sequence] = None
        if access.location.endswith("/*"):
            wildcards.setdefault(access.time_ms, []).append(access)
        else:
            buckets.setdefault(access.time_ms, {}).setdefault(
                access.location, []
            ).append(access)

    seen_pairs: Dict[Tuple[str, float, int, int], None] = {}
    findings = 0

    def flag(location: str, time_ms: float, a: Access, b: Access, group: List[Access]):
        nonlocal findings
        lo, hi = sorted((a.sequence, b.sequence))  # type: ignore[type-var]
        pair = (location, time_ms, lo, hi)
        if pair in seen_pairs:
            return
        seen_pairs[pair] = None
        if provenance.ordered(a.sequence, b.sequence):  # type: ignore[arg-type]
            return
        if findings >= max_findings:
            return
        findings += 1
        owners = " vs ".join(
            f"{x.owner or '-'}:{x.op or x.kind.value}" for x in (a, b)
        )
        report.add(
            "TNG040",
            Severity.ERROR,
            f"tie-break race on {location}: events {lo} and {hi} conflict at "
            f"t={time_ms:.3f}ms with no happens-before edge ({owners})",
            location=f"{location} @ t={time_ms:.3f}ms",
            hint="order the accesses through the event queue (schedule one "
            "from the other) or make the update commutative",
            trace=tuple(x.format() for x in group),
        )

    for time_ms in sorted(set(buckets) | set(wildcards)):
        groups = buckets.get(time_ms, {})
        for location in sorted(groups):
            group = groups[location]
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    if _conflicts(group[i], group[j]):
                        flag(location, time_ms, group[i], group[j], group)
        # Whole-switch scans conflict with any same-time write under
        # that switch's prefix.
        for scan in wildcards.get(time_ms, []):
            prefix = scan.location[:-1]  # "db:<switch>/"
            for location in sorted(groups):
                if not location.startswith(prefix):
                    continue
                group = groups[location]
                for other in group:
                    if other.kind is AccessKind.WRITE and _conflicts(scan, other):
                        flag(
                            location,
                            time_ms,
                            scan,
                            other,
                            group + [scan],
                        )

    return RaceCheckResult(
        report=report,
        accesses=len(log),
        events=len(event_ids),
        locations=len(locations),
    )


# -- fleet integration helpers -------------------------------------------------
def sanitized_fleet_run(
    members: Sequence[Any],
    seed: int = 0,
    include_policy: bool = False,
    **engine_knobs: Any,
) -> Tuple[Any, RaceCheckResult]:
    """Run a fleet under the sanitizer; returns (FleetResult, races).

    Convenience wrapper used by the CLI and the race-smoke CI job:
    builds a :class:`~repro.core.fleet.FleetInferenceEngine` with a
    fresh :class:`RaceSanitizer` attached, infers the fleet, and checks
    the access log.
    """
    from repro.core.fleet import FleetInferenceEngine

    sanitizer = RaceSanitizer()
    engine = FleetInferenceEngine(
        members, seed=seed, sanitizer=sanitizer, **engine_knobs
    )
    result = engine.infer_fleet(include_policy=include_policy)
    return result, sanitizer.check()


def run_racy_fixture(seed: int = 0) -> RaceCheckResult:
    """The seeded regression fixture: a deliberately racy two-member fleet.

    Two members of the same profile fingerprint are driven *without*
    single-flight coalescing: member ``racy-a`` finishes its probe and
    stores the model into the shared cache at the same virtual instant
    member ``racy-b`` looks the fingerprint up, both scheduled
    independently from root — so whether ``racy-b`` hits or misses the
    cache depends purely on the queue's sequence tie-break.  TNG040 must
    flag exactly that store/lookup pair.

    The fixture also includes the safe counterpart — a same-time store
    and lookup where the store's event *schedules* the lookup — which
    must stay silent, pinning both sides of the detector.
    """
    from repro.core.fleet import ModelCache
    from repro.core.inference import InferredSwitchModel

    sanitizer = RaceSanitizer()
    sim = sanitizer.make_simulator()
    cache = sanitizer.wrap_cache(ModelCache(TangoScoreDatabase()))
    fingerprint = f"racy-fixture-{seed}"
    model = InferredSwitchModel(name="racy-a")

    def store_a() -> None:
        sanitizer.set_owner("racy-a")
        cache.store(fingerprint, model, origin="racy-a", recorded_at_ms=5.0)

    def lookup_b() -> None:
        sanitizer.set_owner("racy-b")
        cache.lookup(fingerprint)

    # The race: store and lookup land at t=5.0 from independent root
    # schedules — no happens-before edge, outcome decided by sequence.
    sim.schedule_at(5.0, store_a)
    sim.schedule_at(5.0, lookup_b)

    # The safe twin at t=9.0: the store's own event schedules the
    # same-instant lookup, so provenance orders them (no finding).
    safe_fingerprint = f"safe-fixture-{seed}"

    def safe_lookup() -> None:
        sanitizer.set_owner("safe-b")
        cache.lookup(safe_fingerprint)

    def safe_store() -> None:
        sanitizer.set_owner("safe-a")
        cache.store(safe_fingerprint, model, origin="safe-a", recorded_at_ms=9.0)
        sim.call_soon(safe_lookup)

    sim.schedule_at(9.0, safe_store)
    sim.run()
    return sanitizer.check()


def verify_noop_sanitize(seed: int = 0) -> Dict[str, Any]:
    """Assert a sanitized fleet run is bit-identical to a bare one.

    Mirrors ``repro.faults.verify_noop_injection`` and
    ``repro.perf.harness.verify_noop_instrumentation``: runs a small
    two-profile fleet twice — bare, then under a live
    :class:`RaceSanitizer` — and requires identical fleet summaries,
    per-member models, and per-switch TangoDB records (keys, timestamps,
    provenance).  Raises :class:`AssertionError` on any divergence;
    returns the comparison payload.
    """
    from repro.core.fleet import FleetInferenceEngine, build_fleet
    from repro.switches.profiles import make_cache_test_profile
    from repro.tables.policies import FIFO, LRU

    knobs = {"size_probe_max_rules": 128, "latency_batch_sizes": (20, 60)}
    profiles = [
        make_cache_test_profile(
            FIFO, layer_sizes=(48, None), layer_means_ms=(0.5, 4.5), name="noop-a"
        ),
        make_cache_test_profile(
            LRU, layer_sizes=(32, None), layer_means_ms=(0.6, 5.0), name="noop-b"
        ),
    ]

    def run(sanitizer: Optional[RaceSanitizer]):
        members = build_fleet(profiles, 4)
        scores = TangoScoreDatabase()
        engine = FleetInferenceEngine(
            members, scores=scores, seed=seed, sanitizer=sanitizer, **knobs
        )
        result = engine.infer_fleet(include_policy=False)
        records = {
            switch: [
                (r.key, r.recorded_at_ms, r.source)
                for r in scores.records_for_switch(switch)
            ]
            for switch in scores.switches()
        }
        models = {name: m.to_dict() for name, m in result.models.items()}
        return result.summary(), models, records

    bare_summary, bare_models, bare_records = run(None)
    sanitizer = RaceSanitizer()
    san_summary, san_models, san_records = run(sanitizer)

    assert san_summary == bare_summary, "sanitizer changed the fleet summary"
    assert san_models == bare_models, "sanitizer changed an inferred model"
    assert san_records == bare_records, "sanitizer changed TangoDB records"
    races = sanitizer.check()
    return {
        "summary": bare_summary,
        "accesses": races.accesses,
        "events": races.events,
        "findings": len(races.findings),
    }


__all__ = [
    "Access",
    "AccessKind",
    "AccessLog",
    "RaceCheckResult",
    "RaceSanitizer",
    "SanitizedMetricsRegistry",
    "SanitizedModelCache",
    "SanitizedScoreDatabase",
    "check_races",
    "db_location",
    "metric_location",
    "run_racy_fixture",
    "sanitized_fleet_run",
    "verify_noop_sanitize",
]
