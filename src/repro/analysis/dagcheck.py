"""Static verification of switch-request DAGs before scheduling.

The scheduler will happily consume any :class:`~repro.core.requests.RequestDag`
an application hands it; this checker catches plans that can never
execute correctly, *before* the first ``flow_mod`` leaves the controller:

* **TNG010 dependency cycle** — the dependency graph is not acyclic, so
  the scheduler would deadlock ("DAG not done but no independent
  requests").
* **TNG011 orphan barrier** — a DELETE that other requests wait on (a
  barrier in the negation idiom) whose match selects nothing any ADD in
  the DAG installs and nothing listed as pre-existing: the gate is
  vacuous and probably a stale plan fragment.
* **TNG012 deadline infeasible** — a request's ``install_by`` deadline
  is earlier than two scheduler-independent lower bounds on its finish
  time derived from a duration estimator (Tango latency curves): its
  dependency-chain length, and the serial work any single switch must
  complete by each of its deadlines (EDF feasibility).
* **TNG013 guard-time violation** — under
  :class:`~repro.core.scheduler.ConcurrentTangoScheduler` semantics, a
  dependent request whose estimated duration exceeds its dependency's
  duration plus the guard would be released *before its dependency even
  starts*; the weak-consistency guarantee then rests entirely on the
  accuracy of the estimates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.core.requests import RequestDag, SwitchRequest
from repro.core.scheduler import DurationEstimator
from repro.openflow.messages import FlowModCommand


def check_dag(
    dag: RequestDag,
    estimate: Optional[DurationEstimator] = None,
    guard_ms: Optional[float] = None,
    existing: Sequence[Tuple] = (),
    report: Optional[DiagnosticReport] = None,
) -> DiagnosticReport:
    """Run every DAG check that the supplied knowledge enables.

    Args:
        dag: the request DAG about to be scheduled.
        estimate: optional per-request duration estimator (ms); enables
            the TNG012 deadline-feasibility bounds.
        guard_ms: optional concurrent-dispatch guard interval; enables
            the TNG013 early-release check (needs ``estimate`` too).
        existing: ``(location, match, priority)`` triples of rules
            already resident in the network, consulted by the orphan-
            barrier check.
        report: optional report to append to.
    """
    report = report if report is not None else DiagnosticReport()
    acyclic = _check_cycles(dag, report)
    _check_orphan_barriers(dag, existing, report)
    if estimate is not None and acyclic:
        _check_deadlines(dag, estimate, report)
        if guard_ms is not None:
            _check_guard_times(dag, estimate, guard_ms, report)
    return report


# -- TNG010 ------------------------------------------------------------------
def _check_cycles(dag: RequestDag, report: DiagnosticReport) -> bool:
    if dag.is_acyclic():
        return True
    members = dag.find_cycle_ids()
    path = " -> ".join(str(m) for m in members + members[:1])
    report.add(
        "TNG010",
        Severity.ERROR,
        f"dependency cycle over requests {path}; the scheduler can never "
        "release them",
        location=f"requests {', '.join(str(m) for m in members)}",
        hint="break the loop (e.g. split the update into two rounds)",
    )
    return False


# -- TNG011 ------------------------------------------------------------------
def _check_orphan_barriers(
    dag: RequestDag, existing: Sequence[Tuple], report: DiagnosticReport
) -> None:
    adds_by_location: Dict[str, List[SwitchRequest]] = {}
    for request in dag.requests:
        if request.command is FlowModCommand.ADD:
            adds_by_location.setdefault(request.location, []).append(request)

    existing_by_location: Dict[str, List[Tuple]] = {}
    for location, match, priority in existing:
        existing_by_location.setdefault(location, []).append((match, priority))

    for request in dag.requests:
        if request.command is not FlowModCommand.DELETE:
            continue
        if not dag.successor_ids(request.request_id):
            continue
        selects_add = any(
            add.priority == request.priority and request.match.covers(add.match)
            for add in adds_by_location.get(request.location, ())
        )
        selects_existing = any(
            priority == request.priority and request.match.covers(match)
            for match, priority in existing_by_location.get(request.location, ())
        )
        if not (selects_add or selects_existing):
            dependents = sorted(dag.successor_ids(request.request_id))
            report.add(
                "TNG011",
                Severity.WARNING,
                f"request {request.request_id} gates requests "
                f"{dependents} but DELETEs a rule (priority "
                f"{request.priority}) that nothing in the DAG installs",
                location=request.location,
                hint="add the barrier's ADD to the DAG, or list the rule "
                "in existing= if it is already on the switch",
            )


# -- TNG012 ------------------------------------------------------------------
def _check_deadlines(
    dag: RequestDag, estimate: DurationEstimator, report: DiagnosticReport
) -> None:
    requests = {r.request_id: r for r in dag.requests}
    durations = {rid: max(0.0, estimate(r)) for rid, r in requests.items()}

    # Bound 1: dependency-chain critical path.  Every request must wait
    # for its whole ancestor chain, whatever the scheduler does.
    earliest_finish: Dict[int, float] = {}
    for rid in dag.topological_order():
        dep_bound = max(
            (earliest_finish[p] for p in dag.predecessor_ids(rid)), default=0.0
        )
        earliest_finish[rid] = dep_bound + durations[rid]

    for rid, request in requests.items():
        deadline = request.install_by_ms
        if deadline is not None and earliest_finish[rid] > deadline:
            report.add(
                "TNG012",
                Severity.ERROR,
                f"request {rid} has install_by={deadline:g} ms but its "
                f"dependency chain alone needs "
                f"{earliest_finish[rid]:g} ms",
                location=request.location,
                hint="relax the deadline or shorten the dependency chain",
            )

    # Bound 2: per-switch EDF feasibility.  All requests on one switch
    # serialise, so the work due by each deadline must fit before it.
    by_location: Dict[str, List[SwitchRequest]] = {}
    for request in requests.values():
        by_location.setdefault(request.location, []).append(request)
    for location, switch_requests in sorted(by_location.items()):
        dated = sorted(
            (r for r in switch_requests if r.install_by_ms is not None),
            key=lambda r: (r.install_by_ms, r.request_id),
        )
        cumulative = 0.0
        for request in dated:
            cumulative += durations[request.request_id]
            deadline = request.install_by_ms
            assert deadline is not None
            if cumulative > deadline and earliest_finish[
                request.request_id
            ] <= deadline:
                report.add(
                    "TNG012",
                    Severity.ERROR,
                    f"switch must finish {cumulative:g} ms of estimated "
                    f"work by request {request.request_id}'s deadline "
                    f"({deadline:g} ms); requests due earlier already "
                    "oversubscribe it",
                    location=location,
                    hint="spread the deadlines or move requests to "
                    "another switch",
                )


# -- TNG013 ------------------------------------------------------------------
def _check_guard_times(
    dag: RequestDag,
    estimate: DurationEstimator,
    guard_ms: float,
    report: DiagnosticReport,
) -> None:
    requests = {r.request_id: r for r in dag.requests}
    for first_id, then_id in sorted(dag.edge_ids()):
        first, then = requests[first_id], requests[then_id]
        if first.location == then.location:
            continue  # the switch itself serialises same-switch requests
        first_ms = max(0.0, estimate(first))
        then_ms = max(0.0, estimate(then))
        if then_ms > first_ms + guard_ms:
            report.add(
                "TNG013",
                Severity.WARNING,
                f"request {then_id} (est {then_ms:g} ms) depends on "
                f"request {first_id} (est {first_ms:g} ms); with guard "
                f"{guard_ms:g} ms it would be released "
                f"{then_ms - first_ms - guard_ms:g} ms before its "
                "dependency starts",
                location=then.location,
                hint="raise guard_ms or fall back to barrier dispatch for "
                "this edge",
            )
