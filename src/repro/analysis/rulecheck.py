"""Static rule-set verification: duplicates, shadowing, ambiguous overlap.

Tango cannot trust a switch to reject a bad rule set — many silently
accept duplicates or install shadowed rules that never match (the paper's
premise is exactly that switches diverge from their self-reports).  This
checker runs the classic pairwise analyses over a batch of
:class:`~repro.openflow.messages.FlowMod` operations *before* anything
is issued, using the reproduction's own :class:`~repro.openflow.match.Match`
overlap/cover semantics:

* **TNG001 duplicate** — two ADDs with the same match and priority but
  different actions: the switch's tie-break decides which wins.
* **TNG002 shadowed** — an ADD whose match is fully covered by a
  strictly-higher-priority ADD in the same batch: dead rule, wasted TCAM.
* **TNG003 ambiguous overlap** — two same-priority ADDs whose matches
  overlap (without being identical) and whose actions differ: packet
  fate depends on unspecified switch behaviour.
* **TNG004 dangling operation** — a MODIFY/DELETE that selects no rule
  among the batch's ADDs or the supplied pre-existing rules.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand

#: A rule already resident on the switch: (match, priority).
ExistingRule = Tuple[Match, int]

_PAIRWISE_DEFAULT_LIMIT = 5000


def _selects(operation: FlowMod, match: Match, priority: int) -> bool:
    """OpenFlow MODIFY/DELETE selection: the operation's match covers the
    rule's match (non-strict semantics) at the same priority."""
    return operation.priority == priority and operation.match.covers(match)


def check_rules(
    flow_mods: Sequence[FlowMod],
    existing: Sequence[Tuple] = (),
    report: Optional[DiagnosticReport] = None,
    location: str = "",
    pairwise_limit: int = _PAIRWISE_DEFAULT_LIMIT,
) -> DiagnosticReport:
    """Statically verify one switch's batch of flow-table operations.

    Args:
        flow_mods: the batch, in issue order.
        existing: ``(match, priority)`` pairs already installed on the
            switch (lets TNG004 account for resident rules).
        report: optional report to append to (a fresh one is created
            otherwise).
        location: switch name recorded on every diagnostic.
        pairwise_limit: above this many ADDs the O(n^2) pairwise checks
            (TNG001-TNG003) are skipped; TNG004 still runs.

    Returns:
        The report with any findings appended.
    """
    report = report if report is not None else DiagnosticReport()
    adds: List[Tuple[int, FlowMod]] = [
        (index, fm)
        for index, fm in enumerate(flow_mods)
        if fm.command is FlowModCommand.ADD
    ]

    if len(adds) <= pairwise_limit:
        _check_pairwise(adds, report, location)

    _check_dangling(flow_mods, existing, report, location)
    return report


def _check_pairwise(
    adds: Sequence[Tuple[int, FlowMod]], report: DiagnosticReport, location: str
) -> None:
    for a_pos, (a_index, a) in enumerate(adds):
        for b_index, b in adds[a_pos + 1 :]:
            same_match = a.match.key() == b.match.key()
            if same_match and a.priority == b.priority:
                if a.actions != b.actions:
                    report.add(
                        "TNG001",
                        Severity.ERROR,
                        f"ADD #{b_index} duplicates ADD #{a_index} "
                        f"(match {a.match.key()}, priority {a.priority}) "
                        "with different actions",
                        location=location,
                        hint="drop one rule or give them distinct priorities",
                    )
                continue
            if not a.match.overlaps(b.match):
                continue
            high, low = (a, b) if a.priority > b.priority else (b, a)
            high_index, low_index = (
                (a_index, b_index) if a.priority > b.priority else (b_index, a_index)
            )
            if high.priority != low.priority and high.match.covers(low.match):
                report.add(
                    "TNG002",
                    Severity.ERROR,
                    f"ADD #{low_index} (priority {low.priority}) is fully "
                    f"shadowed by ADD #{high_index} (priority {high.priority})",
                    location=location,
                    hint="remove the dead rule or raise its priority above "
                    "the covering rule",
                )
            elif a.priority == b.priority and a.actions != b.actions:
                report.add(
                    "TNG003",
                    Severity.WARNING,
                    f"ADD #{a_index} and ADD #{b_index} overlap at equal "
                    f"priority {a.priority} with different actions",
                    location=location,
                    hint="separate the priorities so the intended rule wins",
                )


def _check_dangling(
    flow_mods: Sequence[FlowMod],
    existing: Sequence[Tuple],
    report: DiagnosticReport,
    location: str,
) -> None:
    resident: List[Tuple] = [(match, priority) for match, priority in existing]
    for index, operation in enumerate(flow_mods):
        if operation.command is FlowModCommand.ADD:
            resident.append((operation.match, operation.priority))
            continue
        selected = any(
            _selects(operation, match, priority) for match, priority in resident
        )
        if not selected:
            report.add(
                "TNG004",
                Severity.WARNING,
                f"{operation.command.value.upper()} #{index} "
                f"(priority {operation.priority}) selects no rule installed "
                "by this batch or listed as pre-existing",
                location=location,
                hint="issue the ADD first, or pass the switch's resident "
                "rules via existing=",
            )
        if operation.command is FlowModCommand.DELETE:
            resident = [
                (match, priority)
                for match, priority in resident
                if not _selects(operation, match, priority)
            ]
