"""Pre-execution static verification for Tango control plans.

The package provides four checkers sharing one diagnostic model
(:mod:`repro.analysis.diagnostics`):

* :mod:`repro.analysis.rulecheck` — rule-set overlap/shadowing (TNG00x)
* :mod:`repro.analysis.dagcheck` — request-DAG validity (TNG01x)
* :mod:`repro.analysis.capacity` — TCAM admission control (TNG02x)
* :mod:`repro.analysis.lint` — source determinism linter (TNG03x)

:func:`analyze_dag` bundles the plan-facing checks (DAG + rules +
capacity) into the single call the strict scheduler mode and the CLI
use.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.capacity import (
    batch_slot_demand,
    check_capacity,
    check_dag_capacity,
    check_layer_fit,
    group_by_location,
)
from repro.analysis.dagcheck import check_dag
from repro.analysis.diagnostics import (
    CODE_CATALOG,
    Diagnostic,
    DiagnosticError,
    DiagnosticReport,
    Severity,
)
from repro.analysis.rulecheck import check_rules

__all__ = [
    "CODE_CATALOG",
    "Diagnostic",
    "DiagnosticError",
    "DiagnosticReport",
    "Severity",
    "analyze_dag",
    "batch_slot_demand",
    "check_capacity",
    "check_dag",
    "check_dag_capacity",
    "check_layer_fit",
    "check_rules",
    "group_by_location",
    "lint_paths",
    "lint_source",
]


def __getattr__(name: str):
    # Imported lazily so ``python -m repro.analysis.lint`` does not
    # trigger runpy's double-import warning.
    if name in ("lint_paths", "lint_source"):
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def analyze_dag(
    dag,
    estimate=None,
    guard_ms: Optional[float] = None,
    geometries: Optional[Dict[str, object]] = None,
    existing: Sequence[Tuple] = (),
    report: Optional[DiagnosticReport] = None,
) -> DiagnosticReport:
    """Run every plan-facing static check a request DAG supports.

    Always validates the DAG structure (cycles, orphan barriers) and the
    per-switch rule batches (duplicates, shadowing, dangling operations).
    With a duration ``estimate`` it also bounds deadline feasibility;
    with ``guard_ms`` it checks concurrent-dispatch guard times; with
    per-switch ``geometries`` it performs capacity admission.

    Args:
        dag: a :class:`~repro.core.requests.RequestDag`.
        estimate: optional per-request duration estimator (ms).
        guard_ms: optional concurrent-dispatch guard interval (ms).
        geometries: optional ``{switch_name: TcamGeometry}``.
        existing: ``(location, match, priority)`` triples of resident
            rules, consulted by the orphan-barrier and dangling-op
            checks.
        report: optional report to append to.
    """
    report = report if report is not None else DiagnosticReport()
    check_dag(
        dag, estimate=estimate, guard_ms=guard_ms, existing=existing, report=report
    )
    existing_by_location: Dict[str, list] = {}
    for location, match, priority in existing:
        existing_by_location.setdefault(location, []).append((match, priority))
    for location, batch in sorted(group_by_location(dag.requests).items()):
        check_rules(
            batch,
            existing=existing_by_location.get(location, ()),
            report=report,
            location=location,
        )
    if geometries:
        check_dag_capacity(dag, geometries, report=report)
    return report
