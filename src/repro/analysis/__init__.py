"""Pre-execution static verification for Tango control plans.

The package provides five checkers sharing one diagnostic model
(:mod:`repro.analysis.diagnostics`):

* :mod:`repro.analysis.rulecheck` — rule-set overlap/shadowing (TNG00x)
* :mod:`repro.analysis.dagcheck` — request-DAG validity (TNG01x)
* :mod:`repro.analysis.capacity` — TCAM admission control (TNG02x)
* :mod:`repro.analysis.lint` — source determinism + shard-safety linter
  (TNG03x, TNG041–TNG043)
* :mod:`repro.analysis.racecheck` — virtual-time tie-break race detector
  and determinism sanitizer (TNG040)

:func:`analyze_dag` bundles the plan-facing checks (DAG + rules +
capacity) into the single call the strict scheduler mode and the CLI
use.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.capacity import (
    batch_slot_demand,
    check_capacity,
    check_dag_capacity,
    check_layer_fit,
    group_by_location,
)
from repro.analysis.dagcheck import check_dag
from repro.analysis.diagnostics import (
    CODE_CATALOG,
    Diagnostic,
    DiagnosticError,
    DiagnosticReport,
    Severity,
)
from repro.analysis.rulecheck import check_rules

__all__ = [
    "CODE_CATALOG",
    "Diagnostic",
    "DiagnosticError",
    "DiagnosticReport",
    "Severity",
    "analyze_dag",
    "batch_slot_demand",
    "check_capacity",
    "check_dag",
    "check_dag_capacity",
    "check_layer_fit",
    "check_rules",
    "group_by_location",
    "lint_paths",
    "lint_source",
    "RaceSanitizer",
    "check_races",
    "run_racy_fixture",
    "sanitized_fleet_run",
    "verify_noop_sanitize",
]

#: Lazily imported names -> providing submodule.  Lint is lazy so
#: ``python -m repro.analysis.lint`` does not trigger runpy's
#: double-import warning; racecheck is lazy because it pulls in
#: :mod:`repro.core` (fleet, scores), which this package must not import
#: eagerly.
_LAZY = {
    "lint_paths": "lint",
    "lint_source": "lint",
    "RaceSanitizer": "racecheck",
    "check_races": "racecheck",
    "run_racy_fixture": "racecheck",
    "sanitized_fleet_run": "racecheck",
    "verify_noop_sanitize": "racecheck",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is not None:
        import importlib

        return getattr(importlib.import_module(f"repro.analysis.{module}"), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def analyze_dag(
    dag,
    estimate=None,
    guard_ms: Optional[float] = None,
    geometries: Optional[Dict[str, object]] = None,
    existing: Sequence[Tuple] = (),
    report: Optional[DiagnosticReport] = None,
) -> DiagnosticReport:
    """Run every plan-facing static check a request DAG supports.

    Always validates the DAG structure (cycles, orphan barriers) and the
    per-switch rule batches (duplicates, shadowing, dangling operations).
    With a duration ``estimate`` it also bounds deadline feasibility;
    with ``guard_ms`` it checks concurrent-dispatch guard times; with
    per-switch ``geometries`` it performs capacity admission.

    Args:
        dag: a :class:`~repro.core.requests.RequestDag`.
        estimate: optional per-request duration estimator (ms).
        guard_ms: optional concurrent-dispatch guard interval (ms).
        geometries: optional ``{switch_name: TcamGeometry}``.
        existing: ``(location, match, priority)`` triples of resident
            rules, consulted by the orphan-barrier and dangling-op
            checks.
        report: optional report to append to.
    """
    report = report if report is not None else DiagnosticReport()
    check_dag(
        dag, estimate=estimate, guard_ms=guard_ms, existing=existing, report=report
    )
    existing_by_location: Dict[str, list] = {}
    for location, match, priority in existing:
        existing_by_location.setdefault(location, []).append((match, priority))
    for location, batch in sorted(group_by_location(dag.requests).items()):
        check_rules(
            batch,
            existing=existing_by_location.get(location, ()),
            report=report,
            location=location,
        )
    if geometries:
        check_dag_capacity(dag, geometries, report=report)
    return report
