"""The unified diagnostic model for Tango's static checkers.

Every pre-execution checker in :mod:`repro.analysis` reports problems as
:class:`Diagnostic` records carrying a stable ``TNG0xx`` code, a
severity, a human-readable message, a location (a switch name, a request
id, or a ``file:line``), and an optional fix hint.  Checkers append
their findings to a shared :class:`DiagnosticReport`, which callers
render, filter, or — in strict scheduler mode — turn into a
:class:`DiagnosticError`.

Code ranges (one block per checker):

* ``TNG00x`` — rule-set checks (:mod:`repro.analysis.rulecheck`)
* ``TNG01x`` — request-DAG checks (:mod:`repro.analysis.dagcheck`)
* ``TNG02x`` — capacity admission checks (:mod:`repro.analysis.capacity`)
* ``TNG03x`` — determinism linter (:mod:`repro.analysis.lint`)
* ``TNG04x`` — race detector + shard-safety lint rules
  (:mod:`repro.analysis.racecheck`, :mod:`repro.analysis.lint`)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ERROR diagnostics abort strict scheduling and fail ``tango-lint``;
    WARNING and INFO are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: Registry of every diagnostic code with a one-line summary.  Kept in
#: one place so reports, docs, and tests agree on the catalogue.
CODE_CATALOG: Dict[str, str] = {
    # rulecheck ------------------------------------------------------------
    "TNG001": "duplicate rule: same match and priority with conflicting actions",
    "TNG002": "shadowed rule: a higher-priority rule fully covers this match",
    "TNG003": "ambiguous overlap: same-priority rules overlap with different actions",
    "TNG004": "dangling operation: MODIFY/DELETE targets no known rule",
    # dagcheck -------------------------------------------------------------
    "TNG010": "dependency cycle in the request DAG",
    "TNG011": "orphan barrier: a gating DELETE matches nothing the DAG installs",
    "TNG012": "deadline infeasible: no schedule can meet this install_by deadline",
    "TNG013": "guard-time violation: concurrent dispatch would release a request "
    "before its dependency starts",
    # capacity -------------------------------------------------------------
    "TNG020": "over capacity: the batch does not fit the TCAM geometry",
    "TNG021": "unstorable entry: match kind unsupported by the TCAM mode",
    "TNG022": "high water: batch drives TCAM occupancy above the safe fraction",
    "TNG023": "layer spill: batch overflows the fast table into software layers",
    # lint -----------------------------------------------------------------
    "TNG030": "wall clock: time/datetime call outside the simulation substrate",
    "TNG031": "unseeded randomness outside sim/rng.py",
    "TNG032": "unordered iteration over a set feeding deterministic code",
    "TNG033": "mutable default argument",
    "TNG034": "unparseable source: the file is not valid Python",
    "TNG035": "swallowed exception: bare/broad except handler without a raise",
    # racecheck + shard-safety lint ----------------------------------------
    "TNG040": "tie-break race: conflicting same-virtual-time accesses with no "
    "happens-before edge",
    "TNG041": "module-level mutable state in simulator/core code",
    "TNG042": "shared module state mutated inside a resumable generator, "
    "bypassing the event queue",
    "TNG043": "object-identity ordering: id() used as a sort key or in an "
    "ordering comparison",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a static checker.

    Args:
        code: stable ``TNG0xx`` identifier (see :data:`CODE_CATALOG`).
        severity: ERROR, WARNING, or INFO.
        message: human-readable description of this specific finding.
        location: where it was found — a switch name, ``request <id>``,
            or ``path:line`` for lint findings.
        hint: optional suggestion for fixing the problem.
        trace: optional supporting evidence, one line per entry — the
            race detector (TNG040) attaches the full ``(time, sequence,
            owner, operation)`` access trace of the racy location here.
    """

    code: str
    severity: Severity
    message: str
    location: str = ""
    hint: Optional[str] = None
    trace: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.code not in CODE_CATALOG:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def format(self) -> str:
        """One-line rendering: ``TNG002 error @ s1: message (hint: ...)``."""
        where = f" @ {self.location}" if self.location else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.code} {self.severity.value}{where}: {self.message}{hint}"

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by reports and the CLI)."""
        payload: dict = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.location:
            payload["location"] = self.location
        if self.hint:
            payload["hint"] = self.hint
        if self.trace:
            payload["trace"] = list(self.trace)
        return payload


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics from one or more checkers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        location: str = "",
        hint: Optional[str] = None,
        trace: Tuple[str, ...] = (),
    ) -> Diagnostic:
        """Create, record, and return one diagnostic."""
        diagnostic = Diagnostic(
            code=code,
            severity=severity,
            message=message,
            location=location,
            hint=hint,
            trace=tuple(trace),
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(other)

    # -- filters ------------------------------------------------------------
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    # -- rendering ----------------------------------------------------------
    def format(self) -> str:
        """Multi-line rendering, errors first, stable within severity."""
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        ranked = sorted(
            enumerate(self.diagnostics), key=lambda p: (order[p[1].severity], p[0])
        )
        return "\n".join(d.format() for _, d in ranked)

    def to_dicts(self) -> List[dict]:
        return [d.to_dict() for d in self.diagnostics]

    def raise_on_errors(self) -> None:
        """Raise :class:`DiagnosticError` if any ERROR diagnostic exists."""
        if self.has_errors:
            raise DiagnosticError(self)


class DiagnosticError(RuntimeError):
    """Raised by strict-mode consumers when a report contains errors."""

    def __init__(self, report: DiagnosticReport) -> None:
        self.report = report
        errors = report.errors()
        summary = "; ".join(d.format() for d in errors[:3])
        if len(errors) > 3:
            summary += f"; ... ({len(errors) - 3} more)"
        super().__init__(f"{len(errors)} static-analysis error(s): {summary}")
