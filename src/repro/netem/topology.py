"""Network topologies.

Includes the three-switch triangle of the paper's hardware testbed
(Section 7.2) and Google's B4 inter-datacenter backbone topology [B4,
SIGCOMM'13] used for the Mininet evaluation (Figure 12).
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx


class Topology:
    """An undirected switch topology with link capacities.

    Args:
        name: topology label.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph = nx.Graph()

    def add_switch(self, switch_name: str) -> None:
        self.graph.add_node(switch_name)

    def add_link(
        self, a: str, b: str, capacity: float = 10.0, latency_ms: float = 0.05
    ) -> None:
        """Add a bidirectional link with capacity (Gbps) and propagation
        latency (ms)."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
        self.graph.add_edge(a, b, capacity=capacity, latency_ms=latency_ms)

    def remove_link(self, a: str, b: str) -> None:
        self.graph.remove_edge(a, b)

    @property
    def switches(self) -> List[str]:
        return list(self.graph.nodes)

    @property
    def links(self) -> List[Tuple[str, str]]:
        return list(self.graph.edges)

    def capacity(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["capacity"]

    def link_latency_ms(self, a: str, b: str) -> float:
        return self.graph.edges[a, b].get("latency_ms", 0.0)

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Hop-count shortest path (deterministic tie-break by node name)."""
        paths = nx.all_shortest_paths(self.graph, src, dst)
        return min(paths)

    def k_shortest_paths(self, src: str, dst: str, k: int = 3) -> List[List[str]]:
        """Up to ``k`` loop-free shortest paths, shortest first."""
        generator = nx.shortest_simple_paths(self.graph, src, dst)
        paths = []
        for path in generator:
            paths.append(path)
            if len(paths) >= k:
                break
        return paths

    def copy(self) -> "Topology":
        clone = Topology(self.name)
        clone.graph = self.graph.copy()
        return clone


def triangle_topology(names: Tuple[str, str, str] = ("s1", "s2", "s3")) -> Topology:
    """The paper's three-switch full-mesh hardware testbed."""
    topology = Topology("triangle")
    for name in names:
        topology.add_switch(name)
    topology.add_link(names[0], names[1])
    topology.add_link(names[1], names[2])
    topology.add_link(names[0], names[2])
    return topology


#: The 12 sites and 19 links of Google's B4 backbone (SIGCOMM'13, Fig. 1).
_B4_LINKS: Tuple[Tuple[int, int], ...] = (
    (1, 2),
    (1, 3),
    (2, 3),
    (3, 4),
    (4, 5),
    (4, 6),
    (5, 6),
    (5, 7),
    (6, 8),
    (7, 8),
    (7, 9),
    (8, 10),
    (9, 10),
    (9, 11),
    (10, 12),
    (11, 12),
    (2, 5),
    (3, 6),
    (6, 9),
)


def b4_topology(capacity: float = 10.0, link_latency_ms: float = 10.0) -> Topology:
    """Google's B4 inter-datacenter WAN topology (12 nodes, 19 links).

    Inter-datacenter links default to a WAN-scale 10 ms propagation delay.
    """
    topology = Topology("b4")
    for index in range(1, 13):
        topology.add_switch(f"b4-{index:02d}")
    for a, b in _B4_LINKS:
        topology.add_link(
            f"b4-{a:02d}", f"b4-{b:02d}", capacity=capacity, latency_ms=link_latency_ms
        )
    return topology
