"""Consistent-update ordering.

The paper's network-wide experiments "ensure that the flow updates are
conducted in reverse order across the source-destination paths to ensure
update consistency" [Reitblatt et al.]: a flow's rule at the egress
switch is installed first and the ingress switch last, so no packet is
ever forwarded onto a hop that cannot yet handle it.  Removals drain in
the forward direction (ingress first).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.requests import RequestDag, SwitchRequest


def add_reverse_path_dependencies(
    dag: RequestDag, path_requests: Sequence[SwitchRequest]
) -> None:
    """Chain install requests from egress back to ingress.

    Args:
        dag: the DAG the requests belong to.
        path_requests: requests ordered from *ingress to egress*; the
            resulting dependencies force egress-first completion.
    """
    ordered = list(path_requests)
    for upstream, downstream in zip(ordered, ordered[1:]):
        # The downstream (closer to egress) request must finish first.
        dag.add_dependency(downstream, upstream)


def add_forward_path_dependencies(
    dag: RequestDag, path_requests: Sequence[SwitchRequest]
) -> None:
    """Chain removal requests from ingress towards egress (drain order)."""
    ordered = list(path_requests)
    for upstream, downstream in zip(ordered, ordered[1:]):
        dag.add_dependency(upstream, downstream)
