"""Max-min fair bandwidth allocation (the B4 TE algorithm's core).

Google's B4 allocates bandwidth to flow groups with progressive filling:
all demands grow at the same rate until a link saturates; flows crossing
a saturated link are frozen at their current allocation; the rest keep
growing.  The paper's Figure 12 scenario drives rule updates from the
allocation changes a traffic-matrix shift produces.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.netem.flows import NetworkFlow
from repro.netem.topology import Topology


def max_min_fair_allocation(
    topology: Topology,
    flows: Sequence[NetworkFlow],
    epsilon: float = 1e-9,
) -> Dict[int, float]:
    """Water-filling max-min fair rates for path-pinned flows.

    Args:
        topology: provides link capacities.
        flows: flows with fixed paths and (maximum) demands.

    Returns:
        Mapping of flow id to allocated rate; each flow receives at most
        its demand, and no flow can increase without decreasing a flow
        with an equal-or-smaller allocation.
    """
    remaining: Dict[Tuple[str, str], float] = {
        tuple(sorted(link)): topology.capacity(*link) for link in topology.links
    }
    link_flows: Dict[Tuple[str, str], List[NetworkFlow]] = {
        link: [] for link in remaining
    }
    for flow in flows:
        for link in flow.links():
            if link not in remaining:
                raise ValueError(f"flow {flow.flow_id} uses unknown link {link}")
            link_flows[link].append(flow)

    allocation: Dict[int, float] = {flow.flow_id: 0.0 for flow in flows}
    active = {flow.flow_id: flow for flow in flows}

    while active:
        # The next event: a flow hitting its demand, or a link saturating.
        increments = []
        for link, capacity_left in remaining.items():
            users = [f for f in link_flows[link] if f.flow_id in active]
            if users:
                increments.append(capacity_left / len(users))
        demand_gaps = [
            flow.demand - allocation[fid] for fid, flow in active.items()
        ]
        step = min(increments + demand_gaps) if increments else min(demand_gaps)
        if step < 0:
            step = 0.0

        for fid in list(active):
            allocation[fid] += step
        for link in remaining:
            users = [f for f in link_flows[link] if f.flow_id in active]
            remaining[link] -= step * len(users)

        # Freeze satisfied flows and flows on saturated links.
        for fid, flow in list(active.items()):
            if allocation[fid] >= flow.demand - epsilon:
                del active[fid]
        for link, capacity_left in remaining.items():
            if capacity_left <= epsilon:
                for flow in link_flows[link]:
                    active.pop(flow.flow_id, None)
        if step <= epsilon and active:
            # No progress possible (all remaining flows blocked).
            break
    return allocation
