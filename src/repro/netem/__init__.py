"""Network emulation substrate (the paper's Mininet + hardware testbed).

Provides topologies (including Google's B4 backbone), an emulated
network binding simulated switches to topology nodes, end-to-end flows
routed over paths, and scenario generators that turn network events
(link failure, traffic-matrix changes) into switch-request DAGs with
consistent-update ordering.
"""

from repro.netem.topology import Topology, b4_topology, triangle_topology
from repro.netem.flows import NetworkFlow
from repro.netem.network import EmulatedNetwork
from repro.netem.consistency import add_reverse_path_dependencies
from repro.netem.scenarios import (
    LinkFailureScenario,
    TrafficEngineeringScenario,
    ScenarioResultDag,
)
from repro.netem.temaxmin import max_min_fair_allocation
from repro.netem.tracing import TraceOutcome, TraceResult, trace_packet
from repro.netem.audit import (
    AuditProbe,
    AuditReport,
    AuditingExecutor,
    ConsistencyViolation,
    probes_for_flows,
)

__all__ = [
    "Topology",
    "b4_topology",
    "triangle_topology",
    "NetworkFlow",
    "EmulatedNetwork",
    "add_reverse_path_dependencies",
    "LinkFailureScenario",
    "TrafficEngineeringScenario",
    "ScenarioResultDag",
    "max_min_fair_allocation",
    "TraceOutcome",
    "TraceResult",
    "trace_packet",
    "AuditProbe",
    "AuditReport",
    "AuditingExecutor",
    "ConsistencyViolation",
    "probes_for_flows",
]
