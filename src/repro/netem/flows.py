"""End-to-end network flows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.openflow.match import IpPrefix, Match


@dataclass
class NetworkFlow:
    """One end-to-end flow pinned to a path.

    Args:
        flow_id: unique id (also determines the flow's match).
        src: ingress switch name.
        dst: egress switch name.
        path: switch names from src to dst inclusive.
        demand: traffic demand (Gbps).
        priority: OpenFlow priority for the flow's rules.
    """

    flow_id: int
    src: str
    dst: str
    path: List[str]
    demand: float = 1.0
    priority: int = 100

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise ValueError("path must contain at least one switch")
        if self.path[0] != self.src or self.path[-1] != self.dst:
            raise ValueError("path endpoints must match src/dst")

    def match(self) -> Match:
        """The rule match identifying this flow (unique /32 destination)."""
        return Match(eth_type=0x0800, ip_dst=IpPrefix(0x0B00_0000 + self.flow_id, 32))

    def links(self) -> List[Tuple[str, str]]:
        """The (undirected) links the path traverses."""
        return [tuple(sorted((a, b))) for a, b in zip(self.path, self.path[1:])]
