"""The emulated network: switches bound to topology nodes.

This plays the role of the paper's Mininet setup and hardware testbed:
every topology node gets a simulated switch built from a vendor profile,
all reachable through one :class:`~repro.core.scheduler.NetworkExecutor`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.scheduler import NetworkExecutor
from repro.netem.flows import NetworkFlow
from repro.netem.topology import Topology
from repro.openflow.channel import ControlChannel
from repro.switches.base import SimulatedSwitch
from repro.switches.profiles import SwitchProfile


class EmulatedNetwork:
    """Simulated switches deployed on a topology.

    Each switch gets deterministic port numbers: port
    :attr:`LOCAL_PORT` delivers locally (the flow's egress), and each
    neighbour occupies one port starting at 2 (sorted by name), so
    installed forwarding rules can be *traced* hop by hop
    (:mod:`repro.netem.tracing`).

    Args:
        topology: the network topology.
        profiles: per-switch vendor profiles; ``default_profile`` fills
            any switch not listed.
        default_profile: profile for unlisted switches.
        seed: base seed; each switch derives its own stream.
    """

    #: Output port meaning "deliver at this switch" (flow egress).
    LOCAL_PORT = 1

    def __init__(
        self,
        topology: Topology,
        default_profile: SwitchProfile,
        profiles: Optional[Dict[str, SwitchProfile]] = None,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.seed = seed
        self.profiles: Dict[str, SwitchProfile] = {}
        self.switches: Dict[str, SimulatedSwitch] = {}
        self.channels: Dict[str, ControlChannel] = {}
        overrides = profiles or {}
        for index, name in enumerate(sorted(topology.switches)):
            profile = overrides.get(name, default_profile)
            switch = profile.build(seed=seed + index)
            switch.name = name
            self.profiles[name] = profile
            self.switches[name] = switch
            self.channels[name] = ControlChannel(switch)
        self.flows: Dict[int, NetworkFlow] = {}
        self._next_flow_id = 0
        self._ports: Dict[str, Dict[str, int]] = {}
        self._port_neighbors: Dict[str, Dict[int, str]] = {}
        for name in topology.switches:
            neighbors = sorted(topology.graph.neighbors(name))
            self._ports[name] = {
                neighbor: 2 + index for index, neighbor in enumerate(neighbors)
            }
            self._port_neighbors[name] = {
                port: neighbor for neighbor, port in self._ports[name].items()
            }

    # -- ports ----------------------------------------------------------------
    def port_to(self, switch: str, neighbor: str) -> int:
        """The output port on ``switch`` that reaches ``neighbor``."""
        try:
            return self._ports[switch][neighbor]
        except KeyError:
            raise KeyError(f"{switch!r} has no link to {neighbor!r}") from None

    def neighbor_on_port(self, switch: str, port: int) -> Optional[str]:
        """The switch behind ``port``, or None (local/unknown port)."""
        return self._port_neighbors.get(switch, {}).get(port)

    def port_along_path(self, path, switch: str) -> int:
        """The output port ``switch`` should use on ``path``."""
        path = list(path)
        index = path.index(switch)
        if index == len(path) - 1:
            return self.LOCAL_PORT
        return self.port_to(switch, path[index + 1])

    # -- flows --------------------------------------------------------------
    def new_flow(
        self, src: str, dst: str, demand: float = 1.0, priority: int = 100,
        path: Optional[List[str]] = None,
    ) -> NetworkFlow:
        """Create (and track) a flow routed on the shortest path."""
        if path is None:
            path = self.topology.shortest_path(src, dst)
        flow = NetworkFlow(
            flow_id=self._next_flow_id,
            src=src,
            dst=dst,
            path=path,
            demand=demand,
            priority=priority,
        )
        self._next_flow_id += 1
        self.flows[flow.flow_id] = flow
        return flow

    def forget_flow(self, flow_id: int) -> None:
        self.flows.pop(flow_id, None)

    def preinstall_flow_rules(
        self, flows: Optional[List[NetworkFlow]] = None
    ) -> int:
        """Install the tracked flows' rules on their paths (untimed setup).

        Returns the number of rules installed.  Scheduler experiments
        measure from the executor's epoch reset, so setup time here does
        not contaminate results.
        """
        from repro.openflow.actions import OutputAction
        from repro.openflow.messages import FlowMod, FlowModCommand

        installed = 0
        for flow in flows if flows is not None else list(self.flows.values()):
            for switch in flow.path:
                self.channels[switch].send_flow_mod(
                    FlowMod(
                        command=FlowModCommand.ADD,
                        match=flow.match(),
                        priority=flow.priority,
                        actions=(
                            OutputAction(port=self.port_along_path(flow.path, switch)),
                        ),
                    )
                )
                installed += 1
        return installed

    def executor(
        self,
        metrics=None,
        tracer=None,
        trace_requests: bool = False,
        fault_injector=None,
        telemetry=None,
    ) -> NetworkExecutor:
        """A network executor over every switch in the topology.

        Telemetry arguments are forwarded to
        :class:`~repro.core.scheduler.NetworkExecutor` unchanged.  With a
        ``fault_injector`` (:class:`repro.faults.FaultInjector`), the
        executor sees fault-wrapped channels while the network's own
        ``channels`` stay bare for untimed setup traffic.  A
        ``telemetry`` collector additionally starts watching every
        switch (and per-port flow counts) in this network.
        """
        if telemetry is not None and telemetry.enabled:
            telemetry.watch_network(self)
        return NetworkExecutor(
            self.channels,
            metrics=metrics,
            tracer=tracer,
            trace_requests=trace_requests,
            fault_injector=fault_injector,
            telemetry=telemetry,
        )

    def reset_rules(self) -> None:
        """Wipe all switch rule state (between scheduler comparisons)."""
        for switch in self.switches.values():
            switch.reset_rules()
