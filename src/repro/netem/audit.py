"""Transient-consistency auditing of rule-update schedules.

Per-packet consistency [Reitblatt et al.] demands that every packet is
processed entirely by the old configuration or entirely by the new one.
The network-wide experiments enforce it by installing a flow's rules
from the egress back to the ingress: until the ingress is repointed, the
old behaviour holds; the instant it is, the whole downstream path
already exists.

:class:`AuditingExecutor` verifies the property empirically: it wraps
the normal executor, and after every issued request traces a set of
audit packets through the live rule state.  A *violation* is a packet
the ingress forwards into the network that then fails to reach its
destination -- a transient black hole that a correctly ordered schedule
never exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.requests import SwitchRequest
from repro.core.scheduler import IssueRecord, NetworkExecutor
from repro.netem.network import EmulatedNetwork
from repro.netem.tracing import TraceOutcome, trace_packet
from repro.openflow.match import PacketFields


@dataclass(frozen=True)
class AuditProbe:
    """One packet whose delivery is checked after every request."""

    packet: PacketFields
    ingress: str
    expected_egress: str


@dataclass(frozen=True)
class ConsistencyViolation:
    """A probe that was forwarded but not delivered."""

    probe: AuditProbe
    after_request_id: int
    outcome: TraceOutcome
    reached: Tuple[str, ...]


@dataclass
class AuditReport:
    """All violations observed during one schedule."""

    violations: List[ConsistencyViolation] = field(default_factory=list)
    probes_traced: int = 0

    @property
    def consistent(self) -> bool:
        return not self.violations


class AuditingExecutor(NetworkExecutor):
    """A network executor that traces audit packets after every request.

    Args:
        network: the emulated network whose switches execute requests.
        probes: packets to re-trace after each issued request.

    A trace that is punted *at the ingress* is consistent (the old
    configuration simply handles the packet via the controller); a trace
    that leaves the ingress and then dies mid-path is a violation.
    """

    def __init__(
        self, network: EmulatedNetwork, probes: Sequence[AuditProbe]
    ) -> None:
        super().__init__(network.channels)
        self.network = network
        self.probes = list(probes)
        self.report = AuditReport()

    def _check_probe(self, probe: AuditProbe, request_id: int) -> None:
        trace = trace_packet(self.network, probe.packet, probe.ingress)
        self.report.probes_traced += 1
        if trace.outcome is TraceOutcome.DELIVERED:
            if trace.delivered_at == probe.expected_egress:
                return
            # Delivered somewhere unexpected: a misrouting violation.
            self.report.violations.append(
                ConsistencyViolation(
                    probe=probe,
                    after_request_id=request_id,
                    outcome=trace.outcome,
                    reached=tuple(trace.path),
                )
            )
            return
        forwarded_from_ingress = len(trace.hops) > 1 or (
            len(trace.hops) == 1 and trace.hops[0].output_port is not None
        )
        if trace.outcome is TraceOutcome.PUNTED and not forwarded_from_ingress:
            return  # old configuration: the controller handles it
        self.report.violations.append(
            ConsistencyViolation(
                probe=probe,
                after_request_id=request_id,
                outcome=trace.outcome,
                reached=tuple(trace.path),
            )
        )

    def issue(self, request: SwitchRequest, not_before_ms: float = 0.0) -> IssueRecord:
        record = super().issue(request, not_before_ms=not_before_ms)
        for probe in self.probes:
            self._check_probe(probe, request.request_id)
        return record


def probes_for_flows(network: EmulatedNetwork, flows) -> List[AuditProbe]:
    """Audit probes covering each flow's (ingress, egress) pair."""
    probes = []
    for flow in flows:
        match = flow.match()
        probes.append(
            AuditProbe(
                packet=PacketFields(
                    eth_type=0x0800,
                    ip_dst=match.ip_dst.value if match.ip_dst else 0,
                ),
                ingress=flow.src,
                expected_egress=flow.dst,
            )
        )
    return probes
