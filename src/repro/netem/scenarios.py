"""Network-event scenarios that produce switch-request DAGs.

Reproduces the paper's Section 7.2 setups:

* **Link failure (LF)** -- a physical link dies; every flow crossing it
  is rerouted, generating additions on the detour switches and
  modifications at switches whose next hop changes, chained in reverse
  path order for update consistency.
* **Traffic engineering (TE)** -- a traffic-matrix change adds, removes,
  and modifies flows.  Two forms are provided: a distribution-controlled
  random mix (the hardware-testbed TE1/TE2 and Figure 11 scenarios) and
  a max-min-fair B4 allocation diff (the Mininet scenario, Figure 12).

It also hosts the :data:`FAULT_SCENARIOS` catalogue: named, deterministic
:class:`~repro.faults.FaultPlan` presets (lossy control channel, transient
rejects, stalls, a mid-run disconnect, and their combination) that the
``tango-probe faults`` CLI and the faulted bench case run against these
network scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.requests import RequestDag, SwitchRequest
from repro.faults.plan import DisconnectWindow, FaultPlan, StallWindow
from repro.netem.consistency import (
    add_forward_path_dependencies,
    add_reverse_path_dependencies,
)
from repro.netem.flows import NetworkFlow
from repro.netem.network import EmulatedNetwork
from repro.netem.temaxmin import max_min_fair_allocation
from repro.openflow.actions import OutputAction
from repro.openflow.messages import FlowModCommand
from repro.sim.rng import SeededRng


@dataclass
class ScenarioResultDag:
    """A generated request DAG plus summary statistics.

    ``preinstall`` lists (location, request) pairs that must be applied
    *before* the timed scheduling run: the rules that MODIFY/DELETE
    requests operate on.
    """

    dag: RequestDag
    adds: int = 0
    mods: int = 0
    dels: int = 0
    preinstall: List[Tuple[str, SwitchRequest]] = field(default_factory=list)

    def apply_preinstall(self, network: EmulatedNetwork) -> None:
        """Install the preinstall rules directly (untimed setup)."""
        for location, request in self.preinstall:
            network.channels[location].send_flow_mod(request.flow_mod())

    @property
    def total(self) -> int:
        return self.adds + self.mods + self.dels

    def count(self, request: SwitchRequest) -> None:
        if request.command is FlowModCommand.ADD:
            self.adds += 1
        elif request.command is FlowModCommand.MODIFY:
            self.mods += 1
        else:
            self.dels += 1


class LinkFailureScenario:
    """Reroute every flow crossing a failed link.

    Args:
        network: the emulated network (flows must be tracked in it).
        link: the failing link as an (a, b) switch pair.
    """

    def __init__(self, network: EmulatedNetwork, link: Tuple[str, str]) -> None:
        self.network = network
        self.link = tuple(sorted(link))

    def affected_flows(self) -> List[NetworkFlow]:
        return [
            flow
            for flow in self.network.flows.values()
            if self.link in flow.links()
        ]

    def build_dag(self) -> ScenarioResultDag:
        """Create the rerouting request DAG (does not execute it)."""
        degraded = self.network.topology.copy()
        degraded.remove_link(*self.link)
        result = ScenarioResultDag(dag=RequestDag())

        for flow in self.affected_flows():
            new_path = degraded.shortest_path(flow.src, flow.dst)
            old_switches = set(flow.path)
            chain: List[SwitchRequest] = []
            for switch in new_path:
                actions = (
                    OutputAction(port=self.network.port_along_path(new_path, switch)),
                )
                if switch not in old_switches:
                    command = FlowModCommand.ADD
                elif self._next_hop(flow.path, switch) != self._next_hop(
                    new_path, switch
                ):
                    command = FlowModCommand.MODIFY
                else:
                    continue
                request = result.dag.new_request(
                    location=switch,
                    command=command,
                    match=flow.match(),
                    priority=flow.priority,
                    actions=actions,
                )
                result.count(request)
                chain.append(request)
            add_reverse_path_dependencies(result.dag, chain)

            removals: List[SwitchRequest] = []
            for switch in flow.path:
                if switch in set(new_path):
                    continue
                request = result.dag.new_request(
                    location=switch,
                    command=FlowModCommand.DELETE,
                    match=flow.match(),
                    priority=flow.priority,
                    after=chain[:1],  # only after ingress is repointed
                )
                result.count(request)
                removals.append(request)
            add_forward_path_dependencies(result.dag, removals)
            flow.path = new_path
        return result

    @staticmethod
    def _next_hop(path: List[str], switch: str) -> Optional[str]:
        if switch not in path:
            return None
        index = path.index(switch)
        return path[index + 1] if index + 1 < len(path) else None


class TrafficEngineeringScenario:
    """Traffic-matrix-driven rule updates."""

    def __init__(self, network: EmulatedNetwork, seed: int = 0) -> None:
        self.network = network
        self.rng = SeededRng(seed).child("te-scenario")

    # -- distribution-controlled mix (testbed TE1/TE2, Figure 11) ----------------
    def random_mix(
        self,
        n_requests: int,
        mix: Tuple[float, float, float] = (0.5, 0.25, 0.25),
        dag_levels: int = 1,
        priorities: str = "random",
        locations: Optional[Sequence[str]] = None,
    ) -> ScenarioResultDag:
        """A controlled mixture of adds/mods/dels.

        Args:
            n_requests: total request count.
            mix: fractions of (ADD, MODIFY, DELETE) requests.
            dag_levels: dependency depth; level-2+ requests depend on a
                randomly chosen request from the previous level.
            priorities: ``"random"`` (app-specified, unique-ish) or
                ``"same"`` (all equal).
            locations: switches to spread requests over (default: all).
        """
        if abs(sum(mix) - 1.0) > 1e-6:
            raise ValueError("mix fractions must sum to 1")
        if dag_levels < 1:
            raise ValueError("dag_levels must be >= 1")
        switches = list(locations or sorted(self.network.switches))
        result = ScenarioResultDag(dag=RequestDag())

        n_add = int(round(n_requests * mix[0]))
        n_mod = int(round(n_requests * mix[1]))
        n_del = n_requests - n_add - n_mod
        commands = (
            [FlowModCommand.ADD] * n_add
            + [FlowModCommand.MODIFY] * n_mod
            + [FlowModCommand.DELETE] * n_del
        )
        self.rng.shuffle(commands)

        priority_pool = list(range(1, 4 * n_requests))
        levels: List[List[SwitchRequest]] = [[] for _ in range(dag_levels)]
        for index, command in enumerate(commands):
            level = index % dag_levels
            switch = self.rng.choice(switches)
            flow = self.network.new_flow(switch, switch, path=[switch])
            priority = (
                100 if priorities == "same" else self.rng.choice(priority_pool)
            )
            parents: List[SwitchRequest] = []
            if level > 0 and levels[level - 1]:
                parents = [self.rng.choice(levels[level - 1])]
            request = result.dag.new_request(
                location=switch,
                command=command,
                match=flow.match(),
                priority=priority,
                after=parents,
            )
            if command is not FlowModCommand.ADD:
                # MODIFY/DELETE operate on a rule that must already exist.
                result.preinstall.append(
                    (
                        switch,
                        SwitchRequest(
                            request_id=-request.request_id - 1,
                            location=switch,
                            command=FlowModCommand.ADD,
                            match=flow.match(),
                            priority=priority,
                        ),
                    )
                )
            result.count(request)
            levels[level].append(request)
        return result

    # -- B4-style allocation diff (Figure 12) ---------------------------------------
    def from_traffic_matrices(
        self,
        before: Dict[Tuple[str, str], float],
        after: Dict[Tuple[str, str], float],
        flows_per_pair: int = 1,
        preinstall: bool = True,
    ) -> ScenarioResultDag:
        """Requests realising a traffic-matrix change under max-min TE.

        Pairs present only in ``after`` gain flows (path-chained ADDs,
        egress first); pairs only in ``before`` lose them (forward-chained
        DELETEs); pairs whose max-min allocation changes get MODIFYs
        along their path.

        Args:
            preinstall: install the ``before`` flows' rules on the
                switches (untimed setup), so the MODIFY/DELETE requests
                act on real table state.
        """
        result = ScenarioResultDag(dag=RequestDag())

        flows_before: Dict[Tuple[str, str], List[NetworkFlow]] = {}
        for pair, demand in before.items():
            flows_before[pair] = [
                self.network.new_flow(pair[0], pair[1], demand=demand / flows_per_pair)
                for _ in range(flows_per_pair)
            ]
        if preinstall:
            self.network.preinstall_flow_rules(
                [f for group in flows_before.values() for f in group]
            )
        allocation_before = max_min_fair_allocation(
            self.network.topology,
            [f for group in flows_before.values() for f in group],
        )

        flows_after: Dict[Tuple[str, str], List[NetworkFlow]] = {}
        for pair, demand in after.items():
            if pair in flows_before:
                group = flows_before[pair]
                for flow in group:
                    flow.demand = demand / flows_per_pair
                flows_after[pair] = group
            else:
                flows_after[pair] = [
                    self.network.new_flow(
                        pair[0], pair[1], demand=demand / flows_per_pair
                    )
                    for _ in range(flows_per_pair)
                ]
        allocation_after = max_min_fair_allocation(
            self.network.topology,
            [f for group in flows_after.values() for f in group],
        )

        # New pairs: installations, egress first.
        for pair in after:
            if pair in before:
                continue
            for flow in flows_after[pair]:
                chain = [
                    result.dag.new_request(
                        location=switch,
                        command=FlowModCommand.ADD,
                        match=flow.match(),
                        priority=flow.priority,
                        actions=(OutputAction(port=self.network.port_along_path(flow.path, switch)),),
                    )
                    for switch in flow.path
                ]
                for request in chain:
                    result.count(request)
                add_reverse_path_dependencies(result.dag, chain)

        # Removed pairs: drain from ingress.
        for pair in before:
            if pair in after:
                continue
            for flow in flows_before[pair]:
                chain = [
                    result.dag.new_request(
                        location=switch,
                        command=FlowModCommand.DELETE,
                        match=flow.match(),
                        priority=flow.priority,
                    )
                    for switch in flow.path
                ]
                for request in chain:
                    result.count(request)
                add_forward_path_dependencies(result.dag, chain)
                self.network.forget_flow(flow.flow_id)

        # Shared pairs with changed allocations: modify along the path.
        for pair in after:
            if pair not in before:
                continue
            for flow in flows_after[pair]:
                rate_before = allocation_before.get(flow.flow_id, 0.0)
                rate_after = allocation_after.get(flow.flow_id, 0.0)
                if abs(rate_after - rate_before) < 1e-9:
                    continue
                chain = [
                    result.dag.new_request(
                        location=switch,
                        command=FlowModCommand.MODIFY,
                        match=flow.match(),
                        priority=flow.priority,
                        actions=(OutputAction(port=self.network.port_along_path(flow.path, switch)),),
                    )
                    for switch in flow.path
                ]
                for request in chain:
                    result.count(request)
                add_reverse_path_dependencies(result.dag, chain)
        return result


@dataclass(frozen=True)
class FaultScenario:
    """A named, parameter-free fault preset.

    ``plan(seed)`` expands the preset into a concrete, deterministic
    :class:`~repro.faults.FaultPlan`; window fields apply to every
    switch (``switch=None``), so the same scenario works against any
    topology.  Probabilities are per message; window times are on the
    simulated clock, relative to the executor epoch.
    """

    name: str
    description: str
    loss_probability: float = 0.0
    reject_probability: float = 0.0
    probe_loss_probability: float = 0.0
    #: (start_ms, duration_ms, extra_ms) or None.
    stall: Optional[Tuple[float, float, float]] = None
    #: (start_ms, reconnect_at_ms) or None.
    disconnect: Optional[Tuple[float, float]] = None

    def plan(self, seed: int = 0) -> FaultPlan:
        """The concrete fault plan for this scenario under ``seed``."""
        stalls: Tuple[StallWindow, ...] = ()
        if self.stall is not None:
            start, duration, extra = self.stall
            stalls = (StallWindow(start_ms=start, duration_ms=duration, extra_ms=extra),)
        disconnects: Tuple[DisconnectWindow, ...] = ()
        if self.disconnect is not None:
            start, reconnect = self.disconnect
            disconnects = (DisconnectWindow(start_ms=start, reconnect_at_ms=reconnect),)
        return FaultPlan(
            seed=seed,
            loss_probability=self.loss_probability,
            reject_probability=self.reject_probability,
            probe_loss_probability=self.probe_loss_probability,
            stalls=stalls,
            disconnects=disconnects,
        )


#: Named fault presets for the CLI, CI smoke job, and faulted benchmarks.
FAULT_SCENARIOS: Dict[str, FaultScenario] = {
    scenario.name: scenario
    for scenario in (
        FaultScenario(
            name="none",
            description="No faults (bit-identical to running without an injector).",
        ),
        FaultScenario(
            name="lossy",
            description="10% control-message loss, 5% probe-reply loss.",
            loss_probability=0.10,
            probe_loss_probability=0.05,
        ),
        FaultScenario(
            name="reject",
            description="5% transient flow_mod rejections by the switch agent.",
            reject_probability=0.05,
        ),
        FaultScenario(
            name="stall",
            description="Every switch stalls +2 ms per op during [10 ms, 60 ms).",
            stall=(10.0, 50.0, 2.0),
        ),
        FaultScenario(
            name="disconnect",
            description="All control connections drop during [20 ms, 80 ms).",
            disconnect=(20.0, 80.0),
        ),
        FaultScenario(
            name="chaos",
            description=(
                "10% control loss plus one mid-run disconnect [30 ms, 90 ms) "
                "(the acceptance scenario)."
            ),
            loss_probability=0.10,
            disconnect=(30.0, 90.0),
        ),
    )
}
