"""End-to-end packet tracing across the emulated network.

Walks a packet from an ingress switch, applying each switch's installed
rules and following output ports across links, until the packet is
delivered locally, punted to the controller, dropped, or caught looping.
Used by the consistency auditor to check that rule-update schedules
never create transient black holes (Section 7.2's reverse-path update
ordering exists exactly to prevent them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.netem.network import EmulatedNetwork
from repro.openflow.actions import DropAction, OutputAction
from repro.openflow.match import PacketFields


class TraceOutcome(enum.Enum):
    DELIVERED = "delivered"  # reached a switch that output to LOCAL_PORT
    PUNTED = "punted"  # sent to the controller (miss or explicit)
    DROPPED = "dropped"  # matched a drop rule
    DEAD_PORT = "dead-port"  # output port maps to no link
    LOOP = "loop"  # exceeded the hop budget


@dataclass(frozen=True)
class TraceHop:
    """One switch traversal.

    ``delay_ms`` is the switch's forwarding delay; ``link_ms`` is the
    propagation delay of the outgoing link (zero at delivery/punt).
    """

    switch: str
    delay_ms: float
    output_port: Optional[int]
    link_ms: float = 0.0


@dataclass
class TraceResult:
    """Full journey of one traced packet."""

    outcome: TraceOutcome
    hops: List[TraceHop] = field(default_factory=list)

    @property
    def total_delay_ms(self) -> float:
        return sum(hop.delay_ms + hop.link_ms for hop in self.hops)

    @property
    def path(self) -> List[str]:
        return [hop.switch for hop in self.hops]

    @property
    def delivered_at(self) -> Optional[str]:
        if self.outcome is TraceOutcome.DELIVERED and self.hops:
            return self.hops[-1].switch
        return None


def trace_packet(
    network: EmulatedNetwork,
    packet: PacketFields,
    ingress: str,
    max_hops: int = 32,
) -> TraceResult:
    """Trace ``packet`` from ``ingress`` through installed rules.

    Note: tracing exercises the real data path, so it updates rule use
    times and traffic counters like any other packets would.
    """
    if ingress not in network.switches:
        raise KeyError(f"unknown ingress switch {ingress!r}")
    result = TraceResult(outcome=TraceOutcome.LOOP)
    current = ingress
    for _ in range(max_hops):
        switch = network.switches[current]
        forwarding = switch.forward_packet_detailed(packet)
        if not forwarding.matched or forwarding.punted:
            result.hops.append(
                TraceHop(switch=current, delay_ms=forwarding.delay_ms, output_port=None)
            )
            result.outcome = TraceOutcome.PUNTED
            return result
        output = next(
            (a for a in forwarding.actions if isinstance(a, OutputAction)), None
        )
        if output is None or any(
            isinstance(a, DropAction) for a in forwarding.actions
        ):
            result.hops.append(
                TraceHop(switch=current, delay_ms=forwarding.delay_ms, output_port=None)
            )
            result.outcome = TraceOutcome.DROPPED
            return result
        if output.port == network.LOCAL_PORT:
            result.hops.append(
                TraceHop(
                    switch=current,
                    delay_ms=forwarding.delay_ms,
                    output_port=output.port,
                )
            )
            result.outcome = TraceOutcome.DELIVERED
            return result
        neighbor = network.neighbor_on_port(current, output.port)
        link_ms = (
            network.topology.link_latency_ms(current, neighbor)
            if neighbor is not None
            else 0.0
        )
        result.hops.append(
            TraceHop(
                switch=current,
                delay_ms=forwarding.delay_ms,
                output_port=output.port,
                link_ms=link_ms,
            )
        )
        if neighbor is None:
            result.outcome = TraceOutcome.DEAD_PORT
            return result
        current = neighbor
    return result
