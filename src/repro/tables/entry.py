"""Flow entries and their cache-relevant attributes.

The paper's ATTRIB assumption (Section 5.1) restricts cache policies to
four per-flow attributes that OpenFlow switches maintain anyway:

* time since insertion  (we store absolute insertion time),
* time since last use   (we store absolute last-use time),
* traffic count,
* rule priority.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.openflow.actions import Action
from repro.openflow.match import Match


class FlowAttribute(enum.Enum):
    """The ATTRIB set from the paper's switch cache model."""

    INSERTION = "insertion"
    USE_TIME = "usage_time"
    TRAFFIC = "traffic"
    PRIORITY = "priority"


#: Attributes whose values are unique by construction (a strict sequence),
#: so a policy sorting on them already yields a total order (paper Alg. 2,
#: SERIAL_ATTRIBUTES).
SERIAL_ATTRIBUTES = frozenset({FlowAttribute.INSERTION, FlowAttribute.USE_TIME})


@dataclass
class FlowEntry:
    """A rule installed in a switch plus its dynamic attributes.

    Args:
        match: the rule's match condition.
        priority: OpenFlow priority (higher wins on overlap).
        actions: the rule's action list.
        entry_id: switch-local sequence number (unique, insertion order).
        inserted_at_ms: virtual time of installation.
    """

    match: Match
    priority: int
    actions: Tuple[Action, ...]
    entry_id: int
    inserted_at_ms: float
    last_used_at_ms: float = field(default=-1.0)
    traffic_count: int = 0

    def touch(self, now_ms: float, packets: int = 1) -> None:
        """Record ``packets`` matching packets at virtual time ``now_ms``."""
        self.last_used_at_ms = now_ms
        self.traffic_count += packets

    def attribute_value(self, attribute: FlowAttribute) -> float:
        """The current value of one ATTRIB attribute."""
        if attribute is FlowAttribute.INSERTION:
            return self.inserted_at_ms
        if attribute is FlowAttribute.USE_TIME:
            return self.last_used_at_ms
        if attribute is FlowAttribute.TRAFFIC:
            return float(self.traffic_count)
        if attribute is FlowAttribute.PRIORITY:
            return float(self.priority)
        raise ValueError(f"unknown attribute {attribute!r}")
