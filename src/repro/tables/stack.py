"""The multi-level flow-table stack.

Section 5.1 of the paper models a switch's flow tables as a multilevel
cache over the installed rule set: the cache policy induces a total order
over all rules, the top ``n_1`` live in the fastest layer (TCAM), the
next ``n_2`` in the next layer (kernel table), and so on.  A rule's layer
determines its forwarding latency tier, which is everything the Tango
probing patterns observe.

:class:`RankedTableStack` implements exactly this model.  Rules are kept
in a list sorted by their policy score; a rule's layer follows from its
rank and the layers' capacities.  Probing a rule updates its use time and
traffic count, which can move it in the ranking -- this is why the
paper's probe patterns are carefully constructed not to disturb relative
order.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.openflow.actions import Action
from repro.openflow.errors import TableFullError
from repro.openflow.match import Match, MatchKind, PacketFields
from repro.tables.entry import FlowEntry
from repro.tables.policies import CachePolicy
from repro.tables.tcam import TcamGeometry


@dataclass(frozen=True)
class TableLayer:
    """One level of the table hierarchy.

    Args:
        name: e.g. ``"tcam"``, ``"kernel"``, ``"userspace"``.
        capacity: entry capacity; ``None`` means unbounded (software).
        geometry: optional TCAM geometry; when set, capacity is expressed
            in slot units and depends on each entry's match kind.
    """

    name: str
    capacity: Optional[int] = None
    geometry: Optional[TcamGeometry] = None

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 0:
            raise ValueError("capacity must be non-negative")
        if self.capacity is not None and self.geometry is not None:
            raise ValueError("give either capacity or geometry, not both")


class RankedTableStack:
    """Rules ranked by cache policy, spread across table layers.

    Args:
        layers: fastest-first table layers; at most the last may be
            unbounded.
        policy: the cache-retention policy (LEX ordering).
        hard_limit: safety cap on total rules even with unbounded layers.
    """

    def __init__(
        self,
        layers: List[TableLayer],
        policy: CachePolicy,
        hard_limit: int = 200_000,
    ) -> None:
        if not layers:
            raise ValueError("need at least one table layer")
        for layer in layers[:-1]:
            if layer.capacity is None and layer.geometry is None:
                raise ValueError("only the last layer may be unbounded")
        self.layers = list(layers)
        self.policy = policy
        self.hard_limit = hard_limit

        self._entries: Dict[int, FlowEntry] = {}
        self._by_key: Dict[Tuple, List[int]] = {}
        self._by_ip_dst: Dict[int, List[int]] = {}
        self._by_eth_dst: Dict[int, List[int]] = {}
        self._wildcards: List[int] = []
        # Sorted ascending by score; the best-ranked entry is last.
        self._ranked: List[Tuple[Tuple, int]] = []
        self._next_id = 0
        self._boundaries_dirty = True
        self._boundaries: List[int] = []
        # Counts of installed entries per match kind; when every resident
        # kind costs the same in every TCAM layer, layer boundaries follow
        # from arithmetic instead of an O(n) walk.
        self._kind_counts: Dict[MatchKind, int] = {}

    # -- basic accessors -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, match: Match) -> bool:
        return bool(self._by_key.get(match.key()))

    @property
    def entries(self) -> List[FlowEntry]:
        """All installed entries (unspecified order)."""
        return list(self._entries.values())

    def entries_by_rank(self) -> List[FlowEntry]:
        """Entries from best-ranked (fastest layer) to worst."""
        return [self._entries[eid] for _, eid in reversed(self._ranked)]

    def worst_entries(self, count: int = 1) -> List[FlowEntry]:
        """The ``count`` worst-ranked entries, worst first.

        These are the policy's eviction candidates: the entries the
        cache hierarchy relegates to its slowest layer (or would push
        out entirely).  O(count) — the ranking is already maintained.
        """
        return [self._entries[eid] for _, eid in self._ranked[:count]]

    def lookup_exact(self, match: Match, priority: Optional[int] = None) -> Optional[FlowEntry]:
        """Find an entry with exactly this match (and priority, if given)."""
        for entry_id in self._by_key.get(match.key(), ()):
            entry = self._entries[entry_id]
            if priority is None or entry.priority == priority:
                return entry
        return None

    # -- ranking internals -----------------------------------------------------
    def _score_key(self, entry: FlowEntry) -> Tuple:
        return self.policy.score(entry)

    def _ranked_insert(self, entry: FlowEntry) -> None:
        bisect.insort(self._ranked, (self._score_key(entry), entry.entry_id))
        self._boundaries_dirty = True

    def _ranked_remove(self, entry: FlowEntry) -> None:
        key = (self._score_key(entry), entry.entry_id)
        index = bisect.bisect_left(self._ranked, key)
        if index >= len(self._ranked) or self._ranked[index] != key:
            raise AssertionError("ranked index out of sync")
        del self._ranked[index]
        self._boundaries_dirty = True

    def rank_of(self, entry: FlowEntry) -> int:
        """0-based rank from the best (fastest) position."""
        key = (self._score_key(entry), entry.entry_id)
        index = bisect.bisect_left(self._ranked, key)
        if index >= len(self._ranked) or self._ranked[index] != key:
            raise AssertionError("entry missing from ranking")
        return len(self._ranked) - 1 - index

    def _layer_cost(self, layer: TableLayer, entry: FlowEntry) -> float:
        if layer.geometry is not None:
            return layer.geometry.entry_cost(entry.match.kind)
        return 1.0

    def _uniform_cost(self, layer: TableLayer) -> Optional[float]:
        """The single per-entry cost in ``layer``, or None if mixed."""
        assert layer.geometry is not None
        costs = {
            layer.geometry.entry_cost(kind)
            for kind, count in self._kind_counts.items()
            if count > 0
        }
        if len(costs) > 1:
            return None
        return costs.pop() if costs else 1.0

    def _compute_boundaries(self) -> List[int]:
        """Rank boundaries: ranks [b[i-1], b[i]) belong to layer i."""
        if not self._boundaries_dirty:
            return self._boundaries
        boundaries: List[int] = []
        rank = 0
        total = len(self._ranked)
        ordered: Optional[List[FlowEntry]] = None
        for layer in self.layers:
            if layer.capacity is None and layer.geometry is None:
                rank = total
            elif layer.geometry is not None:
                cost = self._uniform_cost(layer)
                if cost is not None:
                    rank = min(total, rank + int(layer.geometry.slot_units // cost))
                else:
                    if ordered is None:
                        ordered = [self._entries[eid] for _, eid in reversed(self._ranked)]
                    budget = layer.geometry.slot_units
                    while rank < total:
                        entry_cost = self._layer_cost(layer, ordered[rank])
                        if entry_cost > budget:
                            break
                        budget -= entry_cost
                        rank += 1
            else:
                rank = min(total, rank + layer.capacity)
            boundaries.append(rank)
        self._boundaries = boundaries
        self._boundaries_dirty = False
        return boundaries

    def layer_of(self, entry: FlowEntry) -> int:
        """Index of the layer currently holding ``entry``."""
        rank = self.rank_of(entry)
        for layer_index, boundary in enumerate(self._compute_boundaries()):
            if rank < boundary:
                return layer_index
        raise AssertionError("entry beyond all layer boundaries")

    def layer_occupancy(self) -> List[int]:
        """Number of entries currently resident in each layer."""
        boundaries = self._compute_boundaries()
        counts = []
        previous = 0
        for boundary in boundaries:
            counts.append(boundary - previous)
            previous = boundary
        return counts

    def occupancy_snapshot(self) -> Dict[str, object]:
        """A JSON-ready per-layer occupancy view (pure read).

        Each layer reports its entry count and, when bounded, an
        occupancy ``ratio`` in [0, 1]: entries over capacity for plain
        layers, slots used over slot units for TCAM-geometry layers.
        Unbounded layers report ``ratio`` None.  This is the signal the
        telemetry collector samples for occupancy-headroom SLOs.
        """
        counts = self.layer_occupancy()
        boundaries = self._compute_boundaries()
        ordered: Optional[List[FlowEntry]] = None
        layers = []
        previous = 0
        for index, (layer, count) in enumerate(zip(self.layers, counts)):
            ratio: Optional[float] = None
            if layer.capacity is not None:
                ratio = count / layer.capacity if layer.capacity else 1.0
            elif layer.geometry is not None:
                if ordered is None:
                    ordered = [self._entries[eid] for _, eid in reversed(self._ranked)]
                used = sum(
                    self._layer_cost(layer, entry)
                    for entry in ordered[previous : boundaries[index]]
                )
                units = layer.geometry.slot_units
                ratio = used / units if units else 1.0
            layers.append({"name": layer.name, "entries": count, "ratio": ratio})
            previous = boundaries[index]
        return {"total": len(self._entries), "layers": layers}

    def _fits(self, candidate: FlowEntry) -> bool:
        """Would the stack still hold every entry if ``candidate`` joined?"""
        if len(self._entries) + 1 > self.hard_limit:
            return False
        if any(layer.capacity is None and layer.geometry is None for layer in self.layers):
            return True
        # All layers bounded: check that total capacity absorbs the new
        # entry.  With a homogeneous entry mix (including the candidate)
        # the capacity is arithmetic; otherwise simulate the boundary walk.
        kinds = {kind for kind, count in self._kind_counts.items() if count > 0}
        kinds.add(candidate.match.kind)
        total_capacity = 0
        uniform = True
        for layer in self.layers:
            if layer.geometry is None:
                total_capacity += layer.capacity or 0
                continue
            costs = {layer.geometry.entry_cost(kind) for kind in kinds}
            if len(costs) > 1:
                uniform = False
                break
            total_capacity += int(layer.geometry.slot_units // costs.pop())
        if uniform:
            return len(self._entries) + 1 <= total_capacity

        ordered = [self._entries[eid] for _, eid in reversed(self._ranked)]
        candidate_key = (self._score_key(candidate), candidate.entry_id)
        insert_at = len(self._ranked) - bisect.bisect_left(self._ranked, candidate_key)
        ordered.insert(insert_at, candidate)
        rank = 0
        for layer in self.layers:
            if layer.geometry is not None:
                budget = layer.geometry.slot_units
                while rank < len(ordered):
                    cost = self._layer_cost(layer, ordered[rank])
                    if cost > budget:
                        break
                    budget -= cost
                    rank += 1
            else:
                rank = min(len(ordered), rank + (layer.capacity or 0))
        return rank >= len(ordered)

    # -- mutations --------------------------------------------------------------
    def insert(
        self,
        match: Match,
        priority: int,
        actions: Tuple[Action, ...],
        now_ms: float,
    ) -> FlowEntry:
        """Install a new rule.

        Raises:
            TableFullError: if no layer can absorb the rule.
        """
        entry = FlowEntry(
            match=match,
            priority=priority,
            actions=actions,
            entry_id=self._next_id,
            inserted_at_ms=now_ms,
        )
        if not self._fits(entry):
            raise TableFullError(capacity=len(self._entries))
        self._next_id += 1
        self._entries[entry.entry_id] = entry
        self._by_key.setdefault(match.key(), []).append(entry.entry_id)
        self._index_for_match(match).append(entry.entry_id)
        kind = match.kind
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        self._ranked_insert(entry)
        return entry

    def _index_for_match(self, match: Match) -> List[int]:
        if match.ip_dst is not None and match.ip_dst.length == 32:
            return self._by_ip_dst.setdefault(match.ip_dst.value, [])
        if match.eth_dst is not None:
            return self._by_eth_dst.setdefault(match.eth_dst, [])
        return self._wildcards

    def remove(self, entry: FlowEntry) -> None:
        """Remove a specific installed entry."""
        if entry.entry_id not in self._entries:
            raise KeyError(f"entry {entry.entry_id} not installed")
        self._ranked_remove(entry)
        del self._entries[entry.entry_id]
        key_list = self._by_key[entry.match.key()]
        key_list.remove(entry.entry_id)
        if not key_list:
            del self._by_key[entry.match.key()]
        self._index_for_match(entry.match).remove(entry.entry_id)
        self._kind_counts[entry.match.kind] -= 1

    def touch(self, entry: FlowEntry, now_ms: float, packets: int = 1) -> None:
        """Update use time / traffic count, preserving ranking invariants."""
        self._ranked_remove(entry)
        entry.touch(now_ms, packets=packets)
        self._ranked_insert(entry)

    def update_priority(self, entry: FlowEntry, priority: int) -> None:
        """Change an entry's priority (flow MODIFY with a new priority)."""
        self._ranked_remove(entry)
        entry.priority = priority
        self._ranked_insert(entry)

    # -- packet lookup -------------------------------------------------------------
    def match_packet(self, packet: PacketFields) -> Optional[FlowEntry]:
        """Highest-priority entry matching the packet, or None."""
        candidate_ids = list(self._by_ip_dst.get(packet.ip_dst, ()))
        candidate_ids.extend(self._by_eth_dst.get(packet.eth_dst, ()))
        candidate_ids.extend(self._wildcards)
        best: Optional[FlowEntry] = None
        for entry_id in candidate_ids:
            entry = self._entries[entry_id]
            if not entry.match.matches_packet(packet):
                continue
            if (
                best is None
                or entry.priority > best.priority
                or (entry.priority == best.priority and entry.entry_id > best.entry_id)
            ):
                best = entry
        return best

    def clear(self) -> None:
        self._entries.clear()
        self._by_key.clear()
        self._by_ip_dst.clear()
        self._by_eth_dst.clear()
        self._wildcards.clear()
        self._ranked.clear()
        self._kind_counts.clear()
        self._boundaries_dirty = True
