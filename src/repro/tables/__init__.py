"""Flow-table models.

The paper (Section 5.1) views a switch's flow tables as a multi-level
cache over the full rule set: TCAM is the fastest level, kernel/userspace
software tables are slower levels, and rules outside all tables miss to
the controller.  The cache-managing policy is formalised as a
lexicographic ordering over per-flow attributes (ATTRIB / MONOTONE / LEX).

This package implements that model:

* :class:`FlowEntry` -- a rule plus its dynamic attributes.
* :class:`CachePolicy` -- a lexicographic ordering (permutation of
  attributes, each with a monotone direction).
* :class:`TcamGeometry` -- capacity rules (single/double-wide/adaptive
  modes) and the entry-shift cost model that makes rule-install latency
  depend on priority order.
* :class:`RankedTableStack` -- the multi-level cache itself.
"""

from repro.tables.entry import FlowAttribute, FlowEntry
from repro.tables.policies import (
    CachePolicy,
    Direction,
    FIFO,
    LIFO,
    LFU,
    LRU,
    PRIORITY_CACHE,
    STANDARD_POLICIES,
)
from repro.tables.stack import RankedTableStack, TableLayer
from repro.tables.tcam import TcamGeometry, TcamMode

__all__ = [
    "FlowEntry",
    "FlowAttribute",
    "CachePolicy",
    "Direction",
    "FIFO",
    "LIFO",
    "LRU",
    "LFU",
    "PRIORITY_CACHE",
    "STANDARD_POLICIES",
    "TableLayer",
    "RankedTableStack",
    "TcamGeometry",
    "TcamMode",
]
