"""Cache-managing policies under the ATTRIB / MONOTONE / LEX model.

The paper formalises a switch's table-management policy as:

* [ATTRIB]   it examines a subset of {insertion time, use time, traffic
  count, priority};
* [MONOTONE] each attribute is compared by a monotone (increasing or
  decreasing) function, so only the *sign* of differences matters;
* [LEX]      flows are totally ordered lexicographically under some
  permutation of the attributes, and the flow that comes last is evicted.

A :class:`CachePolicy` is exactly such a permutation with per-attribute
directions.  Classic policies fall out as one-attribute special cases:
FIFO keeps the *oldest-inserted* flows (Switch #1's software-to-TCAM
promotion), LRU keeps most-recently-used, LFU keeps highest traffic, and
a priority cache keeps the highest-priority rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.tables.entry import FlowAttribute, FlowEntry


class Direction(enum.Enum):
    """MONOTONE comparison direction for one attribute.

    ``INCREASING`` means larger values score better (kept in cache);
    ``DECREASING`` means smaller values score better.
    """

    INCREASING = 1
    DECREASING = -1


@dataclass(frozen=True)
class CachePolicy:
    """A lexicographic cache-retention policy.

    The cache retains the flows that score *highest* under the
    lexicographic ordering; the lowest-scoring flows live in lower table
    layers (or nowhere, for switches without software tables).

    Args:
        terms: ordered (attribute, direction) pairs; the first term is the
            primary sort attribute.
        name: human-readable label.
    """

    terms: Tuple[Tuple[FlowAttribute, Direction], ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("a CachePolicy needs at least one term")
        attributes = [attribute for attribute, _ in self.terms]
        if len(set(attributes)) != len(attributes):
            raise ValueError("duplicate attribute in policy terms")

    @property
    def primary(self) -> FlowAttribute:
        return self.terms[0][0]

    def score(self, entry: FlowEntry) -> Tuple[float, ...]:
        """The entry's retention score; larger tuples are retained.

        The final tie-breaker is the entry id (newer wins), making the
        ordering total, as LEX requires.
        """
        parts = [
            direction.value * entry.attribute_value(attribute)
            for attribute, direction in self.terms
        ]
        parts.append(float(entry.entry_id))
        return tuple(parts)

    def describe(self) -> str:
        terms = ", ".join(
            f"{attribute.value}:{'+' if direction is Direction.INCREASING else '-'}"
            for attribute, direction in self.terms
        )
        return self.name or f"lex({terms})"


def _single(attribute: FlowAttribute, direction: Direction, name: str) -> CachePolicy:
    return CachePolicy(terms=((attribute, direction),), name=name)


#: Keep the oldest-inserted flows (Switch #1 fills TCAM first-come-first-kept).
FIFO = _single(FlowAttribute.INSERTION, Direction.DECREASING, "FIFO")

#: Keep the newest-inserted flows.
LIFO = _single(FlowAttribute.INSERTION, Direction.INCREASING, "LIFO")

#: Keep the most recently used flows.
LRU = _single(FlowAttribute.USE_TIME, Direction.INCREASING, "LRU")

#: Keep the most heavily used flows.
LFU = _single(FlowAttribute.TRAFFIC, Direction.INCREASING, "LFU")

#: Keep the highest-priority rules in the fast table.
PRIORITY_CACHE = _single(FlowAttribute.PRIORITY, Direction.INCREASING, "PRIORITY")

#: Traffic first, then priority; a plausible vendor heuristic used in the
#: paper's lexicographic example (footnote 2).
TRAFFIC_THEN_PRIORITY = CachePolicy(
    terms=(
        (FlowAttribute.TRAFFIC, Direction.INCREASING),
        (FlowAttribute.PRIORITY, Direction.INCREASING),
    ),
    name="TRAFFIC+PRIORITY",
)

#: Priority first, then most-recently-used.
PRIORITY_THEN_LRU = CachePolicy(
    terms=(
        (FlowAttribute.PRIORITY, Direction.INCREASING),
        (FlowAttribute.USE_TIME, Direction.INCREASING),
    ),
    name="PRIORITY+LRU",
)

#: Policies exercised by the inference-accuracy experiments.
STANDARD_POLICIES: Dict[str, CachePolicy] = {
    policy.name: policy
    for policy in (FIFO, LIFO, LRU, LFU, PRIORITY_CACHE, TRAFFIC_THEN_PRIORITY, PRIORITY_THEN_LRU)
}
