"""TCAM geometry: capacity modes and the entry-shift cost model.

Capacity (paper Table 1): a TCAM of fixed physical size holds different
numbers of entries depending on entry width and operating mode:

* ``SINGLE_WIDE``  -- entries may match only L2 *or* only L3 headers; the
  full slot count is available (Switch #1 in L2- or L3-only mode: 4K).
* ``DOUBLE_WIDE``  -- every entry occupies a double slot so L2+L3 matches
  fit, and capacity halves for everything (Switch #1 combined mode: 2K;
  Switch #2: 2560 regardless of entry type).
* ``ADAPTIVE``     -- per-entry width: narrow entries cost one slot unit,
  wide (L2+L3) entries cost ``wide_cost`` units (Switch #3: 767 narrow or
  369 wide).

Install cost (paper Figures 3b/3c): TCAM entries must stay sorted by
priority, so adding a rule shifts every resident entry of *higher*
priority.  Adding in ascending priority order appends (no shifts) while
descending order shifts everything each time -- the asymmetry the Tango
scheduler exploits.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Dict

from repro.openflow.match import MatchKind


class TcamMode(enum.Enum):
    SINGLE_WIDE = "single-wide"
    DOUBLE_WIDE = "double-wide"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class TcamGeometry:
    """Physical TCAM capacity rules.

    Args:
        slot_units: total capacity in single-wide slot units.
        mode: operating mode (see module docstring).
        wide_cost: slot units consumed by an L2+L3 entry in ADAPTIVE mode.
    """

    slot_units: float
    mode: TcamMode = TcamMode.SINGLE_WIDE
    wide_cost: float = 2.0

    def __post_init__(self) -> None:
        if self.slot_units <= 0:
            raise ValueError("slot_units must be positive")
        if self.wide_cost < 1.0:
            raise ValueError("wide_cost must be at least 1")

    def entry_cost(self, kind: MatchKind) -> float:
        """Slot units consumed by one entry of the given match kind.

        Raises:
            ValueError: if the entry kind cannot be stored in this mode.
        """
        if self.mode is TcamMode.SINGLE_WIDE:
            if kind is MatchKind.L2_L3:
                raise ValueError("single-wide TCAM cannot hold L2+L3 entries")
            return 1.0
        if self.mode is TcamMode.DOUBLE_WIDE:
            return 2.0
        return self.wide_cost if kind is MatchKind.L2_L3 else 1.0

    def capacity_for(self, kind: MatchKind) -> int:
        """Maximum number of same-kind entries this TCAM can hold."""
        return int(self.slot_units // self.entry_cost(kind))


class _SparseFenwick:
    """A sparse binary indexed tree counting non-negative integer keys.

    Coordinates are 1-based.  The universe is a power of two that doubles
    (with an O(distinct * log U) rebuild) when a larger key arrives, so
    the per-operation cost is O(log max_key) while memory stays
    O(distinct * log U) -- the tree never materialises the full universe.
    """

    __slots__ = ("size", "total", "ops", "_tree", "_counts")

    def __init__(self) -> None:
        self.size = 1  # universe size (power of two); valid coords 1..size
        self.total = 0
        self.ops = 0  # tree nodes touched; the bench's work metric
        self._tree: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}  # coord -> multiplicity

    def _grow(self, coord: int) -> None:
        size = self.size
        while coord > size:
            size <<= 1
        self.size = size
        self._tree = {}
        for existing, count in self._counts.items():
            self._walk_add(existing, count)

    def _walk_add(self, coord: int, delta: int) -> None:
        tree = self._tree
        size = self.size
        while coord <= size:
            self.ops += 1
            tree[coord] = tree.get(coord, 0) + delta
            coord += coord & -coord

    def add(self, coord: int, delta: int) -> None:
        if coord > self.size:
            self._grow(coord)
        count = self._counts.get(coord, 0) + delta
        if count < 0:
            raise ValueError(f"count for coordinate {coord} would go negative")
        if count:
            self._counts[coord] = count
        else:
            self._counts.pop(coord, None)
        self.total += delta
        self._walk_add(coord, delta)

    def count_le(self, coord: int) -> int:
        """Number of stored keys with coordinate <= ``coord``."""
        if coord >= self.size:
            return self.total
        if coord <= 0:
            return 0
        tree = self._tree
        acc = 0
        while coord > 0:
            self.ops += 1
            acc += tree.get(coord, 0)
            coord -= coord & -coord
        return acc

    def count_of(self, coord: int) -> int:
        return self._counts.get(coord, 0)


class PriorityShiftModel:
    """Counts how many TCAM entries an add must shift.

    Mirrors a priority-sorted physical layout where free space sits after
    the lowest-priority entry: inserting at priority ``p`` displaces every
    resident entry with priority strictly greater than ``p``.  Vendors'
    software keeps the full rule list priority-sorted even when part of it
    overflows to software tables, so the shift count is taken over all
    installed rules (consistent with the superlinear growth through
    5000 rules in paper Figure 3c).

    Accounting is a Fenwick tree over the (compressed, sparse) priority
    space: ``shifts_for_add`` / ``record_add`` / ``record_delete`` are
    all O(log max_priority) instead of the O(n) list insert the model
    originally performed per flow_mod.  Shift counts are bit-for-bit
    identical to :class:`SortedListShiftModel`, the retired
    implementation kept below for differential tests and ``tango-bench``
    comparisons.
    """

    def __init__(self) -> None:
        self._fenwick = _SparseFenwick()

    def __len__(self) -> int:
        return self._fenwick.total

    @property
    def accounting_ops(self) -> int:
        """Work units (tree nodes touched) spent on shift accounting."""
        return self._fenwick.ops

    def shifts_for_add(self, priority: int) -> int:
        """Entries that would shift if a rule at ``priority`` is added."""
        if priority < 0:
            raise ValueError(f"priority must be non-negative, got {priority}")
        fenwick = self._fenwick
        return fenwick.total - fenwick.count_le(priority + 1)

    def record_add(self, priority: int) -> int:
        """Record the add and return the number of shifted entries."""
        shifted = self.shifts_for_add(priority)
        self._fenwick.add(priority + 1, 1)
        return shifted

    def record_delete(self, priority: int) -> None:
        if priority < 0 or self._fenwick.count_of(priority + 1) == 0:
            raise ValueError(f"priority {priority} not present")
        self._fenwick.add(priority + 1, -1)

    def clear(self) -> None:
        self._fenwick = _SparseFenwick()


class SortedListShiftModel:
    """The pre-Fenwick shift model: a priority-sorted Python list.

    Kept as the differential-testing oracle and the ``tango-bench``
    reference arm: every operation must return exactly the same shift
    counts as :class:`PriorityShiftModel`, while ``record_add`` /
    ``record_delete`` pay an O(n) list insert/delete whose element moves
    are reported in :attr:`accounting_ops`.
    """

    def __init__(self) -> None:
        self._priorities: list = []
        self.accounting_ops = 0  # elements shifted by list inserts/deletes

    def __len__(self) -> int:
        return len(self._priorities)

    def shifts_for_add(self, priority: int) -> int:
        """Entries that would shift if a rule at ``priority`` is added."""
        return len(self._priorities) - bisect.bisect_right(self._priorities, priority)

    def record_add(self, priority: int) -> int:
        """Insert the priority and return the number of shifted entries."""
        index = bisect.bisect_right(self._priorities, priority)
        shifted = len(self._priorities) - index
        self._priorities.insert(index, priority)
        self.accounting_ops += shifted + 1
        return shifted

    def record_delete(self, priority: int) -> None:
        index = bisect.bisect_left(self._priorities, priority)
        if index >= len(self._priorities) or self._priorities[index] != priority:
            raise ValueError(f"priority {priority} not present")
        self.accounting_ops += len(self._priorities) - index
        del self._priorities[index]

    def clear(self) -> None:
        self._priorities.clear()
