"""TCAM geometry: capacity modes and the entry-shift cost model.

Capacity (paper Table 1): a TCAM of fixed physical size holds different
numbers of entries depending on entry width and operating mode:

* ``SINGLE_WIDE``  -- entries may match only L2 *or* only L3 headers; the
  full slot count is available (Switch #1 in L2- or L3-only mode: 4K).
* ``DOUBLE_WIDE``  -- every entry occupies a double slot so L2+L3 matches
  fit, and capacity halves for everything (Switch #1 combined mode: 2K;
  Switch #2: 2560 regardless of entry type).
* ``ADAPTIVE``     -- per-entry width: narrow entries cost one slot unit,
  wide (L2+L3) entries cost ``wide_cost`` units (Switch #3: 767 narrow or
  369 wide).

Install cost (paper Figures 3b/3c): TCAM entries must stay sorted by
priority, so adding a rule shifts every resident entry of *higher*
priority.  Adding in ascending priority order appends (no shifts) while
descending order shifts everything each time -- the asymmetry the Tango
scheduler exploits.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass

from repro.openflow.match import MatchKind


class TcamMode(enum.Enum):
    SINGLE_WIDE = "single-wide"
    DOUBLE_WIDE = "double-wide"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class TcamGeometry:
    """Physical TCAM capacity rules.

    Args:
        slot_units: total capacity in single-wide slot units.
        mode: operating mode (see module docstring).
        wide_cost: slot units consumed by an L2+L3 entry in ADAPTIVE mode.
    """

    slot_units: float
    mode: TcamMode = TcamMode.SINGLE_WIDE
    wide_cost: float = 2.0

    def __post_init__(self) -> None:
        if self.slot_units <= 0:
            raise ValueError("slot_units must be positive")
        if self.wide_cost < 1.0:
            raise ValueError("wide_cost must be at least 1")

    def entry_cost(self, kind: MatchKind) -> float:
        """Slot units consumed by one entry of the given match kind.

        Raises:
            ValueError: if the entry kind cannot be stored in this mode.
        """
        if self.mode is TcamMode.SINGLE_WIDE:
            if kind is MatchKind.L2_L3:
                raise ValueError("single-wide TCAM cannot hold L2+L3 entries")
            return 1.0
        if self.mode is TcamMode.DOUBLE_WIDE:
            return 2.0
        return self.wide_cost if kind is MatchKind.L2_L3 else 1.0

    def capacity_for(self, kind: MatchKind) -> int:
        """Maximum number of same-kind entries this TCAM can hold."""
        return int(self.slot_units // self.entry_cost(kind))


class PriorityShiftModel:
    """Counts how many TCAM entries an add must shift.

    Mirrors a priority-sorted physical layout where free space sits after
    the lowest-priority entry: inserting at priority ``p`` displaces every
    resident entry with priority strictly greater than ``p``.  Vendors'
    software keeps the full rule list priority-sorted even when part of it
    overflows to software tables, so the shift count is taken over all
    installed rules (consistent with the superlinear growth through
    5000 rules in paper Figure 3c).
    """

    def __init__(self) -> None:
        self._priorities: list = []

    def __len__(self) -> int:
        return len(self._priorities)

    def shifts_for_add(self, priority: int) -> int:
        """Entries that would shift if a rule at ``priority`` is added."""
        return len(self._priorities) - bisect.bisect_right(self._priorities, priority)

    def record_add(self, priority: int) -> int:
        """Insert the priority and return the number of shifted entries."""
        index = bisect.bisect_right(self._priorities, priority)
        shifted = len(self._priorities) - index
        self._priorities.insert(index, priority)
        return shifted

    def record_delete(self, priority: int) -> None:
        index = bisect.bisect_left(self._priorities, priority)
        if index >= len(self._priorities) or self._priorities[index] != priority:
            raise ValueError(f"priority {priority} not present")
        del self._priorities[index]

    def clear(self) -> None:
        self._priorities.clear()
