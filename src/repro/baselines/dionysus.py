"""Dionysus-style critical-path update scheduling.

Dionysus [Jin et al., SIGCOMM 2014] models a network update as a
dependency graph and repeatedly schedules the ready operation with the
greatest critical-path length, so that long chains start as early as
possible.  It reacts to runtime speeds (an op is issued the moment its
switch frees up) but is *switch-diversity oblivious*: it does not know
that deletions are cheaper than additions on a given switch, nor that
addition cost depends on priority order -- the gap Tango exploits
(paper Section 7.2).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.requests import RequestDag
from repro.core.scheduler import (
    NetworkExecutor,
    ScheduleResult,
    _count_deadline_misses,
)
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import NULL_TRACER, Tracer


class DionysusScheduler:
    """Critical-path list scheduler over the request DAG.

    Args:
        executor: network executor bound to the target switches.
        tracer: telemetry tracer; per-round spans are tagged
            ``policy="critical_path"`` (Dionysus has no pattern oracle).
        metrics: metrics registry for round/request counters.
    """

    def __init__(
        self,
        executor: NetworkExecutor,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.executor = executor
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_batches = self.metrics.counter(
            "scheduler.batches", scheduler=type(self).__name__
        )
        self._m_requests = self.metrics.counter(
            "scheduler.requests", scheduler=type(self).__name__
        )

    def schedule(self, dag: RequestDag) -> ScheduleResult:
        """Issue every request, longest-remaining-chain first."""
        self.executor.reset_epoch()
        result = ScheduleResult(makespan_ms=0.0)
        # Cached on the DAG: repeated runs over the same structure (the
        # common A/B-comparison pattern) pay the longest-path sweep once.
        critical = dag.critical_path_lengths()
        finish_times: Dict[int, float] = {}
        makespan = self.executor.epoch_ms

        while not dag.is_done():
            ready = dag.independent_requests()
            if not ready:
                raise RuntimeError("DAG not done but no independent requests")
            # Longest critical path first; FIFO within ties (Dionysus has
            # no notion of rule-type or priority-order cost).
            ready.sort(key=lambda r: (-critical[r.request_id], r.request_id))
            span = self.tracer.span(
                "scheduler.batch",
                category="scheduler",
                clock=self.executor.now_ms,
                policy="critical_path",
                batch_size=len(ready),
                round=result.rounds,
            )
            batch_start_ms = self.executor.now_ms() if self.tracer.enabled else 0.0
            for request in ready:
                dep_finish = max(
                    (
                        finish_times[p]
                        for p in dag.predecessor_ids(request.request_id)
                    ),
                    default=self.executor.epoch_ms,
                )
                record = self.executor.issue(request, not_before_ms=dep_finish)
                finish_times[request.request_id] = record.finished_ms
                result.records.append(record)
                dag.mark_done(request)
                makespan = max(makespan, record.finished_ms)
            if self.tracer.enabled:
                span.set(actual_ms=self.executor.now_ms() - batch_start_ms)
            span.close()
            self._m_batches.inc()
            self._m_requests.inc(len(ready))
            result.rounds += 1
        result.makespan_ms = makespan - self.executor.epoch_ms
        result.deadline_misses = _count_deadline_misses(
            result.records, self.executor.epoch_ms
        )
        return result
