"""Naive issue-order baselines for the single-switch experiments.

Figures 8 and 9 compare priority assignments crossed with installation
orders; the "random order" arms are produced by these schedulers.
"""

from __future__ import annotations

from typing import Dict

from repro.core.requests import RequestDag
from repro.core.scheduler import (
    NetworkExecutor,
    ScheduleResult,
    _count_deadline_misses,
)
from repro.sim.rng import SeededRng


class _FixedOrderScheduler:
    """Round-based scheduler issuing independent sets in a fixed order."""

    def __init__(self, executor: NetworkExecutor) -> None:
        self.executor = executor

    def _order(self, requests):
        raise NotImplementedError

    def schedule(self, dag: RequestDag) -> ScheduleResult:
        self.executor.reset_epoch()
        result = ScheduleResult(makespan_ms=0.0)
        finish_times: Dict[int, float] = {}
        makespan = self.executor.epoch_ms
        while not dag.is_done():
            independent = dag.independent_requests()
            if not independent:
                raise RuntimeError("DAG not done but no independent requests")
            ordered = self._order(independent)
            for request in ordered:
                dep_finish = max(
                    (
                        finish_times[p]
                        for p in dag.predecessor_ids(request.request_id)
                    ),
                    default=self.executor.epoch_ms,
                )
                record = self.executor.issue(request, not_before_ms=dep_finish)
                finish_times[request.request_id] = record.finished_ms
                result.records.append(record)
                dag.mark_done(request)
                makespan = max(makespan, record.finished_ms)
            result.rounds += 1
        result.makespan_ms = makespan - self.executor.epoch_ms
        result.deadline_misses = _count_deadline_misses(
            result.records, self.executor.epoch_ms
        )
        return result


class RandomOrderScheduler(_FixedOrderScheduler):
    """Issues each independent set in a (seeded) random order."""

    def __init__(self, executor: NetworkExecutor, seed: int = 0) -> None:
        super().__init__(executor)
        self._rng = SeededRng(seed).child("random-order")

    def _order(self, requests):
        shuffled = list(requests)
        self._rng.shuffle(shuffled)
        return shuffled


class FifoOrderScheduler(_FixedOrderScheduler):
    """Issues each independent set in request-creation order."""

    def _order(self, requests):
        return sorted(requests, key=lambda r: r.request_id)
