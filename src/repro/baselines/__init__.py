"""Baseline schedulers the paper compares Tango against.

* :class:`DionysusScheduler` -- critical-path scheduling of network
  updates (Jin et al., SIGCOMM'14): always issue the ready request on
  the longest remaining dependency chain first.  Diversity-oblivious: it
  neither reorders by rule type nor sorts additions by priority.
* :class:`RandomOrderScheduler` -- issues independent requests in a
  random order (the "random installation order" arm of Figures 8/9).
"""

from repro.baselines.dionysus import DionysusScheduler
from repro.baselines.naive import RandomOrderScheduler, FifoOrderScheduler

__all__ = ["DionysusScheduler", "RandomOrderScheduler", "FifoOrderScheduler"]
