"""The ``tango-telemetry`` command-line tool.

Inspects telemetry streams written by collector-attached runs (the
``--telemetry`` flag on ``tango-probe faults`` writes
``<prefix>.telemetry.jsonl`` and ``<prefix>.alerts.jsonl``).

Usage::

    tango-telemetry summary run.telemetry.jsonl
    tango-telemetry timeseries run.telemetry.jsonl executor.install_ms
    tango-telemetry timeseries run.telemetry.jsonl switch.occupancy --source s1
    tango-telemetry alerts run.alerts.jsonl --json
    python -m repro.obs.telemetry_cli summary run.telemetry.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.slo import read_alerts_jsonl
from repro.obs.telemetry import read_telemetry_jsonl, summarize_telemetry, timeseries


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tango-telemetry",
        description="Inspect continuous-telemetry streams (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="per-series statistics for a telemetry stream"
    )
    summary.add_argument("stream", help="telemetry JSONL file (from --telemetry)")
    summary.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    series = sub.add_parser(
        "timeseries", help="chronological (t_ms, value) points for one series"
    )
    series.add_argument("stream", help="telemetry JSONL file (from --telemetry)")
    series.add_argument("series", help="series name, e.g. executor.install_ms")
    series.add_argument(
        "--source", default=None, help="restrict to one source (switch/component)"
    )
    series.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    alerts = sub.add_parser("alerts", help="list SLO burn-rate and drift alerts")
    alerts.add_argument("stream", help="alerts JSONL file (from --telemetry)")
    alerts.add_argument(
        "--kind", default=None, choices=("burn_rate", "drift"), help="filter by kind"
    )
    alerts.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    return parser


def _print_summary(summary: dict, out) -> None:
    print(f"samples : {summary['samples']}", file=out)
    print(f"span    : {summary['span_ms']:.2f} ms", file=out)
    if summary["series"]:
        width = max(len(name) for name in summary["series"])
        print("series  :", file=out)
        for name, stats in summary["series"].items():
            print(
                f"  {name:<{width}}  x{stats['count']:<6} "
                f"sources {stats['sources']:<4} "
                f"min {stats['min']:10.3f}  mean {stats['mean']:10.3f}  "
                f"max {stats['max']:10.3f}  last {stats['last']:10.3f}",
                file=out,
            )


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)

    if args.command == "alerts":
        try:
            alerts = read_alerts_jsonl(args.stream)
        except OSError as error:
            print(f"error: cannot read {args.stream}: {error}", file=sys.stderr)
            return 1
        if args.kind is not None:
            alerts = [alert for alert in alerts if alert.kind == args.kind]
        if args.json:
            print(
                json.dumps([alert.to_dict() for alert in alerts], sort_keys=True),
                file=out,
            )
            return 0
        print(f"alerts : {len(alerts)}", file=out)
        for alert in alerts:
            print(
                f"  [{alert.severity:>6}] t={alert.t_ms:10.2f} ms  "
                f"{alert.name} ({alert.kind}) on {alert.series}"
                f"{f'[{alert.source}]' if alert.source else ''}: "
                f"value {alert.value:.3f} vs threshold {alert.threshold:.3f}",
                file=out,
            )
        return 0

    try:
        samples = read_telemetry_jsonl(args.stream)
    except OSError as error:
        print(f"error: cannot read {args.stream}: {error}", file=sys.stderr)
        return 1

    if args.command == "summary":
        summary = summarize_telemetry(samples)
        if args.json:
            print(json.dumps(summary, sort_keys=True), file=out)
        else:
            _print_summary(summary, out)
        return 0

    points = timeseries(samples, args.series, source=args.source)
    if args.json:
        print(json.dumps(points), file=out)
        return 0
    if not points:
        names = sorted({sample.series for sample in samples})
        print(f"no samples for series {args.series!r}", file=out)
        print(f"available series: {', '.join(names)}", file=out)
        return 1
    for t_ms, value in points:
        print(f"{t_ms:12.3f} {value:.6g}", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
