"""Trace and metrics exporters.

Three output formats, all byte-deterministic for a fixed event stream
(keys sorted, compact separators, no wall-clock anywhere):

* **JSONL** -- one event per line; the archival format ``tango-trace``
  reads back (:func:`write_jsonl` / :func:`read_jsonl`).
* **Chrome trace_event JSON** -- loads directly in ``chrome://tracing``
  or Perfetto; spans become complete (``"ph": "X"``) events, instant
  events ``"ph": "i"``, and each category gets its own named track
  (:func:`to_chrome_trace` / :func:`write_chrome_trace`).
* **Prometheus text** -- counters, gauges, and histograms from a
  :class:`~repro.obs.metrics.MetricsRegistry`
  (:func:`prometheus_text`).

:func:`summarize_events` condenses an event stream into the dict that
``tango-trace summary`` and the markdown report's telemetry section
render.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent

PathOrFile = Union[str, "IO[str]"]

_JSON_KWARGS = {"sort_keys": True, "separators": (",", ":")}


def _dump(payload: Any) -> str:
    return json.dumps(payload, **_JSON_KWARGS)


# -- JSONL ---------------------------------------------------------------------
def write_jsonl(events: Iterable[TraceEvent], target: PathOrFile) -> int:
    """Write one JSON object per line; returns the event count."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            return write_jsonl(events, handle)
    count = 0
    for event in events:
        target.write(_dump(event.to_dict()) + "\n")
        count += 1
    return count


def read_jsonl(source: PathOrFile) -> List[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` objects."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_jsonl(handle)
    events = []
    for line in source:
        line = line.strip()
        if line:
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events


# -- Chrome trace_event --------------------------------------------------------
def to_chrome_trace(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """The ``chrome://tracing`` / Perfetto JSON object for ``events``.

    Timestamps convert from simulated milliseconds to the format's
    microseconds.  Every category gets its own track (``tid``) with a
    ``thread_name`` metadata record, so interleaved simulated timelines
    (probing vs. scheduling) render side by side.
    """
    categories = sorted({event.category for event in events})
    tids = {category: index for index, category in enumerate(categories)}
    trace_events: List[Dict[str, Any]] = []
    for category in categories:
        trace_events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tids[category],
                "name": "thread_name",
                "args": {"name": category or "trace"},
            }
        )
    for event in events:
        payload: Dict[str, Any] = {
            "name": event.name,
            "cat": event.category or "trace",
            "pid": 0,
            "tid": tids[event.category],
            "ts": event.start_ms * 1000.0,
            "args": dict(event.attrs),
        }
        if event.is_span:
            payload["ph"] = "X"
            payload["dur"] = event.duration_ms * 1000.0
        else:
            payload["ph"] = "i"
            payload["s"] = "t"
        trace_events.append(payload)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[TraceEvent], target: PathOrFile) -> int:
    """Write the Chrome trace JSON; returns the event count."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            return write_chrome_trace(events, handle)
    target.write(_dump(to_chrome_trace(events)) + "\n")
    return len(events)


# -- Prometheus text -----------------------------------------------------------
def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_escape(value: str) -> str:
    # Exposition format: inside label values, backslash, double-quote,
    # and line feed must be escaped (in that order -- backslash first,
    # or the other escapes get double-escaped).
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels, extra: str = "") -> str:
    parts = [f'{key}="{_prom_escape(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """A Prometheus exposition-format dump of the registry."""
    lines: List[str] = []
    typed: set = set()

    def _type_line(name: str, kind: str) -> None:
        # One TYPE line per metric family, however many label sets it has.
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        name = _prom_name(counter.name)
        _type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(counter.labels)} {counter.value:g}")
    for gauge in registry.gauges():
        name = _prom_name(gauge.name)
        _type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(gauge.labels)} {gauge.value:g}")
    for histogram in registry.histograms():
        name = _prom_name(histogram.name)
        _type_line(name, "histogram")
        cumulative = 0
        for index, bound in enumerate(histogram.buckets):
            cumulative += histogram.counts[index]
            le_label = 'le="%g"' % bound
            lines.append(
                f"{name}_bucket"
                f"{_prom_labels(histogram.labels, le_label)} {cumulative}"
            )
        inf_label = 'le="+Inf"'
        lines.append(
            f"{name}_bucket"
            f"{_prom_labels(histogram.labels, inf_label)} {histogram.count}"
        )
        lines.append(f"{name}_sum{_prom_labels(histogram.labels)} {histogram.sum:g}")
        lines.append(f"{name}_count{_prom_labels(histogram.labels)} {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- summary -------------------------------------------------------------------
def summarize_events(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """Condense a trace into per-(category, name) span/event statistics.

    The ``patterns`` entry counts the ``pattern`` attribute across all
    spans carrying one -- i.e. how often the ordering oracle chose each
    rewrite pattern in a scheduler trace.
    """
    spans: Dict[str, Dict[str, Any]] = {}
    instants: Dict[str, int] = {}
    patterns: Dict[str, int] = {}
    for event in events:
        key = f"{event.category}/{event.name}" if event.category else event.name
        if event.is_span:
            stats = spans.setdefault(
                key, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
            )
            stats["count"] += 1
            stats["total_ms"] += event.duration_ms
            stats["max_ms"] = max(stats["max_ms"], event.duration_ms)
        else:
            instants[key] = instants.get(key, 0) + 1
        pattern = event.attrs.get("pattern")
        if pattern is not None:
            patterns[str(pattern)] = patterns.get(str(pattern), 0) + 1
    return {
        "events": len(events),
        "spans": {k: spans[k] for k in sorted(spans)},
        "instants": {k: instants[k] for k in sorted(instants)},
        "patterns": {k: patterns[k] for k in sorted(patterns)},
    }
