"""``repro.obs`` -- structured tracing, metrics, telemetry, provenance.

The telemetry subsystem behind every measurement-driven decision in the
reproduction: a deterministic span/event tracer timestamped from the
*simulated* clock (:mod:`repro.obs.trace`), a metrics registry with
counters/gauges/histograms (:mod:`repro.obs.metrics`), exporters for
JSONL, Chrome ``trace_event``, and Prometheus text formats
(:mod:`repro.obs.export`), a continuous flow-telemetry pipeline with
sliding-window aggregates and NetFlow-style flow-cache sampling
(:mod:`repro.obs.telemetry`), and SLO burn-rate alerting plus drift
feeds over that stream (:mod:`repro.obs.slo`), surfaced by the
``tango-trace`` (:mod:`repro.obs.cli`) and ``tango-telemetry``
(:mod:`repro.obs.telemetry_cli`) CLIs.

All instrumented components default to the disabled null objects
(:data:`NULL_TRACER`, :data:`NULL_METRICS`, :data:`NULL_TELEMETRY`), so
telemetry off means a single attribute check on the hot paths and zero
recorded state.
"""

from repro.obs.export import (
    prometheus_text,
    read_jsonl,
    summarize_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    DEFAULT_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    RATIO_BUCKETS,
    default_registry,
    scoped,
)
from repro.obs.slo import (
    BurnWindow,
    DEFAULT_BURN_WINDOWS,
    DriftFeed,
    SloPolicy,
    SloTarget,
    TelemetryAlert,
    default_slo_targets,
    read_alerts_jsonl,
    write_alerts_jsonl,
)
from repro.obs.telemetry import (
    FlowCache,
    FlowCacheConfig,
    FlowRecord,
    NULL_TELEMETRY,
    NullTelemetryCollector,
    SlidingWindow,
    TelemetryCollector,
    TelemetrySample,
    read_telemetry_jsonl,
    summarize_telemetry,
    timeseries,
    write_telemetry_jsonl,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
)

__all__ = [
    "BurnWindow",
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "DEFAULT_BURN_WINDOWS",
    "DriftFeed",
    "FlowCache",
    "FlowCacheConfig",
    "FlowRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTelemetryCollector",
    "NullTracer",
    "RATIO_BUCKETS",
    "SlidingWindow",
    "SloPolicy",
    "SloTarget",
    "Span",
    "TelemetryAlert",
    "TelemetryCollector",
    "TelemetrySample",
    "TraceEvent",
    "Tracer",
    "default_registry",
    "default_slo_targets",
    "prometheus_text",
    "read_alerts_jsonl",
    "read_jsonl",
    "read_telemetry_jsonl",
    "scoped",
    "summarize_events",
    "summarize_telemetry",
    "timeseries",
    "to_chrome_trace",
    "write_alerts_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_telemetry_jsonl",
]
