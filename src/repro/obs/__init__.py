"""``repro.obs`` -- structured tracing, metrics, and run provenance.

The telemetry subsystem behind every measurement-driven decision in the
reproduction: a deterministic span/event tracer timestamped from the
*simulated* clock (:mod:`repro.obs.trace`), a metrics registry with
counters/gauges/histograms (:mod:`repro.obs.metrics`), and exporters
for JSONL, Chrome ``trace_event``, and Prometheus text formats
(:mod:`repro.obs.export`), surfaced by the ``tango-trace`` CLI
(:mod:`repro.obs.cli`).

All instrumented components default to the disabled null objects
(:data:`NULL_TRACER`, :data:`NULL_METRICS`), so telemetry off means a
single attribute check on the hot paths and zero recorded state.
"""

from repro.obs.export import (
    prometheus_text,
    read_jsonl,
    summarize_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    default_registry,
    scoped,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "default_registry",
    "prometheus_text",
    "read_jsonl",
    "scoped",
    "summarize_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
