"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` aggregates what the tracer cannot afford to
record per event: probe packets sent, RTT retries, oracle calls,
scheduler batches.  Metrics are identified by a name plus optional
labels (``registry.counter("probe.packets_sent", switch="s1")``);
repeated lookups return the same object, so hot paths cache the handle
once and pay a single method call per update.

Like the tracer, the registry has a disabled twin
(:data:`NULL_METRICS`) whose metric handles ignore updates -- the
default for every instrumented component -- and a process-wide default
registry with a :func:`scoped` context manager for test isolation::

    with scoped() as registry:
        run_something(metrics=registry)
        assert registry.counter("scheduler.batches").value == 3

Snapshots are plain sorted dicts, so they serialise deterministically
into ``BENCH_scheduler.json`` and the Prometheus text dump.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

LabelSet = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (milliseconds of simulated time).
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    5000.0,
)

#: Buckets for ratio-valued series in [0, 1] (occupancy, hit rates).
#: The latency defaults are useless here -- every observation would land
#: in the first bucket.
RATIO_BUCKETS: Tuple[float, ...] = (
    0.1,
    0.25,
    0.5,
    0.75,
    0.9,
    0.95,
    0.99,
    1.0,
)

#: Buckets for small-count series (batch sizes, churn deltas, retries).
COUNT_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    500.0,
    1000.0,
)


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. installed probe flows)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed upper-bound buckets plus sum/count (Prometheus-style).

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    is the overflow (``+Inf``) bucket.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be non-empty, sorted, and unique")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Creates and stores metrics keyed by (name, labels)."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}

    # -- handle lookup (create on first use) -----------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labelset(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labelset(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        """Find or create a histogram; ``buckets`` override the default.

        The override binds at creation (first lookup).  A later lookup
        may omit ``buckets`` (the existing histogram is returned), but
        re-specifying *different* bounds raises: the old behaviour --
        silently ignoring the override and observing ratio-valued data
        into millisecond buckets -- corrupted every non-latency series.
        Presets: :data:`DEFAULT_BUCKETS_MS` (latencies),
        :data:`RATIO_BUCKETS` (0-1 ratios), :data:`COUNT_BUCKETS`.
        """
        key = (name, _labelset(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                name, key[1], buckets if buckets is not None else DEFAULT_BUCKETS_MS
            )
        elif buckets is not None and tuple(float(b) for b in buckets) != metric.buckets:
            raise ValueError(
                f"histogram {name!r} already exists with buckets "
                f"{metric.buckets}; cannot rebind to {tuple(buckets)}"
            )
        return metric

    # -- introspection ---------------------------------------------------------
    def counters(self) -> List[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    @staticmethod
    def _key(name: str, labels: LabelSet) -> str:
        if not labels:
            return name
        rendered = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{rendered}}}"

    def snapshot(self) -> Dict[str, Any]:
        """All metric values as one flat, sorted, JSON-ready dict."""
        out: Dict[str, Any] = {}
        for counter in self.counters():
            out[self._key(counter.name, counter.labels)] = counter.value
        for gauge in self.gauges():
            out[self._key(gauge.name, gauge.labels)] = gauge.value
        for histogram in self.histograms():
            out[self._key(histogram.name, histogram.labels)] = {
                "count": histogram.count,
                "sum": histogram.sum,
                "buckets": {
                    str(bound): histogram.counts[i]
                    for i, bound in enumerate(histogram.buckets)
                },
                "overflow": histogram.counts[-1],
            }
        return out

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: hands out shared metrics that ignore updates."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        return _NULL_HISTOGRAM


#: Process-wide disabled registry; instrumented components default to it.
NULL_METRICS = NullMetricsRegistry()

#: The process default registry (swappable via :func:`scoped`).
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (CLI entry points record into it)."""
    return _DEFAULT_REGISTRY


@contextmanager
def scoped(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Swap in a fresh default registry for the duration of the block.

    Keeps tests (and the perf harness) isolated from whatever the
    process default has already accumulated.
    """
    global _DEFAULT_REGISTRY
    fresh = registry if registry is not None else MetricsRegistry()
    previous = _DEFAULT_REGISTRY
    # Not a resumable probe generator: a @contextmanager that swaps the
    # process default for one ``with`` block, restored in finally.
    _DEFAULT_REGISTRY = fresh  # tango-lint: disable=TNG042
    try:
        yield fresh
    finally:
        _DEFAULT_REGISTRY = previous  # tango-lint: disable=TNG042
