"""Deterministic span/event tracing on the simulated clock.

Every number the reproduction computes -- probe RTTs, doubling rounds,
pattern scores, batch issue times -- is a decision input, and this
module makes those decisions visible without touching determinism: all
timestamps come from an injected ``now_ms`` callable (a virtual clock),
never the wall clock, so traces are bit-reproducible run-to-run and the
TNG030 lint stays clean.

Two tracer flavours share one call surface:

* :class:`Tracer` records :class:`TraceEvent` objects into a bounded
  ring buffer (oldest events drop first; ``dropped`` counts them).
* :class:`NullTracer` (singleton :data:`NULL_TRACER`) is the disabled
  arm: every method is a no-op returning shared immutable objects, so
  instrumented hot paths pay one attribute check and nothing else.

Spans nest: a span opened while another is active records the outer
span as its parent, and exporters reconstruct the tree from
``parent_id``.  Components that own their own virtual clock (the
probing engine, the network executor) pass it per span via ``clock=``,
so one trace can interleave several simulated timelines coherently.

Usage::

    tracer = Tracer(now_ms=lambda: channel.clock.now_ms)
    with tracer.span("probe.apply_pattern", category="probing",
                     pattern=pattern.name) as span:
        ...measure...
        span.set(rtts=len(rtts))
    tracer.event("probe.rtt_timeout", category="probing", index=flow.index)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Default ring-buffer capacity (events kept before the oldest drop).
DEFAULT_CAPACITY = 65536

Clock = Callable[[], float]


@dataclass
class TraceEvent:
    """One completed span or instant event.

    ``end_ms`` is ``None`` for instant events; for spans it is the
    simulated close time.  ``parent_id`` links nested spans.
    """

    event_id: int
    name: str
    category: str = ""
    start_ms: float = 0.0
    end_ms: Optional[float] = None
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        return (self.end_ms - self.start_ms) if self.end_ms is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (stable field set; exporters sort keys)."""
        return {
            "id": self.event_id,
            "name": self.name,
            "cat": self.category,
            "ts_ms": self.start_ms,
            "end_ms": self.end_ms,
            "parent": self.parent_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceEvent":
        return cls(
            event_id=int(payload["id"]),
            name=str(payload["name"]),
            category=str(payload.get("cat", "")),
            start_ms=float(payload.get("ts_ms", 0.0)),
            end_ms=(
                float(payload["end_ms"]) if payload.get("end_ms") is not None else None
            ),
            parent_id=(
                int(payload["parent"]) if payload.get("parent") is not None else None
            ),
            attrs=dict(payload.get("attrs") or {}),
        )


class Span:
    """An open span; close it (or exit the ``with`` block) to record it."""

    __slots__ = ("_tracer", "_clock", "_event", "_closed")

    def __init__(self, tracer: "Tracer", event: TraceEvent, clock: Optional[Clock]):
        self._tracer = tracer
        self._clock = clock
        self._event = event
        self._closed = False

    @property
    def event_id(self) -> int:
        return self._event.event_id

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) key-value attributes on the open span."""
        self._event.attrs.update(attrs)
        return self

    def close(self) -> TraceEvent:
        if not self._closed:
            self._closed = True
            self._event.end_ms = self._tracer._read(self._clock)
            self._tracer._finish(self)
        return self._event

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Tracer:
    """Bounded, deterministic event recorder.

    Args:
        now_ms: default simulated-clock reader for spans/events that do
            not pass their own ``clock=``; ``None`` timestamps them 0.
        capacity: ring-buffer size; the oldest events drop beyond it.
    """

    enabled = True

    def __init__(
        self, now_ms: Optional[Clock] = None, capacity: int = DEFAULT_CAPACITY
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._now_ms = now_ms
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._stack: List[int] = []
        self._next_id = 1
        self.dropped = 0

    # -- clock ---------------------------------------------------------------
    def _read(self, clock: Optional[Clock]) -> float:
        source = clock if clock is not None else self._now_ms
        return float(source()) if source is not None else 0.0

    # -- recording -------------------------------------------------------------
    def _append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def span(
        self,
        name: str,
        category: str = "",
        clock: Optional[Clock] = None,
        **attrs: Any,
    ) -> Span:
        """Open a nested span; record it when closed."""
        event = TraceEvent(
            event_id=self._next_id,
            name=name,
            category=category,
            start_ms=self._read(clock),
            parent_id=self._stack[-1] if self._stack else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(event.event_id)
        return Span(self, event, clock)

    def _finish(self, span: Span) -> None:
        # Spans normally close LIFO; tolerate out-of-order closes so an
        # exception unwinding several spans cannot corrupt the stack.
        if span._event.event_id in self._stack:
            while self._stack and self._stack[-1] != span._event.event_id:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        self._append(span._event)

    def event(
        self,
        name: str,
        category: str = "",
        clock: Optional[Clock] = None,
        **attrs: Any,
    ) -> TraceEvent:
        """Record an instant (zero-duration) event."""
        event = TraceEvent(
            event_id=self._next_id,
            name=name,
            category=category,
            start_ms=self._read(clock),
            parent_id=self._stack[-1] if self._stack else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._append(event)
        return event

    # -- access ---------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """Recorded events, in completion order (bounded by capacity)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._stack.clear()
        self.dropped = 0


class _NullSpan:
    """Shared, stateless stand-in returned by :class:`NullTracer`."""

    __slots__ = ()
    event_id = 0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def close(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    dropped = 0
    capacity = 0

    def span(self, name, category="", clock=None, **attrs):
        return _NULL_SPAN

    def event(self, name, category="", clock=None, **attrs):
        return None

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        return None


#: Process-wide disabled tracer; instrumented components default to it.
NULL_TRACER = NullTracer()
