"""SLO burn-rate alerting and drift feeds over the telemetry stream.

Consumes :class:`~repro.obs.telemetry.TelemetryCollector` samples and
turns them into structured, deterministic :class:`TelemetryAlert`\\ s:

* :class:`SloPolicy` implements multi-window burn-rate alerting in the
  SRE style.  Each :class:`SloTarget` defines an objective (e.g. "p99
  install latency under 40 ms", "occupancy ratio under 0.9") with an
  error *budget* -- the tolerated fraction of violating observations.
  An alert fires only when the violation rate, expressed as a multiple
  of the budget (the *burn rate*), exceeds the threshold over **both**
  a short and a long window: the long window proves the burn is
  sustained, the short window proves it is still happening, so a burst
  that already ended pages nobody.
* :class:`DriftFeed` watches per-source windows and emits
  :class:`~repro.core.online_probing.DriftFinding`-compatible findings
  when a series' recent behaviour departs from its trailing baseline --
  sustained occupancy churn, probe-RTT signature shifts -- the signal
  the adversarial-detection ROADMAP item quarantines on.

Determinism: policies are evaluated only at collector cadence ticks, so
alert timestamps are exact multiples of the collector's ``interval_ms``
and two same-seed runs raise byte-identical alert streams.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.telemetry import SlidingWindow, TelemetrySample

if TYPE_CHECKING:  # pragma: no cover - import cycle (core imports obs)
    from repro.core.online_probing import DriftFinding

PathOrFile = Union[str, "IO[str]"]

_JSON_KWARGS = {"sort_keys": True, "separators": (",", ":")}


@dataclass(frozen=True)
class TelemetryAlert:
    """One structured alert raised by a policy at a cadence tick."""

    t_ms: float
    name: str
    kind: str  # "burn_rate" | "drift"
    series: str
    source: str
    severity: str  # "page" | "ticket"
    value: float
    threshold: float
    detail: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t_ms": self.t_ms,
            "name": self.name,
            "kind": self.kind,
            "series": self.series,
            "source": self.source,
            "severity": self.severity,
            "value": self.value,
            "threshold": self.threshold,
            "detail": {k: v for k, v in self.detail},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TelemetryAlert":
        return cls(
            t_ms=float(payload["t_ms"]),
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            series=str(payload["series"]),
            source=str(payload.get("source", "")),
            severity=str(payload["severity"]),
            value=float(payload["value"]),
            threshold=float(payload["threshold"]),
            detail=tuple(
                sorted((str(k), str(v)) for k, v in (payload.get("detail") or {}).items())
            ),
        )


_AGGREGATES = ("p50", "p99", "mean", "max")


@dataclass(frozen=True)
class SloTarget:
    """One service-level objective over a telemetry series.

    Args:
        name: alert name, e.g. ``"install-latency-p99"``.
        series: telemetry series to watch (``"executor.install_ms"``).
        threshold: objective bound; an observation *violates* when the
            windowed ``aggregate`` exceeds it.
        budget: tolerated violation fraction (error budget).  Burn rate
            is ``violation_fraction / budget``.
        aggregate: which windowed statistic the alert reports as its
            current value ("p50", "p99", "mean", "max").
        per_source: aggregate windows per sample source (per switch)
            instead of pooling the series.
    """

    name: str
    series: str
    threshold: float
    budget: float = 0.05
    aggregate: str = "p99"
    per_source: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        if self.aggregate not in _AGGREGATES:
            raise ValueError(f"aggregate must be one of {_AGGREGATES}")


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate rule (short AND long must burn)."""

    short_ms: float
    long_ms: float
    burn_threshold: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_ms <= 0 or self.long_ms <= 0:
            raise ValueError("burn windows must be positive")
        if self.short_ms > self.long_ms:
            raise ValueError("short window must not exceed the long window")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


#: Default two-tier burn-rate ladder (virtual milliseconds): a fast
#: page on an intense sustained burn, a slower ticket on a gentle one.
DEFAULT_BURN_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow(short_ms=50.0, long_ms=200.0, burn_threshold=4.0, severity="page"),
    BurnWindow(short_ms=200.0, long_ms=1000.0, burn_threshold=2.0, severity="ticket"),
)


class _TargetState:
    """Per-(target, source) windows and per-rule hysteresis latches."""

    __slots__ = ("windows", "firing")

    def __init__(self, target: SloTarget, rules: Sequence[BurnWindow]) -> None:
        self.windows: List[Tuple[SlidingWindow, SlidingWindow]] = [
            (SlidingWindow(rule.short_ms), SlidingWindow(rule.long_ms))
            for rule in rules
        ]
        self.firing: List[bool] = [False] * len(rules)


class SloPolicy:
    """Multi-window burn-rate alerting over telemetry samples.

    Attach to a collector with
    :meth:`~repro.obs.telemetry.TelemetryCollector.add_policy`; the
    collector feeds every sample through :meth:`ingest` and calls
    :meth:`evaluate` at each cadence tick.  An alert fires when a
    target's burn rate exceeds a rule's threshold on both the short and
    the long window, and re-arms only after the short-window burn drops
    back under the threshold (hysteresis -- one alert per sustained
    episode per rule).

    Args:
        targets: the objectives to watch.
        windows: burn-rate rules; default two-tier page/ticket ladder.
        min_samples: observations required in a window before it can
            fire (suppresses cold-start noise).
    """

    def __init__(
        self,
        targets: Sequence[SloTarget],
        windows: Sequence[BurnWindow] = DEFAULT_BURN_WINDOWS,
        min_samples: int = 5,
    ) -> None:
        if not targets:
            raise ValueError("need at least one SloTarget")
        names = [target.name for target in targets]
        if len(set(names)) != len(names):
            raise ValueError("target names must be unique")
        self.targets = tuple(targets)
        self.rules = tuple(windows)
        self.min_samples = min_samples
        self.alerts: List[TelemetryAlert] = []
        self._states: Dict[Tuple[str, str], _TargetState] = {}
        self._by_series: Dict[str, List[SloTarget]] = {}
        for target in self.targets:
            self._by_series.setdefault(target.series, []).append(target)

    def _state(self, target: SloTarget, source: str) -> _TargetState:
        key = (target.name, source if target.per_source else "")
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _TargetState(target, self.rules)
        return state

    # -- collector protocol -------------------------------------------------------
    def ingest(self, sample: TelemetrySample) -> None:
        """Feed one sample into every matching target's windows."""
        for target in self._by_series.get(sample.series, ()):
            state = self._state(target, sample.source)
            for short, long in state.windows:
                short.observe(sample.t_ms, sample.value)
                long.observe(sample.t_ms, sample.value)

    def evaluate(self, now_ms: float) -> List[TelemetryAlert]:
        """Check every (target, source, rule); returns alerts raised now."""
        raised: List[TelemetryAlert] = []
        for key in sorted(self._states):
            name, source = key
            target = next(t for t in self.targets if t.name == name)
            state = self._states[key]
            for index, rule in enumerate(self.rules):
                short, long = state.windows[index]
                short_frac = short.violation_fraction(target.threshold, now_ms)
                long_frac = long.violation_fraction(target.threshold, now_ms)
                if (
                    short_frac is None
                    or long_frac is None
                    or short.count() < self.min_samples
                    or long.count() < self.min_samples
                ):
                    state.firing[index] = False
                    continue
                short_burn = short_frac / target.budget
                long_burn = long_frac / target.budget
                burning = (
                    short_burn >= rule.burn_threshold
                    and long_burn >= rule.burn_threshold
                )
                if not burning:
                    state.firing[index] = False
                    continue
                if state.firing[index]:
                    continue  # still the same episode; don't re-page
                state.firing[index] = True
                value = self._aggregate(target, short)
                alert = TelemetryAlert(
                    t_ms=now_ms,
                    name=target.name,
                    kind="burn_rate",
                    series=target.series,
                    source=source,
                    severity=rule.severity,
                    value=value if value is not None else 0.0,
                    threshold=target.threshold,
                    detail=(
                        ("aggregate", target.aggregate),
                        ("long_burn", f"{long_burn:.4f}"),
                        ("long_ms", f"{rule.long_ms:g}"),
                        ("short_burn", f"{short_burn:.4f}"),
                        ("short_ms", f"{rule.short_ms:g}"),
                    ),
                )
                self.alerts.append(alert)
                raised.append(alert)
        return raised

    @staticmethod
    def _aggregate(target: SloTarget, window: SlidingWindow) -> Optional[float]:
        if target.aggregate == "p50":
            return window.percentile(50.0)
        if target.aggregate == "p99":
            return window.percentile(99.0)
        if target.aggregate == "max":
            values = window.values()
            return max(values) if values else None
        return window.mean()


def default_slo_targets(
    install_ms: float = 40.0, occupancy_ratio: float = 0.9
) -> Tuple[SloTarget, ...]:
    """The stock objectives used by the CLI and CI telemetry smoke.

    Three targets: page on sustained p99 install-latency burn, page on
    a sustained fault-deferral burst (every deferral sample counts 1.0,
    so any run of deferred requests burns the whole budget), and ticket
    on occupancy headroom.  A fault-free, healthy run raises none of
    them; the seeded disconnect/chaos scenarios deterministically trip
    the deferral target.
    """
    return (
        SloTarget(
            name="install-latency-p99",
            series="executor.install_ms",
            threshold=install_ms,
            budget=0.05,
            aggregate="p99",
        ),
        SloTarget(
            name="fault-deferral-burn",
            series="scheduler.fault_deferrals",
            threshold=0.0,
            budget=0.05,
            aggregate="mean",
        ),
        SloTarget(
            name="occupancy-headroom",
            series="switch.occupancy_ratio",
            threshold=occupancy_ratio,
            budget=0.10,
            aggregate="max",
            per_source=True,
        ),
    )


class DriftFeed:
    """Baseline-vs-recent drift scoring over telemetry windows.

    For each watched series and source, keeps a *recent* window and a
    *baseline* window ``baseline_factor`` times longer.  At each
    evaluation the drift score is the relative shift of the recent mean
    against the baseline mean, and for churn-flagged series the recent
    churn (sum of absolute deltas) normalised by the baseline mean.  A
    score above ``threshold`` raises a ``kind="drift"``
    :class:`TelemetryAlert` (with hysteresis) and records a
    :class:`~repro.core.online_probing.DriftFinding` whose
    ``property_path`` is ``telemetry[<series>][<source>].<metric>`` --
    the same finding type the online-probing drift detector emits, so
    downstream consumers (model-cache invalidation, quarantine) need
    one code path.

    Args:
        series: series names to watch, e.g. ``("switch.occupancy_ratio",
            "probe.rtt_ms")``.
        window_ms: recent-window length.
        baseline_factor: baseline window is this many times longer.
        threshold: relative-shift score at which drift fires.
        churn_series: subset of ``series`` scored on churn too.
        min_samples: observations required in both windows.
    """

    def __init__(
        self,
        series: Sequence[str] = ("switch.occupancy_ratio", "probe.rtt_ms"),
        window_ms: float = 100.0,
        baseline_factor: float = 5.0,
        threshold: float = 0.5,
        churn_series: Sequence[str] = ("switch.occupancy_ratio",),
        min_samples: int = 5,
    ) -> None:
        if baseline_factor <= 1.0:
            raise ValueError("baseline_factor must exceed 1")
        self.series = tuple(series)
        self.window_ms = float(window_ms)
        self.baseline_factor = float(baseline_factor)
        self.threshold = float(threshold)
        self.churn_series = frozenset(churn_series)
        self.min_samples = min_samples
        self.alerts: List[TelemetryAlert] = []
        self.findings: List["DriftFinding"] = []
        self._windows: Dict[Tuple[str, str], Tuple[SlidingWindow, SlidingWindow]] = {}
        self._firing: Dict[Tuple[str, str, str], bool] = {}

    # -- collector protocol -------------------------------------------------------
    def ingest(self, sample: TelemetrySample) -> None:
        if sample.series not in self.series:
            return
        key = (sample.series, sample.source)
        pair = self._windows.get(key)
        if pair is None:
            pair = self._windows[key] = (
                SlidingWindow(self.window_ms),
                SlidingWindow(self.window_ms * self.baseline_factor),
            )
        recent, baseline = pair
        recent.observe(sample.t_ms, sample.value)
        baseline.observe(sample.t_ms, sample.value)

    def evaluate(self, now_ms: float) -> List[TelemetryAlert]:
        # Imported lazily: repro.core modules import repro.obs at module
        # scope, so the reverse edge must bind at call time.
        from repro.core.online_probing import DriftFinding

        raised: List[TelemetryAlert] = []
        for key in sorted(self._windows):
            series, source = key
            recent, baseline = self._windows[key]
            if (
                recent.count(now_ms) < self.min_samples
                or baseline.count(now_ms) < 2 * self.min_samples
            ):
                continue
            recent_mean = recent.mean()
            baseline_mean = baseline.mean()
            if recent_mean is None or baseline_mean is None:
                continue
            metrics = [("mean_shift", recent_mean, baseline_mean, self._shift(recent_mean, baseline_mean))]
            if series in self.churn_series:
                recent_churn = recent.churn()
                scale = abs(baseline_mean) if baseline_mean else 1.0
                metrics.append(
                    ("churn", recent_churn, 0.0, recent_churn / scale)
                )
            for metric, after, before, score in metrics:
                latch = (series, source, metric)
                if score < self.threshold:
                    self._firing[latch] = False
                    continue
                if self._firing.get(latch):
                    continue
                self._firing[latch] = True
                self.findings.append(
                    DriftFinding(
                        property_path=f"telemetry[{series}][{source}].{metric}",
                        before=before,
                        after=after,
                    )
                )
                alert = TelemetryAlert(
                    t_ms=now_ms,
                    name=f"drift-{metric}",
                    kind="drift",
                    series=series,
                    source=source,
                    severity="ticket",
                    value=score,
                    threshold=self.threshold,
                    detail=(
                        ("after", f"{after:.6g}"),
                        ("before", f"{before:.6g}"),
                        ("metric", metric),
                    ),
                )
                self.alerts.append(alert)
                raised.append(alert)
        return raised

    @staticmethod
    def _shift(recent: float, baseline: float) -> float:
        scale = abs(baseline) if baseline else 1.0
        return abs(recent - baseline) / scale


# -- alert export -------------------------------------------------------------------
def alerts_jsonl_lines(alerts: Iterable[TelemetryAlert]) -> List[str]:
    """Byte-deterministic JSONL lines for an alert stream."""
    return [json.dumps(alert.to_dict(), **_JSON_KWARGS) for alert in alerts]


def write_alerts_jsonl(alerts: Iterable[TelemetryAlert], target: PathOrFile) -> int:
    """Write one JSON object per alert; returns the alert count."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            return write_alerts_jsonl(alerts, handle)
    count = 0
    for line in alerts_jsonl_lines(alerts):
        target.write(line + "\n")
        count += 1
    return count


def read_alerts_jsonl(source: PathOrFile) -> List[TelemetryAlert]:
    """Load an alert JSONL stream back into alerts."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_alerts_jsonl(handle)
    alerts = []
    for line in source:
        line = line.strip()
        if line:
            alerts.append(TelemetryAlert.from_dict(json.loads(line)))
    return alerts
